#!/usr/bin/env bash
# Tier-1 gate: invariants, build, test (including the kernel determinism
# sweep across pool widths), lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

# The invariant analyzer is dependency-free, so it gates everything else
# before the first real build. Warnings (missing paper citations) are
# errors in CI; a malformed lint.toml fails before any rule runs, and the
# stats line records the call-graph resolution ratio of the R10 closure.
echo "==> dt-lint --deny-warnings (workspace invariants, DESIGN.md sections 9 and 14)"
cargo run -q -p dt-lint -- --deny-warnings --check-config --stats --quiet

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt not installed; skipping the format check"
fi

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

# The kernels promise byte-identical output for any pool width; re-run the
# tensor suite (reference-equivalence + proptests, including the quant
# round-trip/oracle properties), the serving engine's oracle tests (exact +
# IVF + quantized + k-means + sharded), the latency-histogram and load
# suites, and the bench helpers at explicit widths, then smoke the quant
# frontier and load-replay generators — gen_quant exercises every dtype arm
# and the f64 bit-identity assert, gen_load drives the whole harness
# (generators, queue, batcher, worker arms) — both writing to scratch paths
# so the committed BENCH_quant.json / BENCH_load.json stay untouched.
for t in 1 2 8; do
    echo "==> cargo test -p dt-tensor -p dt-parallel -p dt-serve -p dt-metrics -p dt-cache -p dt-load -p dt-bench (DT_NUM_THREADS=$t)"
    DT_NUM_THREADS=$t cargo test -q -p dt-tensor -p dt-parallel -p dt-serve -p dt-metrics -p dt-cache -p dt-load -p dt-bench
    echo "==> cargo test -p dt-tensor --test quant_props (DT_NUM_THREADS=$t)"
    DT_NUM_THREADS=$t cargo test -q -p dt-tensor --test quant_props
    echo "==> gen_quant --smoke (DT_NUM_THREADS=$t)"
    DT_NUM_THREADS=$t cargo run -q -p dt-bench --release --bin gen_quant -- --smoke
    echo "==> gen_load --smoke (DT_NUM_THREADS=$t)"
    DT_NUM_THREADS=$t cargo run -q -p dt-bench --release --bin gen_load -- --smoke
done

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
