//! Trains every method in the registry — all 22 rows of the paper's
//! Table IV — on one small MNAR dataset and prints a league table.
//!
//! ```sh
//! cargo run --release --example method_zoo
//! ```

use dt_core::{evaluate, registry, Method, TrainConfig};
use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = mechanism_dataset(
        Mechanism::Mnar,
        &MechanismConfig {
            n_users: 120,
            n_items: 180,
            target_density: 0.1,
            rating_effect: 2.0,
            seed: 11,
            ..MechanismConfig::default()
        },
    );
    println!("dataset: {}\n", ds.summary());

    let cfg = TrainConfig {
        epochs: 10,
        emb_dim: 8,
        ..TrainConfig::default()
    };

    let mut rows: Vec<(String, f64, f64, usize, f64)> = Vec::new();
    for method in Method::ALL {
        let mut model = registry::build(method, &ds, &cfg, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let fit = model.fit(&ds, &mut rng);
        let eval = evaluate(model.as_ref(), &ds, 5);
        rows.push((
            model.name().to_string(),
            eval.auc,
            eval.ndcg,
            model.n_parameters(),
            fit.train_seconds,
        ));
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!(
        "{:<11} {:>7} {:>7} {:>9} {:>8}",
        "method", "AUC", "N@5", "params", "sec"
    );
    for (name, auc, ndcg, params, secs) in rows {
        println!("{name:<11} {auc:>7.3} {ndcg:>7.3} {params:>9} {secs:>8.1}");
    }
}
