//! The identifiability story of §IV-A, numerically:
//!
//! 1. Example 1 — two different MNAR worlds, one observed-data law.
//! 2. The binary-rating analogue — an MAR model that exactly mimics an
//!    MNAR one on observed data.
//! 3. Theorem 1 — with an auxiliary variable, maximum likelihood recovers
//!    the true mechanism.
//!
//! ```sh
//! cargo run --release --example identifiability
//! ```

use dt_identify::{example1_models, fit_separable, observed_density, SeparableLogisticModel};
use dt_stats::{expit, logit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- 1. Example 1 ------------------------------------------------------
    let (a, b) = example1_models();
    println!("Example 1: model (a) reveals HIGH ratings, model (b) reveals LOW ratings");
    println!(
        "           P_a(o=1|r=4) = {:.3}, P_b(o=1|r=4) = {:.3}",
        a.propensity(4.0),
        b.propensity(4.0)
    );
    let mut max_gap: f64 = 0.0;
    for i in 0..=300 {
        let r = -3.0 + 0.04 * f64::from(i);
        max_gap = max_gap.max((observed_density(&a, r) - observed_density(&b, r)).abs());
    }
    println!("           max |P_a(o=1,r) − P_b(o=1,r)| over r ∈ [−3, 9] = {max_gap:.2e}");
    println!("           → the observed data CANNOT distinguish them.\n");

    // ---- 2. The MAR mimic --------------------------------------------------
    let gen = SeparableLogisticModel {
        c: -2.0,
        alpha: 0.0,
        beta: 4.0,
        pi: 0.5,
    };
    let p1 = expit(gen.c + gen.beta);
    let p0 = expit(gen.c);
    let sel = gen.pi * p1 + (1.0 - gen.pi) * p0;
    let mar_mimic = SeparableLogisticModel {
        c: logit(sel),
        alpha: 0.0,
        beta: 0.0,
        pi: gen.pi * p1 / sel,
    };
    let mut rng = StdRng::seed_from_u64(1);
    let sample = gen.sample(50_000, &mut rng);
    println!("Binary analogue: true mechanism is MNAR (β = 4), but the MAR model");
    println!(
        "  (β = 0, inflated π = {:.3}) has log-likelihood {:.6} vs true {:.6}",
        mar_mimic.pi,
        sample.log_likelihood(&mar_mimic),
        sample.log_likelihood(&gen)
    );
    println!("  → identical: observed data cannot even tell MNAR from MAR.\n");

    // ---- 3. Theorem 1: the auxiliary variable breaks the tie ----------------
    let gen_z = SeparableLogisticModel { alpha: 1.2, ..gen };
    let sample_z = gen_z.sample(50_000, &mut StdRng::seed_from_u64(2));
    let fitted = fit_separable(&sample_z, 600, 2.0);
    println!("With auxiliary z (Assumption 1), MLE on (z, o, r·o) recovers:");
    println!(
        "  true  : c = {:.2}, α = {:.2}, β = {:.2}, π = {:.2}",
        gen_z.c, gen_z.alpha, gen_z.beta, gen_z.pi
    );
    println!(
        "  fitted: c = {:.2}, α = {:.2}, β = {:.2}, π = {:.2}",
        fitted.c, fitted.alpha, fitted.beta, fitted.pi
    );
    let mar_mimic_z = SeparableLogisticModel {
        alpha: 1.2,
        ..mar_mimic
    };
    println!(
        "  and the MAR mimic now scores {:.6} < {:.6} — the ridge is gone.",
        sample_z.log_likelihood(&mar_mimic_z),
        sample_z.log_likelihood(&gen_z)
    );
}
