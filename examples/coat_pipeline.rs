//! The COAT protocol end to end: an MNAR training log of self-selected
//! ratings, an MAR test slice of uniformly-assigned ratings, and a
//! head-to-head of the main method families (a miniature of the paper's
//! Table IV, COAT column).
//!
//! ```sh
//! cargo run --release --example coat_pipeline
//! ```

use dt_core::{evaluate, registry, Method, TrainConfig};
use dt_data::{coat_like, RealWorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = coat_like(&RealWorldConfig {
        seed: 3,
        rating_effect: 1.5,
        with_truth: false,
        ..RealWorldConfig::default()
    });
    println!("dataset: {}", ds.summary());
    println!(
        "train positives {:.3} vs MAR-test positives {:.3} (the MNAR gap)\n",
        ds.train.mean_rating(),
        ds.test.mean_rating()
    );

    let cfg = TrainConfig {
        epochs: 20,
        emb_dim: 8,
        lr: 0.03,
        ..TrainConfig::default()
    };
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>9} {:>8}",
        "method", "AUC", "N@5", "R@5", "params", "sec"
    );
    for method in [
        Method::Mf,
        Method::Ips,
        Method::DrJl,
        Method::Esmm,
        Method::Escm2Dr,
        Method::DtIps,
        Method::DtDr,
    ] {
        let mut model = registry::build(method, &ds, &cfg, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let fit = model.fit(&ds, &mut rng);
        let eval = evaluate(model.as_ref(), &ds, 5);
        println!(
            "{:<10} {:>7.3} {:>7.3} {:>7.3} {:>9} {:>8.1}",
            model.name(),
            eval.auc,
            eval.ndcg,
            eval.recall,
            model.n_parameters(),
            fit.train_seconds,
        );
    }
}
