//! Quickstart: generate an MNAR dataset, train the naive baseline and the
//! paper's DT-IPS, and compare them on the unbiased test slice.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dt_core::{evaluate, registry, Method, TrainConfig};
use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. An MNAR world: what users rate depends on how much they like it.
    let ds = mechanism_dataset(
        Mechanism::Mnar,
        &MechanismConfig {
            n_users: 200,
            n_items: 300,
            target_density: 0.1,
            rating_effect: 2.5,
            feature_effect: 0.8,
            seed: 7,
            ..MechanismConfig::default()
        },
    );
    println!("dataset  : {}", ds.summary());
    println!(
        "selection bias: observed mean rating {:.3} vs population {:.3}\n",
        ds.train.mean_rating(),
        ds.truth.as_ref().unwrap().ratings.mean()
    );

    // 2. Train the naive baseline and DT-IPS with the same budget.
    let cfg = TrainConfig {
        epochs: 40,
        batch_size: 128,
        emb_dim: 16,
        ..TrainConfig::default()
    };
    for method in [Method::Mf, Method::Ips, Method::DtIps] {
        let mut model = registry::build(method, &ds, &cfg, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let fit = model.fit(&ds, &mut rng);
        let eval = evaluate(model.as_ref(), &ds, 5);
        println!(
            "{:8} | AUC {:.3} | NDCG@5 {:.3} | MSE-vs-truth {:.4} | {:.1}s, {} params",
            model.name(),
            eval.auc,
            eval.ndcg,
            eval.mse_vs_truth,
            fit.train_seconds,
            model.n_parameters(),
        );
    }

    println!("\nDT-IPS's propensity head models P(o=1|x,r); the vanilla IPS");
    println!("propensity can only express P(o=1|x) — the identification gap");
    println!("this library exists to demonstrate.");
}
