//! Zoo-wide contracts: every registered method upholds the `Recommender`
//! interface invariants on an MNAR dataset.

use dt_core::{registry, Method, TrainConfig};
use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_mnar() -> dt_data::Dataset {
    mechanism_dataset(
        Mechanism::Mnar,
        &MechanismConfig {
            n_users: 25,
            n_items: 30,
            target_density: 0.2,
            seed: 77,
            ..MechanismConfig::default()
        },
    )
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 64,
        emb_dim: 4,
        ..TrainConfig::default()
    }
}

/// Every method trains without NaNs and predicts probabilities on every
/// cell of the space.
#[test]
fn zoo_trains_and_predicts_probabilities() {
    let ds = tiny_mnar();
    let cfg = tiny_cfg();
    let all_pairs: Vec<(usize, usize)> = (0..ds.n_users)
        .flat_map(|u| (0..ds.n_items).map(move |i| (u, i)))
        .collect();
    for method in Method::ALL {
        let mut model = registry::build(method, &ds, &cfg, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let fit = model.fit(&ds, &mut rng);
        assert!(
            fit.final_loss.is_finite(),
            "{}: non-finite training loss",
            model.name()
        );
        let preds = model.predict(&all_pairs);
        assert_eq!(preds.len(), all_pairs.len());
        for (k, p) in preds.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(p) && p.is_finite(),
                "{}: prediction {p} at pair {:?}",
                model.name(),
                all_pairs[k]
            );
        }
    }
}

/// Loss traces have the declared length and no NaNs anywhere.
#[test]
fn zoo_loss_traces_are_well_formed() {
    let ds = tiny_mnar();
    let cfg = TrainConfig {
        epochs: 3,
        ..tiny_cfg()
    };
    for method in Method::ALL {
        let mut model = registry::build(method, &ds, &cfg, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let fit = model.fit(&ds, &mut rng);
        assert_eq!(fit.loss_trace.len(), 3, "{}", model.name());
        assert!(
            fit.loss_trace.iter().all(|l| l.is_finite()),
            "{}: {:?}",
            model.name(),
            fit.loss_trace
        );
    }
}

/// Predictions are pure: calling predict twice gives identical results,
/// and predict does not mutate the model.
#[test]
fn zoo_prediction_is_pure() {
    let ds = tiny_mnar();
    for method in [Method::Mf, Method::DtIps, Method::Esmm, Method::Mr] {
        let mut model = registry::build(method, &ds, &tiny_cfg(), 3);
        let mut rng = StdRng::seed_from_u64(3);
        model.fit(&ds, &mut rng);
        let pairs = [(0, 0), (4, 7), (24, 29)];
        let a = model.predict(&pairs);
        let b = model.predict(&pairs);
        assert_eq!(a, b, "{}", model.name());
    }
}

/// Empty prediction batches are fine.
#[test]
fn zoo_accepts_empty_batches() {
    let ds = tiny_mnar();
    for method in Method::ALL {
        let model = registry::build(method, &ds, &tiny_cfg(), 4);
        assert!(model.predict(&[]).is_empty(), "{}", model.name());
    }
}

/// All parameter counts are stable across construction with the same
/// config (no RNG-dependent architecture).
#[test]
fn zoo_parameter_counts_are_deterministic() {
    let ds = tiny_mnar();
    for method in Method::ALL {
        let a = registry::build(method, &ds, &tiny_cfg(), 5).n_parameters();
        let b = registry::build(method, &ds, &tiny_cfg(), 99).n_parameters();
        assert_eq!(a, b, "{method:?}");
    }
}

/// Regression test: the DR-family variants must produce *different*
/// models — the imputation pseudo-labels must reach the prediction
/// gradient (an earlier formulation detached them, collapsing every DR
/// variant onto the same trajectory).
#[test]
fn dr_variants_are_distinguishable() {
    let ds = tiny_mnar();
    let cfg = TrainConfig {
        epochs: 4,
        ..tiny_cfg()
    };
    let fit = |method: Method| {
        let mut model = registry::build(method, &ds, &cfg, 7);
        let mut rng = StdRng::seed_from_u64(7);
        model.fit(&ds, &mut rng);
        model.predict(&[(0, 0), (3, 7), (11, 13), (24, 29)])
    };
    let jl = fit(Method::DrJl);
    let mrdr = fit(Method::MrdrJl);
    let bias = fit(Method::DrBias);
    let stable = fit(Method::StableDr);
    let tdr_jl = fit(Method::TdrJl);
    assert_ne!(jl, mrdr, "DR-JL vs MRDR-JL");
    assert_ne!(jl, bias, "DR-JL vs DR-BIAS");
    assert_ne!(jl, stable, "DR-JL vs Stable-DR");
    assert_ne!(jl, tdr_jl, "DR-JL vs TDR-JL");
    assert_ne!(mrdr, bias, "MRDR-JL vs DR-BIAS");
}

/// DT-DR's imputation must influence the rating head (same regression
/// class as above): its predictions must differ from DT-IPS beyond the
/// density-scaled learning-rate effect.
#[test]
fn dt_dr_uses_its_imputation() {
    let ds = tiny_mnar();
    let cfg = TrainConfig {
        epochs: 4,
        ..tiny_cfg()
    };
    let fit = |method: Method| {
        let mut model = registry::build(method, &ds, &cfg, 7);
        let mut rng = StdRng::seed_from_u64(7);
        model.fit(&ds, &mut rng);
        model.predict(&[(0, 0), (3, 7), (11, 13)])
    };
    assert_ne!(fit(Method::DtIps), fit(Method::DtDr));
}
