//! The headline scientific claims, as end-to-end tests on generated data
//! where the ground truth is known exactly:
//!
//! 1. MNAR selection bias hurts the naive model's full-space accuracy.
//! 2. The disentangled methods (DT-IPS / DT-DR) recover accuracy the
//!    naive/vanilla methods lose under MNAR.
//! 3. Under MCAR nothing is broken in the first place.
//! 4. The DT propensity head approaches the *MNAR* propensity, which the
//!    MAR-propensity baseline structurally cannot.

use dt_core::{evaluate, registry, Method, TrainConfig};
use dt_data::{mechanism_dataset, Dataset, Mechanism, MechanismConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(mech: Mechanism, seed: u64) -> Dataset {
    mechanism_dataset(
        mech,
        &MechanismConfig {
            n_users: 80,
            n_items: 100,
            target_density: 0.12,
            rating_effect: 2.5,
            feature_effect: 0.8,
            seed,
            ..MechanismConfig::default()
        },
    )
}

fn cfg() -> TrainConfig {
    TrainConfig {
        epochs: 40,
        batch_size: 128,
        emb_dim: 16,
        lr: 0.03,
        ..TrainConfig::default()
    }
}

fn fit_and_eval(method: Method, ds: &Dataset, seed: u64) -> dt_core::EvalReport {
    let mut model = registry::build(method, ds, &cfg(), seed);
    let mut rng = StdRng::seed_from_u64(seed);
    model.fit(ds, &mut rng);
    evaluate(model.as_ref(), ds, 5)
}

#[test]
fn mnar_bias_shows_up_in_the_naive_model() {
    let ds = dataset(Mechanism::Mnar, 41);
    let mut model = registry::build(Method::Mf, &ds, &cfg(), 0);
    let mut rng = StdRng::seed_from_u64(0);
    model.fit(&ds, &mut rng);
    // The naive model, trained on over-positive data, over-predicts on the
    // full space: its mean prediction exceeds the true mean preference.
    let truth = ds.truth.as_ref().unwrap();
    let mut pred_sum = 0.0;
    let mut true_sum = 0.0;
    let mut n = 0.0;
    for u in (0..ds.n_users).step_by(2) {
        for i in (0..ds.n_items).step_by(2) {
            pred_sum += model.predict(&[(u, i)])[0];
            true_sum += truth.preference.get(u, i);
            n += 1.0;
        }
    }
    assert!(
        pred_sum / n > true_sum / n + 0.03,
        "naive over-prediction: {} vs {}",
        pred_sum / n,
        true_sum / n
    );
}

#[test]
fn dt_methods_beat_the_naive_baseline_under_mnar() {
    // Averaged over seeds to keep the comparison honest. The robust effect
    // (as in the paper's Table III) is on the full-space error against the
    // true preferences; AUC moves less on small synthetic data, so we
    // assert improvement on MSE and no regression on AUC.
    let seeds = [42, 43, 44];
    let (mut mf_auc, mut dt_auc, mut ips_mse, mut mf_mse, mut dt_mse) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for &s in &seeds {
        let ds = dataset(Mechanism::Mnar, s);
        let mf = fit_and_eval(Method::Mf, &ds, s);
        let ips = fit_and_eval(Method::Ips, &ds, s);
        let dt = fit_and_eval(Method::DtIps, &ds, s);
        mf_auc += mf.auc;
        dt_auc += dt.auc;
        mf_mse += mf.mse_vs_truth;
        ips_mse += ips.mse_vs_truth;
        dt_mse += dt.mse_vs_truth;
    }
    let n = seeds.len() as f64;
    let (mf_auc, dt_auc) = (mf_auc / n, dt_auc / n);
    let (mf_mse, ips_mse, dt_mse) = (mf_mse / n, ips_mse / n, dt_mse / n);
    assert!(
        dt_mse < mf_mse - 0.02,
        "DT-IPS MSE-vs-truth {dt_mse:.4} should clearly beat MF {mf_mse:.4}"
    );
    assert!(
        dt_mse < ips_mse,
        "DT-IPS MSE-vs-truth {dt_mse:.4} should beat MAR-propensity IPS {ips_mse:.4}"
    );
    assert!(
        dt_auc > mf_auc - 0.02,
        "DT-IPS AUC {dt_auc:.4} should not regress vs MF {mf_auc:.4}"
    );
}

#[test]
fn under_mcar_naive_is_already_fine() {
    let ds = dataset(Mechanism::Mcar, 45);
    let mf = fit_and_eval(Method::Mf, &ds, 0);
    assert!(mf.auc > 0.55, "MCAR MF AUC {}", mf.auc);
    // And the debiased method does not collapse there either.
    let dt = fit_and_eval(Method::DtIps, &ds, 0);
    assert!(dt.auc > 0.55, "MCAR DT AUC {}", dt.auc);
}

#[test]
fn dt_propensity_correlates_with_the_mnar_propensity_better_than_mar_head() {
    let ds = dataset(Mechanism::Mnar, 46);
    let truth = ds.truth.as_ref().unwrap();

    let mut dt = registry::build(Method::DtIps, &ds, &cfg(), 0);
    let mut rng = StdRng::seed_from_u64(0);
    dt.fit(&ds, &mut rng);

    let mut ips = registry::build(Method::Ips, &ds, &cfg(), 0);
    let mut rng = StdRng::seed_from_u64(0);
    ips.fit(&ds, &mut rng);

    // Correlation against the true MNAR propensity over a grid.
    let mut dt_est = Vec::new();
    let mut ips_est = Vec::new();
    let mut oracle = Vec::new();
    for u in 0..ds.n_users {
        for i in (0..ds.n_items).step_by(3) {
            dt_est.push(dt.propensity(u, i).unwrap());
            ips_est.push(ips.propensity(u, i).unwrap());
            oracle.push(truth.propensity_xr.get(u, i));
        }
    }
    let dt_corr = pearson(&dt_est, &oracle);
    let ips_corr = pearson(&ips_est, &oracle);
    assert!(
        dt_corr > ips_corr,
        "DT propensity corr {dt_corr:.3} should beat MAR-head corr {ips_corr:.3}"
    );
    assert!(dt_corr > 0.2, "DT propensity corr {dt_corr:.3}");
}

#[test]
fn dt_beats_mar_ips_across_rating_effect_strengths() {
    // Lemma 2 in action: with a non-zero r → o edge the MAR propensity is
    // structurally mis-specified, and the DT head's identified MNAR
    // propensity should win on full-space error at both a weak and a
    // strong rating effect. (The paper's Table III likewise shows DT ahead
    // across ρ without a strictly monotone margin — DT even loses at
    // ρ = 0.5 there — so no monotonicity is asserted.)
    let make = |rating_effect: f64, seed: u64| {
        mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 80,
                n_items: 100,
                target_density: 0.12,
                rating_effect,
                feature_effect: 0.8,
                seed,
                ..MechanismConfig::default()
            },
        )
    };
    let gap = |rating_effect: f64| {
        let seeds = [47u64, 48, 49];
        let mut g = 0.0;
        for &s in &seeds {
            let ds = make(rating_effect, s);
            g += fit_and_eval(Method::DtIps, &ds, 0).mse_vs_truth
                - fit_and_eval(Method::Ips, &ds, 0).mse_vs_truth;
        }
        g / seeds.len() as f64
    };
    let weak = gap(0.8);
    let strong = gap(2.5);
    // gap < 0 means DT better.
    assert!(weak < 0.0, "weak-effect gap {weak:.4} should favour DT");
    assert!(
        strong < 0.0,
        "strong-effect gap {strong:.4} should favour DT"
    );
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}
