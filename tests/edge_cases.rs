//! Failure-injection and degenerate-input behaviour of the training stack.

use dt_core::{evaluate, registry, Method, TrainConfig};
use dt_data::{Dataset, Interaction, InteractionLog};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset_from(log: InteractionLog) -> Dataset {
    let ds = Dataset {
        name: "edge".into(),
        n_users: log.n_users(),
        n_items: log.n_items(),
        test: InteractionLog::new(log.n_users(), log.n_items()),
        train: log,
        truth: None,
    };
    ds.validate();
    ds
}

fn tiny_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 8,
        emb_dim: 4,
        ..TrainConfig::default()
    }
}

#[test]
fn all_positive_training_log_does_not_blow_up() {
    // The MNAR extreme: every observed rating is positive. Losses must stay
    // finite and predictions must remain probabilities.
    let mut log = InteractionLog::new(10, 12);
    for u in 0..10u32 {
        for i in 0..4u32 {
            log.push(Interaction::new(u, (u + i) % 12, 1.0));
        }
    }
    let ds = dataset_from(log);
    for method in [
        Method::Mf,
        Method::Ips,
        Method::DrJl,
        Method::DtIps,
        Method::Esmm,
    ] {
        let mut model = registry::build(method, &ds, &tiny_cfg(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        let fit = model.fit(&ds, &mut rng);
        assert!(fit.final_loss.is_finite(), "{}", model.name());
        let p = model.predict(&[(0, 0)])[0];
        assert!((0.0..=1.0).contains(&p), "{}: {p}", model.name());
    }
}

#[test]
fn single_user_catalogue() {
    let mut log = InteractionLog::new(1, 20);
    for i in 0..10u32 {
        log.push(Interaction::new(0, i, f64::from(i % 2)));
    }
    let ds = dataset_from(log);
    let mut model = registry::build(Method::DtIps, &ds, &tiny_cfg(), 0);
    let mut rng = StdRng::seed_from_u64(0);
    let fit = model.fit(&ds, &mut rng);
    assert!(fit.final_loss.is_finite());
}

#[test]
fn single_item_catalogue() {
    let mut log = InteractionLog::new(20, 1);
    for u in 0..10u32 {
        log.push(Interaction::new(u, 0, f64::from(u % 2)));
    }
    let ds = dataset_from(log);
    let mut model = registry::build(Method::DtDr, &ds, &tiny_cfg(), 0);
    let mut rng = StdRng::seed_from_u64(0);
    let fit = model.fit(&ds, &mut rng);
    assert!(fit.final_loss.is_finite());
}

#[test]
fn one_interaction_is_enough_to_train() {
    let mut log = InteractionLog::new(3, 3);
    log.push(Interaction::new(1, 1, 1.0));
    let ds = dataset_from(log);
    for method in [Method::Mf, Method::Ips, Method::DtIps] {
        let mut model = registry::build(method, &ds, &tiny_cfg(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        let fit = model.fit(&ds, &mut rng);
        assert!(fit.final_loss.is_finite(), "{}", model.name());
    }
}

#[test]
fn minimum_embedding_dimension() {
    // emb_dim 2 forces primary_dim 1 — the smallest legal disentanglement.
    let mut log = InteractionLog::new(6, 6);
    for u in 0..6u32 {
        log.push(Interaction::new(u, u, 1.0));
        log.push(Interaction::new(u, (u + 1) % 6, 0.0));
    }
    let ds = dataset_from(log);
    let cfg = TrainConfig {
        emb_dim: 2,
        ..tiny_cfg()
    };
    assert_eq!(cfg.primary_dim(), 1);
    let mut model = registry::build(Method::DtIps, &ds, &cfg, 0);
    let mut rng = StdRng::seed_from_u64(0);
    assert!(model.fit(&ds, &mut rng).final_loss.is_finite());
}

#[test]
fn evaluation_with_empty_test_log_yields_nans_not_panics() {
    let mut log = InteractionLog::new(4, 4);
    log.push(Interaction::new(0, 0, 1.0));
    let ds = dataset_from(log);
    let mut model = registry::build(Method::Mf, &ds, &tiny_cfg(), 0);
    let mut rng = StdRng::seed_from_u64(0);
    model.fit(&ds, &mut rng);
    let eval = evaluate(model.as_ref(), &ds, 5);
    assert!(eval.auc.is_nan());
    assert!(eval.ndcg.is_nan());
    assert!(eval.mse_vs_truth.is_nan());
}

#[test]
fn huge_ratings_in_log_stay_finite() {
    // Parsers binarise before training normally; but a user feeding raw
    // 5-star values directly must not produce NaNs (squared error on
    // sigmoid predictions is bounded).
    let mut log = InteractionLog::new(5, 5);
    for u in 0..5u32 {
        log.push(Interaction::new(u, u, 5.0));
    }
    let ds = dataset_from(log);
    let mut model = registry::build(Method::Ips, &ds, &tiny_cfg(), 0);
    let mut rng = StdRng::seed_from_u64(0);
    assert!(model.fit(&ds, &mut rng).final_loss.is_finite());
}

#[test]
fn predictions_outside_training_support_are_probabilities() {
    let mut log = InteractionLog::new(30, 30);
    // Only the top-left corner is ever trained.
    for u in 0..3u32 {
        for i in 0..3u32 {
            log.push(Interaction::new(u, i, 1.0));
        }
    }
    let ds = dataset_from(log);
    let mut model = registry::build(Method::DtIps, &ds, &tiny_cfg(), 0);
    let mut rng = StdRng::seed_from_u64(0);
    model.fit(&ds, &mut rng);
    // Cold users/items: predictions must stay valid probabilities.
    for p in model.predict(&[(29, 29), (0, 29), (29, 0)]) {
        assert!((0.0..=1.0).contains(&p));
    }
}
