//! Cross-crate integration: dataset generation → training → evaluation,
//! exercising the full substrate stack (tensor → autograd → optim →
//! models → core) through the public API only.

use dt_core::{evaluate, registry, Method, TrainConfig};
use dt_data::{coat_like, mechanism_dataset, Mechanism, MechanismConfig, RealWorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_mnar(seed: u64) -> dt_data::Dataset {
    mechanism_dataset(
        Mechanism::Mnar,
        &MechanismConfig {
            n_users: 50,
            n_items: 60,
            target_density: 0.15,
            rating_effect: 2.0,
            seed,
            ..MechanismConfig::default()
        },
    )
}

fn quick_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 5,
        batch_size: 128,
        emb_dim: 8,
        ..TrainConfig::default()
    }
}

#[test]
fn full_pipeline_runs_for_representative_methods() {
    let ds = small_mnar(31);
    for method in [
        Method::Mf,
        Method::Ips,
        Method::DrJl,
        Method::Esmm,
        Method::DtIps,
    ] {
        let mut model = registry::build(method, &ds, &quick_cfg(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        let fit = model.fit(&ds, &mut rng);
        assert!(fit.final_loss.is_finite(), "{}", model.name());
        assert_eq!(fit.loss_trace.len(), fit.epochs_run);
        assert!(fit.train_seconds > 0.0);

        let eval = evaluate(model.as_ref(), &ds, 5);
        assert!(
            eval.auc.is_finite() && eval.auc > 0.35,
            "{}: AUC {}",
            model.name(),
            eval.auc
        );
        assert!((0.0..=1.0).contains(&eval.ndcg));
        assert!((0.0..=1.0).contains(&eval.recall));
        assert!(eval.mse_vs_truth.is_finite());
    }
}

#[test]
fn training_beats_an_untrained_model() {
    let ds = small_mnar(32);
    let cfg = TrainConfig {
        epochs: 25,
        ..quick_cfg()
    };
    let untrained = registry::build(Method::Mf, &ds, &cfg, 0);
    let eval_untrained = evaluate(untrained.as_ref(), &ds, 5);

    let mut trained = registry::build(Method::Mf, &ds, &cfg, 0);
    let mut rng = StdRng::seed_from_u64(0);
    trained.fit(&ds, &mut rng);
    let eval_trained = evaluate(trained.as_ref(), &ds, 5);

    assert!(
        eval_trained.auc > eval_untrained.auc + 0.05,
        "trained {} vs untrained {}",
        eval_trained.auc,
        eval_untrained.auc
    );
}

#[test]
fn coat_protocol_end_to_end() {
    let ds = coat_like(&RealWorldConfig {
        seed: 5,
        ..RealWorldConfig::default()
    });
    ds.validate();
    let cfg = quick_cfg();
    let mut model = registry::build(Method::DtIps, &ds, &cfg, 0);
    let mut rng = StdRng::seed_from_u64(0);
    model.fit(&ds, &mut rng);
    let eval = evaluate(model.as_ref(), &ds, 5);
    assert!(eval.auc > 0.5, "DT-IPS on coat-like: AUC {}", eval.auc);
    // No ground truth attached → pointwise metrics are NaN by contract.
    assert!(eval.mse_vs_truth.is_nan());
}

#[test]
fn fits_are_deterministic_under_fixed_seeds() {
    let ds = small_mnar(33);
    let run = || {
        let mut model = registry::build(Method::DtDr, &ds, &quick_cfg(), 4);
        let mut rng = StdRng::seed_from_u64(9);
        let fit = model.fit(&ds, &mut rng);
        (fit.final_loss, model.predict(&[(0, 0), (7, 11), (49, 59)]))
    };
    let (loss_a, preds_a) = run();
    let (loss_b, preds_b) = run();
    assert_eq!(loss_a, loss_b);
    assert_eq!(preds_a, preds_b);
}

#[test]
fn different_seeds_give_different_models() {
    let ds = small_mnar(34);
    let run = |seed: u64| {
        let mut model = registry::build(Method::Mf, &ds, &quick_cfg(), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        model.fit(&ds, &mut rng);
        model.predict(&[(0, 0)])[0]
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn propensity_reporting_methods_expose_probabilities() {
    let ds = small_mnar(35);
    for method in [Method::Ips, Method::DtIps, Method::Esmm, Method::IpsV2] {
        let mut model = registry::build(method, &ds, &quick_cfg(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        model.fit(&ds, &mut rng);
        let p = model.propensity(3, 4);
        let p = p.unwrap_or_else(|| panic!("{} should expose propensities", model.name()));
        assert!(p > 0.0 && p <= 1.0, "{}: {p}", model.name());
    }
    // Pure outcome models expose none.
    let mf = registry::build(Method::Mf, &ds, &quick_cfg(), 0);
    assert!(mf.propensity(0, 0).is_none());
}
