//! Gaussian density/CDF and categorical sampling.

use rand::Rng;

/// Standard normal density `φ(x)`.
#[must_use]
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF `Φ(x)` via the Abramowitz–Stegun erf approximation
/// (max absolute error < 1.5e-7, plenty for the identifiability demos).
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Draws a Bernoulli sample with success probability `p` (clamped to [0,1]).
#[must_use]
pub fn sample_bernoulli(p: f64, rng: &mut impl Rng) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Draws an index from an unnormalised weight vector.
///
/// # Panics
/// Panics when the weights are empty, contain negatives, or sum to zero.
#[must_use]
pub fn sample_categorical(weights: &[f64], rng: &mut impl Rng) -> usize {
    assert!(!weights.is_empty(), "sample_categorical: empty weights");
    let total: f64 = weights
        .iter()
        .inspect(|w| assert!(**w >= 0.0, "sample_categorical: negative weight"))
        .sum();
    assert!(total > 0.0, "sample_categorical: weights sum to zero");
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((normal_pdf(0.0) - 0.398_942_280).abs() < 1e-8);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| sample_bernoulli(0.3, &mut rng)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn categorical_frequencies() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_categorical(&w, &mut rng)] += 1;
        }
        assert!((counts[2] as f64 / 30_000.0 - 0.6).abs() < 0.02);
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn zero_weights_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample_categorical(&[0.0, 0.0], &mut rng);
    }
}
