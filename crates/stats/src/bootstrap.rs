//! Percentile bootstrap confidence intervals.

use rand::Rng;

/// A bootstrap percentile confidence interval.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapCi {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

/// Percentile-bootstrap CI for an arbitrary statistic.
///
/// Resamples `data` with replacement `n_resamples` times and returns the
/// `(alpha/2, 1 − alpha/2)` percentiles of the statistic's distribution.
///
/// # Panics
/// Panics on empty data, `n_resamples == 0`, or `alpha` outside `(0, 1)`.
#[must_use]
pub fn bootstrap_ci(
    data: &[f64],
    n_resamples: usize,
    alpha: f64,
    rng: &mut impl Rng,
    statistic: impl Fn(&[f64]) -> f64,
) -> BootstrapCi {
    assert!(!data.is_empty(), "bootstrap_ci: empty data");
    assert!(n_resamples > 0, "bootstrap_ci: need at least one resample");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "bootstrap_ci: alpha must be in (0,1)"
    );
    let estimate = statistic(data);
    let mut stats = Vec::with_capacity(n_resamples);
    let mut buf = vec![0.0; data.len()];
    for _ in 0..n_resamples {
        for slot in &mut buf {
            *slot = data[rng.gen_range(0..data.len())];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(f64::total_cmp);
    let idx = |q: f64| -> f64 {
        let pos = q * (stats.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        stats[lo] * (1.0 - frac) + stats[hi] * frac
    };
    BootstrapCi {
        estimate,
        lo: idx(alpha / 2.0),
        hi: idx(1.0 - alpha / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::mean;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ci_brackets_the_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<f64> = (0..500).map(|i| (i % 10) as f64).collect(); // mean 4.5
        let ci = bootstrap_ci(&data, 1000, 0.05, &mut rng, mean);
        assert!((ci.estimate - 4.5).abs() < 1e-12);
        assert!(ci.lo < 4.5 && 4.5 < ci.hi);
        assert!(ci.hi - ci.lo < 1.0, "CI too wide: [{}, {}]", ci.lo, ci.hi);
    }

    #[test]
    fn degenerate_data_gives_zero_width() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = vec![2.0; 50];
        let ci = bootstrap_ci(&data, 200, 0.05, &mut rng, mean);
        assert_eq!(ci.lo, 2.0);
        assert_eq!(ci.hi, 2.0);
    }

    #[test]
    fn narrower_alpha_widens_interval() {
        let data: Vec<f64> = (0..200).map(|i| f64::from(i % 7)).collect();
        let wide = bootstrap_ci(&data, 2000, 0.01, &mut StdRng::seed_from_u64(1), mean);
        let tight = bootstrap_ci(&data, 2000, 0.20, &mut StdRng::seed_from_u64(1), mean);
        assert!(wide.hi - wide.lo > tight.hi - tight.lo);
    }
}
