//! # dt-stats
//!
//! Statistical primitives for the `disrec` workspace: link functions,
//! Gaussian density/CDF, logistic regression (the classical MAR propensity
//! model), the Naive-Bayes MNAR propensity estimator of Schnabel et al.
//! (2016), paired t-tests (used for the significance stars in the paper's
//! Table IV), and bootstrap confidence intervals.

#![forbid(unsafe_code)]

mod bootstrap;
mod distributions;
mod func;
mod logistic;
mod naive_bayes;
mod ttest;

pub use bootstrap::{bootstrap_ci, BootstrapCi};
pub use distributions::{normal_cdf, normal_pdf, sample_bernoulli, sample_categorical};
pub use func::{expit, log1pexp, logit, mean, variance};
pub use logistic::LogisticRegression;
pub use naive_bayes::NaiveBayesPropensity;
pub use ttest::{paired_t_test, TTestResult};
