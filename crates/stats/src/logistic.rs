//! Logistic regression — the classical parametric MAR propensity model
//! `P(o = 1 | x) = σ(xᵀw + b)`.

use dt_tensor::Tensor;

use crate::func::{expit, log1pexp};

/// L2-regularised logistic regression fitted by full-batch gradient descent
/// with backtracking step control.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    l2: f64,
}

impl LogisticRegression {
    /// An untrained model for `n_features` inputs with L2 penalty `l2`.
    #[must_use]
    pub fn new(n_features: usize, l2: f64) -> Self {
        assert!(l2 >= 0.0, "LogisticRegression: negative l2");
        Self {
            weights: vec![0.0; n_features],
            bias: 0.0,
            l2,
        }
    }

    /// Fitted coefficient vector.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Linear score `xᵀw + b` for one example.
    #[must_use]
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "decision: feature mismatch");
        self.bias + x.iter().zip(&self.weights).map(|(a, b)| a * b).sum::<f64>()
    }

    /// Predicted probability for one example.
    #[must_use]
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        expit(self.decision(x))
    }

    /// Mean negative log-likelihood plus the L2 penalty on `x: n×d`.
    #[must_use]
    pub fn loss(&self, x: &Tensor, y: &[f64]) -> f64 {
        assert_eq!(x.rows(), y.len(), "loss: row/label mismatch");
        let n = x.rows() as f64;
        let nll: f64 = (0..x.rows())
            .map(|i| {
                let z = self.decision(x.row(i));
                log1pexp(z) - y[i] * z
            })
            .sum::<f64>()
            / n;
        nll + 0.5 * self.l2 * self.weights.iter().map(|w| w * w).sum::<f64>()
    }

    /// Fits on the design matrix `x` (`n × d`) and labels `y ∈ {0,1}` by
    /// gradient descent; returns the final loss.
    ///
    /// # Panics
    /// Panics on shape mismatch or labels outside `[0, 1]`.
    pub fn fit(&mut self, x: &Tensor, y: &[f64], epochs: usize, lr: f64) -> f64 {
        assert_eq!(x.rows(), y.len(), "fit: row/label mismatch");
        assert_eq!(x.cols(), self.weights.len(), "fit: feature mismatch");
        assert!(
            y.iter().all(|v| (0.0..=1.0).contains(v)),
            "fit: labels must lie in [0,1]"
        );
        let n = x.rows() as f64;
        let mut lr = lr;
        let mut prev_loss = self.loss(x, y);
        for _ in 0..epochs {
            let mut gw = vec![0.0; self.weights.len()];
            let mut gb = 0.0;
            for (i, &yi) in y.iter().enumerate() {
                let resid = expit(self.decision(x.row(i))) - yi;
                gb += resid;
                for (g, xv) in gw.iter_mut().zip(x.row(i)) {
                    *g += resid * xv;
                }
            }
            for (g, w) in gw.iter_mut().zip(&self.weights) {
                *g = *g / n + self.l2 * w;
            }
            gb /= n;

            for (w, g) in self.weights.iter_mut().zip(&gw) {
                *w -= lr * g;
            }
            self.bias -= lr * gb;

            let loss = self.loss(x, y);
            if loss > prev_loss {
                // diverging: halve the step and continue
                lr *= 0.5;
            }
            prev_loss = loss;
        }
        prev_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synthetic(n: usize, w: &[f64], b: f64, rng: &mut StdRng) -> (Tensor, Vec<f64>) {
        let d = w.len();
        let x = dt_tensor::normal(n, d, 0.0, 1.0, rng);
        let y = (0..n)
            .map(|i| {
                let z: f64 = b + x.row(i).iter().zip(w).map(|(a, c)| a * c).sum::<f64>();
                f64::from(rng.gen::<f64>() < expit(z))
            })
            .collect();
        (x, y)
    }

    #[test]
    fn recovers_generating_coefficients() {
        let mut rng = StdRng::seed_from_u64(11);
        let true_w = [1.5, -2.0];
        let (x, y) = synthetic(4000, &true_w, 0.5, &mut rng);
        let mut m = LogisticRegression::new(2, 0.0);
        m.fit(&x, &y, 500, 1.0);
        assert!((m.weights()[0] - 1.5).abs() < 0.2, "w0 {}", m.weights()[0]);
        assert!((m.weights()[1] + 2.0).abs() < 0.2, "w1 {}", m.weights()[1]);
        assert!((m.bias() - 0.5).abs() < 0.2, "b {}", m.bias());
    }

    #[test]
    fn loss_decreases_during_fit() {
        let mut rng = StdRng::seed_from_u64(5);
        let (x, y) = synthetic(500, &[1.0], 0.0, &mut rng);
        let mut m = LogisticRegression::new(1, 0.0);
        let initial = m.loss(&x, &y);
        let fitted = m.fit(&x, &y, 100, 0.5);
        assert!(fitted < initial);
    }

    #[test]
    fn l2_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let (x, y) = synthetic(800, &[3.0], 0.0, &mut rng);
        let mut free = LogisticRegression::new(1, 0.0);
        let mut ridge = LogisticRegression::new(1, 1.0);
        free.fit(&x, &y, 300, 0.5);
        ridge.fit(&x, &y, 300, 0.5);
        assert!(ridge.weights()[0].abs() < free.weights()[0].abs());
    }

    #[test]
    fn probabilities_are_probabilities() {
        let m = LogisticRegression::new(2, 0.0);
        let p = m.predict_proba(&[10.0, -3.0]);
        assert!((0.0..=1.0).contains(&p));
        // Untrained model predicts 0.5.
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "labels must lie")]
    fn invalid_labels_panic() {
        let mut m = LogisticRegression::new(1, 0.0);
        let x = Tensor::ones(1, 1);
        m.fit(&x, &[2.0], 1, 0.1);
    }
}

// ---------------------------------------------------------------------------
// IRLS (Newton) fitting
// ---------------------------------------------------------------------------

impl LogisticRegression {
    /// Fits by iteratively reweighted least squares (Newton's method):
    /// each step solves `(XᵀWX + (λ + ridge)·I) δ = −∇` via Cholesky, where
    /// `W = diag(p(1−p))`. Converges in a handful of iterations on
    /// well-conditioned problems and is the classical fitting procedure
    /// for parametric propensity models; `ridge` guards separable data.
    ///
    /// Returns the final loss.
    ///
    /// # Panics
    /// Panics on shape mismatch or labels outside `[0, 1]`.
    pub fn fit_irls(&mut self, x: &Tensor, y: &[f64], max_iter: usize, tol: f64) -> f64 {
        assert_eq!(x.rows(), y.len(), "fit_irls: row/label mismatch");
        assert_eq!(x.cols(), self.weights.len(), "fit_irls: feature mismatch");
        assert!(
            y.iter().all(|v| (0.0..=1.0).contains(v)),
            "fit_irls: labels must lie in [0,1]"
        );
        let n = x.rows();
        let d = x.cols() + 1; // + intercept
        let n_f = n as f64;

        for _ in 0..max_iter {
            // Gradient and Hessian of the mean NLL (+ L2 on the weights).
            let mut grad = Tensor::zeros(d, 1);
            let mut hess = Tensor::zeros(d, d);
            for i in 0..n {
                let p = expit(self.decision(x.row(i)));
                let resid = p - y[i];
                let w = (p * (1.0 - p)).max(1e-10);
                // Feature vector with intercept in slot 0.
                let feat = |k: usize| if k == 0 { 1.0 } else { x.row(i)[k - 1] };
                for a in 0..d {
                    grad.set(a, 0, grad.get(a, 0) + resid * feat(a) / n_f);
                    for b in a..d {
                        let v = hess.get(a, b) + w * feat(a) * feat(b) / n_f;
                        hess.set(a, b, v);
                        hess.set(b, a, v);
                    }
                }
            }
            // L2 penalty on the weights (not the intercept) + a small
            // ridge for numerical safety under separation.
            for a in 1..d {
                grad.set(a, 0, grad.get(a, 0) + self.l2 * self.weights[a - 1]);
            }
            for a in 0..d {
                let pen = if a == 0 { 1e-9 } else { self.l2 + 1e-9 };
                hess.set(a, a, hess.get(a, a) + pen);
            }

            let delta = hess
                .solve_spd(&grad)
                .expect("IRLS Hessian is positive definite by construction");
            self.bias -= delta.get(0, 0);
            for (w, k) in self.weights.iter_mut().zip(1..d) {
                *w -= delta.get(k, 0);
            }
            if delta.data().iter().map(|v| v.abs()).fold(0.0, f64::max) < tol {
                break;
            }
        }
        self.loss(x, y)
    }
}

#[cfg(test)]
mod irls_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn synthetic(n: usize, w: &[f64], b: f64, rng: &mut StdRng) -> (Tensor, Vec<f64>) {
        let d = w.len();
        let x = dt_tensor::normal(n, d, 0.0, 1.0, rng);
        let y = (0..n)
            .map(|i| {
                let z: f64 = b + x.row(i).iter().zip(w).map(|(a, c)| a * c).sum::<f64>();
                f64::from(rng.gen::<f64>() < expit(z))
            })
            .collect();
        (x, y)
    }

    #[test]
    fn irls_recovers_coefficients_quickly() {
        let mut rng = StdRng::seed_from_u64(21);
        let (x, y) = synthetic(4000, &[1.5, -2.0], 0.5, &mut rng);
        let mut m = LogisticRegression::new(2, 0.0);
        m.fit_irls(&x, &y, 25, 1e-10);
        assert!((m.weights()[0] - 1.5).abs() < 0.2, "w0 {}", m.weights()[0]);
        assert!((m.weights()[1] + 2.0).abs() < 0.2, "w1 {}", m.weights()[1]);
        assert!((m.bias() - 0.5).abs() < 0.2, "b {}", m.bias());
    }

    #[test]
    fn irls_matches_gradient_descent_at_convergence() {
        let mut rng = StdRng::seed_from_u64(22);
        let (x, y) = synthetic(1500, &[1.0, 0.5], -0.3, &mut rng);
        let mut gd = LogisticRegression::new(2, 1e-3);
        gd.fit(&x, &y, 3000, 1.0);
        let mut newton = LogisticRegression::new(2, 1e-3);
        newton.fit_irls(&x, &y, 50, 1e-12);
        assert!(newton.loss(&x, &y) <= gd.loss(&x, &y) + 1e-6);
        for (a, b) in gd.weights().iter().zip(newton.weights()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn irls_handles_separable_data_via_ridge() {
        // Perfectly separable: plain Newton diverges; the ridge keeps the
        // solve finite.
        let x = Tensor::from_rows(&[&[-2.0], &[-1.0], &[1.0], &[2.0]]);
        let y = [0.0, 0.0, 1.0, 1.0];
        let mut m = LogisticRegression::new(1, 1e-2);
        let loss = m.fit_irls(&x, &y, 100, 1e-10);
        assert!(loss.is_finite());
        assert!(m.weights()[0] > 0.0);
    }
}
