//! Paired t-test, used for the significance markers in the paper's Table IV.

use crate::func::{mean, variance};

/// Result of a paired t-test.
#[derive(Debug, Clone, Copy)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: usize,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// `true` when the two-sided p-value is at or below `alpha`.
    #[must_use]
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value <= alpha
    }
}

/// Two-sided paired t-test on matched samples.
///
/// # Panics
/// Panics when the samples have different lengths or fewer than two pairs.
#[must_use]
pub fn paired_t_test(a: &[f64], b: &[f64]) -> TTestResult {
    assert_eq!(a.len(), b.len(), "paired_t_test: length mismatch");
    assert!(a.len() >= 2, "paired_t_test: need at least two pairs");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len() as f64;
    let d_mean = mean(&diffs);
    let d_var = variance(&diffs);
    let df = diffs.len() - 1;
    if d_var == 0.0 {
        // All differences identical: either exactly zero (no effect) or a
        // deterministic shift (infinitely significant).
        let p = if d_mean == 0.0 { 1.0 } else { 0.0 };
        return TTestResult {
            t: if d_mean == 0.0 { 0.0 } else { f64::INFINITY },
            df,
            p_value: p,
        };
    }
    let t = d_mean / (d_var / n).sqrt();
    let p = 2.0 * student_t_sf(t.abs(), df as f64);
    TTestResult { t, df, p_value: p }
}

/// Student-t survival function `P(T > t)` via the regularised incomplete
/// beta function.
fn student_t_sf(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    0.5 * incomplete_beta(0.5 * df, 0.5, x)
}

/// Regularised incomplete beta `I_x(a, b)` via the continued-fraction
/// expansion (Numerical Recipes §6.4).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos log-gamma.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 7] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_4e-5,
        0.0,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in &G[..6] {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(5) = 24
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-10);
        // Γ(0.5) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_endpoints_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let x = 0.37;
        let lhs = incomplete_beta(2.5, 1.5, x);
        let rhs = 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
        // I_x(1,1) = x (uniform)
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_sf_matches_table_values() {
        // t=2.776, df=4 → two-sided p = 0.05 → sf = 0.025
        assert!((student_t_sf(2.776, 4.0) - 0.025).abs() < 5e-4);
        // t=1.96, df large → sf → 0.025
        assert!((student_t_sf(1.96, 10_000.0) - 0.025).abs() < 5e-4);
    }

    #[test]
    fn detects_obvious_difference() {
        let a = [1.0, 1.1, 0.9, 1.05, 0.98, 1.02];
        let b = [2.0, 2.1, 1.9, 2.05, 1.98, 2.02];
        let r = paired_t_test(&a, &b);
        assert!(r.significant(0.001), "p = {}", r.p_value);
        assert!(r.t < 0.0);
    }

    #[test]
    fn no_difference_is_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = paired_t_test(&a, &a);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn noisy_equal_means_rarely_significant() {
        let a = [1.0, 1.2, 0.8, 1.1, 0.9, 1.0, 1.05, 0.95];
        let b = [1.01, 1.19, 0.81, 1.09, 0.91, 1.0, 1.04, 0.96];
        let r = paired_t_test(&a, &b);
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }
}
