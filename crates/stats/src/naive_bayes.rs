//! The Naive-Bayes propensity estimator of Schnabel et al. (2016).
//!
//! For rating-dependent (MNAR) missingness, the propensity for a pair with
//! rating value `r` is estimated via Bayes' rule:
//!
//! ```text
//! P(o = 1 | r) = P(r | o = 1) · P(o = 1) / P(r)
//! ```
//!
//! `P(r | o = 1)` and `P(o = 1)` come from the MNAR training log, while the
//! marginal `P(r)` requires a small MCAR (uniformly-logged) sample — exactly
//! the COAT/Yahoo protocol the paper evaluates under. This estimator is the
//! classical way to get at the *MNAR propensity* `P(o|x,r)` when a uniform
//! slice exists, and serves as a reference point for the paper's
//! disentanglement method, which needs no such slice.

/// Naive-Bayes propensity over a discrete rating alphabet `0..n_levels`.
#[derive(Debug, Clone)]
pub struct NaiveBayesPropensity {
    /// `P(r = v | o = 1)` for each rating level `v`.
    p_r_given_o: Vec<f64>,
    /// `P(r = v)` from the MCAR sample.
    p_r: Vec<f64>,
    /// Marginal observation rate `P(o = 1)`.
    p_o: f64,
}

impl NaiveBayesPropensity {
    /// Fits from an MNAR log and an MCAR sample of ratings (both encoded as
    /// level indices in `0..n_levels`), with Laplace smoothing `alpha`.
    ///
    /// `n_total_pairs` is `|D| = |U|·|I|`, used for `P(o=1)`.
    ///
    /// # Panics
    /// Panics when either sample is empty, a rating is out of range, or
    /// `n_total_pairs < observed.len()`.
    #[must_use]
    pub fn fit(
        observed: &[usize],
        mcar_sample: &[usize],
        n_levels: usize,
        n_total_pairs: usize,
        alpha: f64,
    ) -> Self {
        assert!(!observed.is_empty(), "NaiveBayesPropensity: empty MNAR log");
        assert!(
            !mcar_sample.is_empty(),
            "NaiveBayesPropensity: empty MCAR sample"
        );
        assert!(
            n_total_pairs >= observed.len(),
            "NaiveBayesPropensity: |D| smaller than the observed log"
        );
        let count = |xs: &[usize]| -> Vec<f64> {
            let mut c = vec![alpha; n_levels];
            for &x in xs {
                assert!(x < n_levels, "rating level {x} out of range 0..{n_levels}");
                c[x] += 1.0;
            }
            let total: f64 = c.iter().sum();
            c.iter().map(|v| v / total).collect()
        };
        Self {
            p_r_given_o: count(observed),
            p_r: count(mcar_sample),
            p_o: observed.len() as f64 / n_total_pairs as f64,
        }
    }

    /// Estimated propensity `P(o = 1 | r = level)`, clamped to `(0, 1]`.
    #[must_use]
    pub fn propensity(&self, level: usize) -> f64 {
        assert!(level < self.p_r.len(), "rating level out of range");
        let p = self.p_r_given_o[level] * self.p_o / self.p_r[level];
        p.clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Marginal observation rate `P(o = 1)`.
    #[must_use]
    pub fn marginal(&self) -> f64 {
        self.p_o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Simulate a known MNAR mechanism and check the estimator recovers it.
    #[test]
    fn recovers_rating_dependent_propensities() {
        let mut rng = StdRng::seed_from_u64(42);
        // True model: ratings uniform over 5 levels; P(o=1|r) grows with r.
        let true_prop = [0.05, 0.10, 0.20, 0.40, 0.80];
        let n_pairs = 200_000;
        let mut observed = Vec::new();
        let mut mcar = Vec::new();
        for _ in 0..n_pairs {
            let r = rng.gen_range(0..5);
            if rng.gen::<f64>() < true_prop[r] {
                observed.push(r);
            }
        }
        for _ in 0..20_000 {
            mcar.push(rng.gen_range(0..5));
        }
        let nb = NaiveBayesPropensity::fit(&observed, &mcar, 5, n_pairs, 1.0);
        for (lvl, &p) in true_prop.iter().enumerate() {
            let est = nb.propensity(lvl);
            assert!(
                (est - p).abs() / p < 0.1,
                "level {lvl}: est {est} vs true {p}"
            );
        }
    }

    #[test]
    fn marginal_rate() {
        let nb = NaiveBayesPropensity::fit(&[0, 1, 1], &[0, 1], 2, 30, 1.0);
        assert!((nb.marginal() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn propensity_is_clamped_to_unit_interval() {
        // Pathological inputs: level 0 hugely over-represented in the log.
        let nb = NaiveBayesPropensity::fit(&[0; 100], &[0, 1], 2, 100, 0.01);
        assert!(nb.propensity(0) <= 1.0);
        assert!(nb.propensity(1) > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty MCAR sample")]
    fn empty_mcar_panics() {
        let _ = NaiveBayesPropensity::fit(&[0], &[], 2, 10, 1.0);
    }
}
