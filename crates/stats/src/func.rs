//! Scalar link functions and moment helpers.

/// Logistic sigmoid `1 / (1 + e^{-x})`, overflow-free over all of `f64`.
#[must_use]
pub fn expit(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inverse of [`expit`]: `ln(p / (1-p))`.
///
/// # Panics
/// Panics outside the open interval `(0, 1)`.
#[must_use]
pub fn logit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "logit: p must be in (0,1), got {p}");
    (p / (1.0 - p)).ln()
}

/// `ln(1 + e^x)` without overflow (softplus).
#[must_use]
pub fn log1pexp(x: f64) -> f64 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Arithmetic mean of a slice.
///
/// # Panics
/// Panics on an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (denominator `n − 1`).
///
/// # Panics
/// Panics when fewer than two values are given.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 2, "variance needs at least two values");
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expit_logit_roundtrip() {
        for &p in &[0.01, 0.3, 0.5, 0.9, 0.999] {
            assert!((expit(logit(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn expit_extremes_do_not_overflow() {
        assert_eq!(expit(800.0), 1.0);
        assert_eq!(expit(-800.0), 0.0);
    }

    #[test]
    fn log1pexp_matches_naive_in_safe_range() {
        for &x in &[-5.0, -1.0, 0.0, 1.0, 5.0] {
            assert!((log1pexp(x) - (1.0 + x.exp()).ln()).abs() < 1e-12);
        }
        // Large x: naive overflows, ours is ≈ x.
        assert!((log1pexp(1000.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "logit")]
    fn logit_out_of_domain_panics() {
        let _ = logit(1.0);
    }
}
