//! Matrix factorisation with biases — the paper's base model.

use dt_autograd::{Graph, ParamId, Params, Var};
use dt_stats::expit;
use rand::Rng;

use crate::broadcast_scalar;
use crate::embedding::EmbeddingTable;

/// Biased matrix factorisation: `logit(u, i) = pᵤ·qᵢ + bᵤ + bᵢ + µ`.
///
/// The model owns its parameter store; trainers mount what they need per
/// mini-batch and run the optimizer over [`MfModel::params`].
pub struct MfModel {
    /// The parameter store (embeddings + biases).
    pub params: Params,
    user_emb: EmbeddingTable,
    item_emb: EmbeddingTable,
    user_bias: ParamId,
    item_bias: ParamId,
    mu: ParamId,
}

impl MfModel {
    /// A fresh model with `N(0, 0.1²)` embeddings and zero biases.
    #[must_use]
    pub fn new(n_users: usize, n_items: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let mut params = Params::new();
        let user_emb = EmbeddingTable::new(&mut params, "user_emb", n_users, dim, 0.1, rng);
        let item_emb = EmbeddingTable::new(&mut params, "item_emb", n_items, dim, 0.1, rng);
        let user_bias = params.add("user_bias", dt_tensor::Tensor::zeros(n_users, 1));
        let item_bias = params.add("item_bias", dt_tensor::Tensor::zeros(n_items, 1));
        let mu = params.add("mu", dt_tensor::Tensor::zeros(1, 1));
        Self {
            params,
            user_emb,
            item_emb,
            user_bias,
            item_bias,
            mu,
        }
    }

    /// Number of users.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.user_emb.len()
    }

    /// Number of items.
    #[must_use]
    pub fn n_items(&self) -> usize {
        self.item_emb.len()
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.user_emb.dim()
    }

    /// Total scalar parameter count.
    #[must_use]
    pub fn n_parameters(&self) -> usize {
        self.params.n_scalars()
    }

    /// Differentiable logits for a batch of pairs (`n×1`). Copies each
    /// index list once; loops that reuse the lists should call
    /// [`MfModel::logits_indexed`].
    pub fn logits(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        self.logits_indexed(
            g,
            &std::rc::Rc::new(users.to_vec()),
            &std::rc::Rc::new(items.to_vec()),
        )
    }

    /// Logits over `Rc`-shared index lists: one list per side serves both
    /// the embedding lookup and the bias gather without further copies.
    pub fn logits_indexed(
        &self,
        g: &mut Graph,
        users: &std::rc::Rc<Vec<usize>>,
        items: &std::rc::Rc<Vec<usize>>,
    ) -> Var {
        assert_eq!(users.len(), items.len(), "logits: batch mismatch");
        let pu = self.user_emb.lookup_indexed(g, &self.params, users);
        let qi = self.item_emb.lookup_indexed(g, &self.params, items);
        let dot = g.row_dot(pu, qi);
        let bu_table = g.param(&self.params, self.user_bias);
        let bu = g.gather(bu_table, std::rc::Rc::clone(users));
        let bi_table = g.param(&self.params, self.item_bias);
        let bi = g.gather(bi_table, std::rc::Rc::clone(items));
        let mu = g.param(&self.params, self.mu);
        let mu_col = broadcast_scalar(g, mu, users.len());
        let s1 = g.add(dot, bu);
        let s2 = g.add(s1, bi);
        g.add(s2, mu_col)
    }

    /// Differentiable sigmoid predictions (`n×1`).
    pub fn predict_var(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        let l = self.logits(g, users, items);
        g.sigmoid(l)
    }

    /// Fast inference path (no tape): sigmoid probabilities for pairs.
    #[must_use]
    pub fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        pairs
            .iter()
            .map(|&(u, i)| expit(self.score(u, i)))
            .collect()
    }

    /// Fast inference path: raw logit for one pair.
    #[must_use]
    pub fn score(&self, user: usize, item: usize) -> f64 {
        let pu = self.user_emb.row(&self.params, user);
        let qi = self.item_emb.row(&self.params, item);
        let dot: f64 = pu.iter().zip(qi).map(|(a, b)| a * b).sum();
        dot + self.params.value(self.user_bias).get(user, 0)
            + self.params.value(self.item_bias).get(item, 0)
            + self.params.value(self.mu).item()
    }

    /// L2 penalty on the embedding tables (not the biases), as a
    /// differentiable term.
    pub fn l2_penalty(&self, g: &mut Graph) -> Var {
        let p = self.user_emb.full(g, &self.params);
        let q = self.item_emb.full(g, &self.params);
        let fp = g.frob_sq(p);
        let fq = g.frob_sq(q);
        g.add(fp, fq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_optim::{Adam, Optimizer};
    use dt_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn score_matches_graph_logits() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = MfModel::new(4, 6, 3, &mut rng);
        let mut g = Graph::new();
        let l = m.logits(&mut g, &[1, 3], &[0, 5]);
        assert!((g.value(l).get(0, 0) - m.score(1, 0)).abs() < 1e-12);
        assert!((g.value(l).get(1, 0) - m.score(3, 5)).abs() < 1e-12);
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = MfModel::new(10, 20, 4, &mut rng);
        // 10·4 + 20·4 + 10 + 20 + 1 = 151
        assert_eq!(m.n_parameters(), 151);
    }

    #[test]
    fn can_overfit_a_tiny_pattern() {
        // 2 users × 2 items, XOR-free pattern learnable by MF with biases.
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = MfModel::new(2, 2, 4, &mut rng);
        let users = [0usize, 0, 1, 1];
        let items = [0usize, 1, 0, 1];
        let labels = Tensor::col_vec(&[1.0, 0.0, 0.0, 1.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..400 {
            let mut g = Graph::new();
            let logits = m.logits(&mut g, &users, &items);
            let y = g.constant(labels.clone());
            let loss = g.bce_mean(logits, y);
            g.backward(loss, &mut m.params);
            opt.step(&mut m.params);
            m.params.zero_grad();
        }
        let preds = m.predict(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert!(preds[0] > 0.9 && preds[3] > 0.9, "{preds:?}");
        assert!(preds[1] < 0.1 && preds[2] < 0.1, "{preds:?}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = MfModel::new(3, 3, 2, &mut rng);
        for p in m.predict(&[(0, 0), (2, 2)]) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
