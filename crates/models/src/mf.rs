//! Matrix factorisation with biases — the paper's base model.

use dt_autograd::{Graph, ParamId, Params, Var};
use dt_stats::expit;
use dt_tensor::scoring::{self, Biases};
use rand::Rng;

use crate::broadcast_scalar;
use crate::embedding::EmbeddingTable;

/// Biased matrix factorisation: `logit(u, i) = pᵤ·qᵢ + bᵤ + bᵢ + µ`.
///
/// The model owns its parameter store; trainers mount what they need per
/// mini-batch and run the optimizer over [`MfModel::params`].
pub struct MfModel {
    /// The parameter store (embeddings + biases).
    pub params: Params,
    user_emb: EmbeddingTable,
    item_emb: EmbeddingTable,
    user_bias: ParamId,
    item_bias: ParamId,
    mu: ParamId,
}

impl MfModel {
    /// A fresh model with `N(0, 0.1²)` embeddings and zero biases.
    #[must_use]
    pub fn new(n_users: usize, n_items: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let mut params = Params::new();
        let user_emb = EmbeddingTable::new(&mut params, "user_emb", n_users, dim, 0.1, rng);
        let item_emb = EmbeddingTable::new(&mut params, "item_emb", n_items, dim, 0.1, rng);
        let user_bias = params.add("user_bias", dt_tensor::Tensor::zeros(n_users, 1));
        let item_bias = params.add("item_bias", dt_tensor::Tensor::zeros(n_items, 1));
        let mu = params.add("mu", dt_tensor::Tensor::zeros(1, 1));
        Self {
            params,
            user_emb,
            item_emb,
            user_bias,
            item_bias,
            mu,
        }
    }

    /// Number of users.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.user_emb.len()
    }

    /// Number of items.
    #[must_use]
    pub fn n_items(&self) -> usize {
        self.item_emb.len()
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.user_emb.dim()
    }

    /// Total scalar parameter count.
    #[must_use]
    pub fn n_parameters(&self) -> usize {
        self.params.n_scalars()
    }

    /// Differentiable logits for a batch of pairs (`n×1`). Copies each
    /// index list once; loops that reuse the lists should call
    /// [`MfModel::logits_indexed`].
    pub fn logits(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        self.logits_indexed(
            g,
            &std::rc::Rc::new(users.to_vec()),
            &std::rc::Rc::new(items.to_vec()),
        )
    }

    /// Logits over `Rc`-shared index lists: one list per side serves both
    /// the embedding lookup and the bias gather without further copies.
    pub fn logits_indexed(
        &self,
        g: &mut Graph,
        users: &std::rc::Rc<Vec<usize>>,
        items: &std::rc::Rc<Vec<usize>>,
    ) -> Var {
        assert_eq!(users.len(), items.len(), "logits: batch mismatch");
        let pu = self.user_emb.lookup_indexed(g, &self.params, users);
        let qi = self.item_emb.lookup_indexed(g, &self.params, items);
        let dot = g.row_dot(pu, qi);
        let bu_table = g.param(&self.params, self.user_bias);
        let bu = g.gather(bu_table, std::rc::Rc::clone(users));
        let bi_table = g.param(&self.params, self.item_bias);
        let bi = g.gather(bi_table, std::rc::Rc::clone(items));
        let mu = g.param(&self.params, self.mu);
        let mu_col = broadcast_scalar(g, mu, users.len());
        let s1 = g.add(dot, bu);
        let s2 = g.add(s1, bi);
        g.add(s2, mu_col)
    }

    /// Differentiable sigmoid predictions (`n×1`).
    pub fn predict_var(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        let l = self.logits(g, users, items);
        g.sigmoid(l)
    }

    /// Fast inference path (no tape): sigmoid probabilities for pairs,
    /// through the fused batched gather+dot kernel (bit-identical to the
    /// per-pair [`MfModel::score`] at any thread count).
    #[must_use]
    pub fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        let mut out = self.score_pairs(pairs);
        for v in &mut out {
            *v = expit(*v);
        }
        out
    }

    /// Raw logits for a tuple batch (no tape, no sigmoid).
    #[must_use]
    pub fn score_pairs(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        scoring::score_pair_tuples(
            self.params.value(self.user_emb.id()),
            self.params.value(self.item_emb.id()),
            0..self.dim(),
            pairs,
            Some(self.biases()),
        )
    }

    /// Sigmoid predictions over parallel `users`/`items` index lists —
    /// the batched form of mapping [`MfModel::score`] through `expit`.
    ///
    /// # Panics
    /// Panics on mismatched list lengths or an out-of-bounds index.
    #[must_use]
    pub fn predict_batch(&self, users: &[usize], items: &[usize]) -> Vec<f64> {
        let mut out = scoring::score_pairs(
            self.params.value(self.user_emb.id()),
            self.params.value(self.item_emb.id()),
            0..self.dim(),
            users,
            items,
            Some(self.biases()),
        );
        for v in &mut out {
            *v = expit(*v);
        }
        out
    }

    /// Fast inference path: raw logit for one pair.
    #[must_use]
    pub fn score(&self, user: usize, item: usize) -> f64 {
        let pu = self.user_emb.row(&self.params, user);
        let qi = self.item_emb.row(&self.params, item);
        let dot: f64 = pu.iter().zip(qi).map(|(a, b)| a * b).sum();
        dot + self.params.value(self.user_bias).get(user, 0)
            + self.params.value(self.item_bias).get(item, 0)
            + self.params.value(self.mu).item()
    }

    /// The affine bias view over the live parameter store, as consumed by
    /// the `dt_tensor::scoring` kernels.
    #[must_use]
    pub fn biases(&self) -> Biases<'_> {
        Biases {
            user: self.params.value(self.user_bias).data(),
            item: self.params.value(self.item_bias).data(),
            global: self.params.value(self.mu).item(),
        }
    }

    /// Extracts a serving index: contiguous copies of the embedding
    /// panels and bias vectors, decoupled from the parameter store. Index
    /// scores are the model's raw logits — monotone in
    /// [`MfModel::predict`], so rankings agree.
    #[must_use]
    pub fn scoring_index(&self) -> dt_serve::ScoringIndex {
        dt_serve::ScoringIndex::new(
            self.params.value(self.user_emb.id()).clone(),
            self.params.value(self.item_emb.id()).clone(),
            self.params.value(self.user_bias).data().to_vec(),
            self.params.value(self.item_bias).data().to_vec(),
            self.params.value(self.mu).item(),
        )
    }

    /// Extracts a serving index re-exported at a lossy (or verbatim)
    /// serving dtype: [`MfModel::scoring_index`] followed by
    /// [`dt_serve::ScoringIndex::quantize`]. `PanelDtype::F64` serves
    /// bit-identically to the unquantized index; lossy dtypes trade
    /// top-K fidelity for bandwidth (DESIGN.md section 15).
    #[must_use]
    pub fn quantized_index(&self, dtype: dt_serve::PanelDtype) -> dt_serve::QuantizedIndex {
        self.scoring_index().quantize(dtype)
    }

    /// L2 penalty on the embedding tables (not the biases), as a
    /// differentiable term.
    pub fn l2_penalty(&self, g: &mut Graph) -> Var {
        let p = self.user_emb.full(g, &self.params);
        let q = self.item_emb.full(g, &self.params);
        let fp = g.frob_sq(p);
        let fq = g.frob_sq(q);
        g.add(fp, fq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_optim::{Adam, Optimizer};
    use dt_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn score_matches_graph_logits() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = MfModel::new(4, 6, 3, &mut rng);
        let mut g = Graph::new();
        let l = m.logits(&mut g, &[1, 3], &[0, 5]);
        assert!((g.value(l).get(0, 0) - m.score(1, 0)).abs() < 1e-12);
        assert!((g.value(l).get(1, 0) - m.score(3, 5)).abs() < 1e-12);
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = MfModel::new(10, 20, 4, &mut rng);
        // 10·4 + 20·4 + 10 + 20 + 1 = 151
        assert_eq!(m.n_parameters(), 151);
    }

    #[test]
    fn can_overfit_a_tiny_pattern() {
        // 2 users × 2 items, XOR-free pattern learnable by MF with biases.
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = MfModel::new(2, 2, 4, &mut rng);
        let users = [0usize, 0, 1, 1];
        let items = [0usize, 1, 0, 1];
        let labels = Tensor::col_vec(&[1.0, 0.0, 0.0, 1.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..400 {
            let mut g = Graph::new();
            let logits = m.logits(&mut g, &users, &items);
            let y = g.constant(labels.clone());
            let loss = g.bce_mean(logits, y);
            g.backward(loss, &mut m.params);
            opt.step(&mut m.params);
            m.params.zero_grad();
        }
        let preds = m.predict(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert!(preds[0] > 0.9 && preds[3] > 0.9, "{preds:?}");
        assert!(preds[1] < 0.1 && preds[2] < 0.1, "{preds:?}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = MfModel::new(3, 3, 2, &mut rng);
        for p in m.predict(&[(0, 0), (2, 2)]) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn batched_predict_matches_scalar_score_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = MfModel::new(9, 13, 5, &mut rng);
        let pairs: Vec<(usize, usize)> = (0..40).map(|j| (j % 9, (j * 7) % 13)).collect();
        let batched = m.predict(&pairs);
        let users: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let items: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let by_lists = m.predict_batch(&users, &items);
        for (j, &(u, i)) in pairs.iter().enumerate() {
            let scalar = expit(m.score(u, i));
            assert_eq!(batched[j].to_bits(), scalar.to_bits(), "pair {j}");
            assert_eq!(by_lists[j].to_bits(), scalar.to_bits(), "pair {j}");
        }
    }

    #[test]
    fn scoring_index_reproduces_model_logits() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = MfModel::new(6, 10, 4, &mut rng);
        let idx = m.scoring_index();
        assert_eq!(idx.n_users(), 6);
        assert_eq!(idx.n_items(), 10);
        assert_eq!(idx.dim(), 4);
        let block = idx.score_block(&[5, 0, 3]);
        for (row, &u) in [5usize, 0, 3].iter().enumerate() {
            for i in 0..10 {
                assert_eq!(
                    block.row(row)[i].to_bits(),
                    m.score(u, i).to_bits(),
                    "user {u} item {i}"
                );
            }
        }
        block.recycle();
    }

    #[test]
    fn quantized_index_serves_every_dtype() {
        use dt_serve::{PanelDtype, TopKEngine};
        let mut rng = StdRng::seed_from_u64(6);
        let m = MfModel::new(6, 30, 4, &mut rng);
        let engine = TopKEngine::new();
        let oracle = engine.recommend(&m.scoring_index(), &[0, 4], 5, None);
        // F64 export is bit-identical to the unquantized serving path.
        let f64_batch =
            engine.recommend_quantized(&m.quantized_index(PanelDtype::F64), &[0, 4], 5, None);
        assert_eq!(oracle, f64_batch);
        // Lossy exports serve the same shape (fidelity is benchmarked in
        // BENCH_quant.json, not asserted on random tiny panels).
        for dtype in [PanelDtype::F32, PanelDtype::ScaledI8] {
            let got = engine.recommend_quantized(&m.quantized_index(dtype), &[0, 4], 5, None);
            assert_eq!(got.n_users(), 2);
            assert_eq!(got.user(0).len(), 5);
        }
    }
}
