//! The disentangled factorisation of the paper's §IV-B.
//!
//! User embeddings `P = [P′, P″] ∈ R^{M×K}` and item embeddings
//! `Q = [Q′, Q″] ∈ R^{N×K}` are split at column `A`:
//!
//! * the **primary** blocks `P′, Q′` (columns `0..A`) form
//!   `x(u,i) = [p′ᵤ, q′ᵢ]` and drive the *rating* head;
//! * the **full** embeddings `[pᵤ, qᵢ]` drive the *propensity* head, so the
//!   auxiliary blocks `P″, Q″` play the role of the auxiliary variable
//!   `z(u,i)` of Assumption 1 — they influence `o` but are pushed to be
//!   independent of the rating-relevant signal;
//! * the **disentangling loss** `‖P′ᵀP″‖²_F + ‖Q′ᵀQ″‖²_F` enforces the
//!   orthogonality between the two blocks (the outer-product constraint of
//!   the paper, usable when `A ≠ K/2`);
//! * the **regularisation loss** `‖P′Q′ᵀ‖²_F + ‖P″Q″ᵀ‖²_F` spreads feature
//!   contributions and prevents overfitting; it is evaluated through the
//!   Gram identity `trace((P′ᵀP′)(Q′ᵀQ′))` in `O((M+N)K²)`.

use std::rc::Rc;

use dt_autograd::{Graph, ParamId, Params, Var};
use dt_stats::expit;
use dt_tensor::scoring::{self, Biases};
use rand::Rng;

use crate::broadcast_scalar;

/// Configuration of a [`DisentangledMf`].
#[derive(Debug, Clone, Copy)]
pub struct DisentangledConfig {
    /// Total embedding dimension `K`.
    pub total_dim: usize,
    /// Primary (rating) dimension `A` with `0 < A < K`.
    pub primary_dim: usize,
    /// Embedding init scale.
    pub init_scale: f64,
}

impl DisentangledConfig {
    /// A balanced split `A = K/2`.
    #[must_use]
    pub fn balanced(total_dim: usize) -> Self {
        Self {
            total_dim,
            primary_dim: total_dim / 2,
            init_scale: 0.1,
        }
    }
}

/// The disentangled MF model: shared embedding matrices with separate
/// rating- and propensity-head biases.
pub struct DisentangledMf {
    /// The parameter store.
    pub params: Params,
    p: ParamId,
    q: ParamId,
    // rating head biases
    user_bias_r: ParamId,
    item_bias_r: ParamId,
    mu_r: ParamId,
    // propensity head biases
    user_bias_o: ParamId,
    item_bias_o: ParamId,
    mu_o: ParamId,
    n_users: usize,
    n_items: usize,
    total_dim: usize,
    primary_dim: usize,
}

impl DisentangledMf {
    /// A fresh model.
    ///
    /// # Panics
    /// Panics unless `0 < primary_dim < total_dim`.
    #[must_use]
    pub fn new(
        n_users: usize,
        n_items: usize,
        cfg: &DisentangledConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            cfg.primary_dim > 0 && cfg.primary_dim < cfg.total_dim,
            "DisentangledMf: need 0 < A ({}) < K ({})",
            cfg.primary_dim,
            cfg.total_dim
        );
        let mut params = Params::new();
        let p = params.add(
            "P",
            dt_tensor::normal(n_users, cfg.total_dim, 0.0, cfg.init_scale, rng),
        );
        let q = params.add(
            "Q",
            dt_tensor::normal(n_items, cfg.total_dim, 0.0, cfg.init_scale, rng),
        );
        let zeros_u = || dt_tensor::Tensor::zeros(n_users, 1);
        let zeros_i = || dt_tensor::Tensor::zeros(n_items, 1);
        let user_bias_r = params.add("user_bias_r", zeros_u());
        let item_bias_r = params.add("item_bias_r", zeros_i());
        let mu_r = params.add("mu_r", dt_tensor::Tensor::zeros(1, 1));
        let user_bias_o = params.add("user_bias_o", zeros_u());
        let item_bias_o = params.add("item_bias_o", zeros_i());
        let mu_o = params.add("mu_o", dt_tensor::Tensor::zeros(1, 1));
        Self {
            params,
            p,
            q,
            user_bias_r,
            item_bias_r,
            mu_r,
            user_bias_o,
            item_bias_o,
            mu_o,
            n_users,
            n_items,
            total_dim: cfg.total_dim,
            primary_dim: cfg.primary_dim,
        }
    }

    /// Number of users.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items.
    #[must_use]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Primary dimension `A`.
    #[must_use]
    pub fn primary_dim(&self) -> usize {
        self.primary_dim
    }

    /// Total scalar parameter count.
    #[must_use]
    pub fn n_parameters(&self) -> usize {
        self.params.n_scalars()
    }

    fn head_logits(
        &self,
        g: &mut Graph,
        users: &Rc<Vec<usize>>,
        items: &Rc<Vec<usize>>,
        cols: std::ops::Range<usize>,
        biases: (ParamId, ParamId, ParamId),
    ) -> Var {
        assert_eq!(users.len(), items.len(), "head_logits: batch mismatch");
        let p = g.param(&self.params, self.p);
        let q = g.param(&self.params, self.q);
        let pu_full = g.gather(p, Rc::clone(users));
        let qi_full = g.gather(q, Rc::clone(items));
        let (pu, qi) = if cols == (0..self.total_dim) {
            (pu_full, qi_full)
        } else {
            (
                g.slice_cols(pu_full, cols.start, cols.end),
                g.slice_cols(qi_full, cols.start, cols.end),
            )
        };
        let dot = g.row_dot(pu, qi);
        let (ub, ib, mu) = biases;
        let ub_t = g.param(&self.params, ub);
        let bu = g.gather(ub_t, Rc::clone(users));
        let ib_t = g.param(&self.params, ib);
        let bi = g.gather(ib_t, Rc::clone(items));
        let mu_v = g.param(&self.params, mu);
        let mu_col = broadcast_scalar(g, mu_v, users.len());
        let s1 = g.add(dot, bu);
        let s2 = g.add(s1, bi);
        g.add(s2, mu_col)
    }

    /// Rating-head logits: uses only the primary blocks `P′, Q′`. Copies
    /// each index list once; see [`DisentangledMf::rating_logits_indexed`].
    pub fn rating_logits(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        self.rating_logits_indexed(g, &Rc::new(users.to_vec()), &Rc::new(items.to_vec()))
    }

    /// Rating-head logits over `Rc`-shared index lists: one list per side
    /// serves the embedding gather and the bias gather — and, when the
    /// trainer also mounts the propensity head on the same batch, that head
    /// too — without further copies.
    pub fn rating_logits_indexed(
        &self,
        g: &mut Graph,
        users: &Rc<Vec<usize>>,
        items: &Rc<Vec<usize>>,
    ) -> Var {
        self.head_logits(
            g,
            users,
            items,
            0..self.primary_dim,
            (self.user_bias_r, self.item_bias_r, self.mu_r),
        )
    }

    /// Propensity-head logits: uses the full embeddings `[pᵤ, qᵢ]`. Copies
    /// each index list once; see
    /// [`DisentangledMf::propensity_logits_indexed`].
    pub fn propensity_logits(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        self.propensity_logits_indexed(g, &Rc::new(users.to_vec()), &Rc::new(items.to_vec()))
    }

    /// Propensity-head logits over `Rc`-shared index lists.
    pub fn propensity_logits_indexed(
        &self,
        g: &mut Graph,
        users: &Rc<Vec<usize>>,
        items: &Rc<Vec<usize>>,
    ) -> Var {
        self.head_logits(
            g,
            users,
            items,
            0..self.total_dim,
            (self.user_bias_o, self.item_bias_o, self.mu_o),
        )
    }

    /// The disentangling loss `‖P′ᵀP″‖²_F/M + ‖Q′ᵀQ″‖²_F/N`.
    ///
    /// Each term is normalised by its row count so the loss (and therefore
    /// the β hyper-parameter) is invariant to catalogue size — the raw
    /// Frobenius norm grows linearly in M/N, which would silently rescale
    /// β between COAT-sized and KuaiRec-sized datasets.
    pub fn disentangle_loss(&self, g: &mut Graph) -> Var {
        let p = g.param(&self.params, self.p);
        let q = g.param(&self.params, self.q);
        let a = self.primary_dim;
        let k = self.total_dim;
        let p_prim = g.slice_cols(p, 0, a);
        let p_aux = g.slice_cols(p, a, k);
        let q_prim = g.slice_cols(q, 0, a);
        let q_aux = g.slice_cols(q, a, k);
        let dp0 = g.disentangle_penalty(p_prim, p_aux);
        let dp = g.mul_scalar(dp0, 1.0 / self.n_users as f64);
        let dq0 = g.disentangle_penalty(q_prim, q_aux);
        let dq = g.mul_scalar(dq0, 1.0 / self.n_items as f64);
        g.add(dp, dq)
    }

    /// The regularisation loss `(‖P′Q′ᵀ‖²_F + ‖P″Q″ᵀ‖²_F) / (M·N)`, via
    /// the Gram identity (never materialises an `M×N` matrix). Normalised
    /// per cell for the same size-invariance reason as
    /// [`DisentangledMf::disentangle_loss`].
    pub fn regularization_loss(&self, g: &mut Graph) -> Var {
        let p = g.param(&self.params, self.p);
        let q = g.param(&self.params, self.q);
        let a = self.primary_dim;
        let k = self.total_dim;
        let p_prim = g.slice_cols(p, 0, a);
        let p_aux = g.slice_cols(p, a, k);
        let q_prim = g.slice_cols(q, 0, a);
        let q_aux = g.slice_cols(q, a, k);
        let r1 = g.cross_gram_penalty(p_prim, q_prim);
        let r2 = g.cross_gram_penalty(p_aux, q_aux);
        let sum = g.add(r1, r2);
        g.mul_scalar(sum, 1.0 / (self.n_users * self.n_items) as f64)
    }

    /// Fast inference: rating probability for one pair.
    #[must_use]
    pub fn predict_rating(&self, user: usize, item: usize) -> f64 {
        expit(self.score_head(
            user,
            item,
            0..self.primary_dim,
            (self.user_bias_r, self.item_bias_r, self.mu_r),
        ))
    }

    /// Fast inference: propensity for one pair.
    #[must_use]
    pub fn predict_propensity(&self, user: usize, item: usize) -> f64 {
        expit(self.score_head(
            user,
            item,
            0..self.total_dim,
            (self.user_bias_o, self.item_bias_o, self.mu_o),
        ))
    }

    /// Batched rating predictions for a tuple list, through the fused
    /// gather+dot kernel over the primary columns — bit-identical to
    /// mapping [`DisentangledMf::predict_rating`] over the pairs.
    #[must_use]
    pub fn predict_rating_pairs(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        let mut out = scoring::score_pair_tuples(
            self.params.value(self.p),
            self.params.value(self.q),
            0..self.primary_dim,
            pairs,
            Some(self.head_biases(self.user_bias_r, self.item_bias_r, self.mu_r)),
        );
        for v in &mut out {
            *v = expit(*v);
        }
        out
    }

    /// Batched rating predictions over parallel `users`/`items` index
    /// lists — the list-shaped form of
    /// [`DisentangledMf::predict_rating_pairs`].
    ///
    /// # Panics
    /// Panics on mismatched list lengths or an out-of-bounds index.
    #[must_use]
    pub fn predict_rating_batch(&self, users: &[usize], items: &[usize]) -> Vec<f64> {
        let mut out = scoring::score_pairs(
            self.params.value(self.p),
            self.params.value(self.q),
            0..self.primary_dim,
            users,
            items,
            Some(self.head_biases(self.user_bias_r, self.item_bias_r, self.mu_r)),
        );
        for v in &mut out {
            *v = expit(*v);
        }
        out
    }

    /// Batched propensities over parallel `users`/`items` index lists
    /// (full embeddings) — the batched form of
    /// [`DisentangledMf::predict_propensity`].
    ///
    /// # Panics
    /// Panics on mismatched list lengths or an out-of-bounds index.
    #[must_use]
    pub fn predict_propensity_batch(&self, users: &[usize], items: &[usize]) -> Vec<f64> {
        let mut out = scoring::score_pairs(
            self.params.value(self.p),
            self.params.value(self.q),
            0..self.total_dim,
            users,
            items,
            Some(self.head_biases(self.user_bias_o, self.item_bias_o, self.mu_o)),
        );
        for v in &mut out {
            *v = expit(*v);
        }
        out
    }

    fn head_biases(&self, ub: ParamId, ib: ParamId, mu: ParamId) -> Biases<'_> {
        Biases {
            user: self.params.value(ub).data(),
            item: self.params.value(ib).data(),
            global: self.params.value(mu).item(),
        }
    }

    /// Extracts a rating-head serving index: contiguous copies of the
    /// **primary** column blocks `P′, Q′` plus the rating biases. Index
    /// scores are the rating head's raw logits — monotone in
    /// [`DisentangledMf::predict_rating`], so rankings agree.
    #[must_use]
    pub fn rating_scoring_index(&self) -> dt_serve::ScoringIndex {
        dt_serve::ScoringIndex::new(
            self.params.value(self.p).slice_cols(0, self.primary_dim),
            self.params.value(self.q).slice_cols(0, self.primary_dim),
            self.params.value(self.user_bias_r).data().to_vec(),
            self.params.value(self.item_bias_r).data().to_vec(),
            self.params.value(self.mu_r).item(),
        )
    }

    /// The rating-head serving index re-exported at a serving dtype:
    /// [`DisentangledMf::rating_scoring_index`] followed by
    /// [`dt_serve::ScoringIndex::quantize`] (DESIGN.md section 15).
    #[must_use]
    pub fn rating_quantized_index(&self, dtype: dt_serve::PanelDtype) -> dt_serve::QuantizedIndex {
        self.rating_scoring_index().quantize(dtype)
    }

    fn score_head(
        &self,
        user: usize,
        item: usize,
        cols: std::ops::Range<usize>,
        biases: (ParamId, ParamId, ParamId),
    ) -> f64 {
        let p = self.params.value(self.p).row(user);
        let q = self.params.value(self.q).row(item);
        let dot: f64 = p[cols.clone()]
            .iter()
            .zip(&q[cols])
            .map(|(a, b)| a * b)
            .sum();
        let (ub, ib, mu) = biases;
        dot + self.params.value(ub).get(user, 0)
            + self.params.value(ib).get(item, 0)
            + self.params.value(mu).item()
    }

    /// Measured disentangling-loss scale (no tape) — the quantity plotted
    /// in the paper's Figure 4(c,d). Uses the same per-row normalisation
    /// as [`DisentangledMf::disentangle_loss`].
    #[must_use]
    pub fn disentangle_scale(&self) -> f64 {
        let p = self.params.value(self.p);
        let q = self.params.value(self.q);
        let a = self.primary_dim;
        let k = self.total_dim;
        let cross = |m: &dt_tensor::Tensor| {
            let prim = m.slice_cols(0, a);
            let aux = m.slice_cols(a, k);
            prim.matmul_tn(&aux).frob_sq() / m.rows() as f64
        };
        cross(p) + cross(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> DisentangledMf {
        let mut rng = StdRng::seed_from_u64(4);
        DisentangledMf::new(
            6,
            8,
            &DisentangledConfig {
                total_dim: 6,
                primary_dim: 2,
                init_scale: 0.2,
            },
            &mut rng,
        )
    }

    #[test]
    fn heads_use_disjoint_information() {
        let m = model();
        // Rating head ignores the auxiliary columns: zeroing them must not
        // change the rating score but must change the propensity score.
        let before_r = m.predict_rating(0, 0);
        let before_o = m.predict_propensity(0, 0);
        let mut m2 = m;
        for c in 2..6 {
            m2.params.value_mut(m2.p).set(0, c, 0.0);
            m2.params.value_mut(m2.q).set(0, c, 0.0);
        }
        assert!((m2.predict_rating(0, 0) - before_r).abs() < 1e-12);
        assert!((m2.predict_propensity(0, 0) - before_o).abs() > 1e-6);
    }

    #[test]
    fn graph_and_fast_paths_agree() {
        let m = model();
        let mut g = Graph::new();
        let lr = m.rating_logits(&mut g, &[3], &[7]);
        let lo = m.propensity_logits(&mut g, &[3], &[7]);
        assert!((expit(g.value(lr).item()) - m.predict_rating(3, 7)).abs() < 1e-12);
        assert!((expit(g.value(lo).item()) - m.predict_propensity(3, 7)).abs() < 1e-12);
    }

    #[test]
    fn disentangle_scale_matches_graph_loss() {
        let m = model();
        let mut g = Graph::new();
        let d = m.disentangle_loss(&mut g);
        assert!((g.item(d) - m.disentangle_scale()).abs() < 1e-9);
        assert!(m.disentangle_scale() > 0.0, "random init is not orthogonal");
    }

    #[test]
    fn optimizing_disentangle_loss_orthogonalizes_blocks() {
        let mut m = model();
        let initial = m.disentangle_scale();
        let mut opt = Adam::new(0.05);
        for _ in 0..300 {
            let mut g = Graph::new();
            let loss = m.disentangle_loss(&mut g);
            g.backward(loss, &mut m.params);
            opt.step(&mut m.params);
            m.params.zero_grad();
        }
        assert!(
            m.disentangle_scale() < initial * 1e-3,
            "scale {} vs initial {initial}",
            m.disentangle_scale()
        );
    }

    #[test]
    fn regularization_loss_matches_direct_frobenius() {
        let m = model();
        let mut g = Graph::new();
        let r = m.regularization_loss(&mut g);
        let p = m.params.value(m.p);
        let q = m.params.value(m.q);
        let direct = (p.slice_cols(0, 2).matmul_nt(&q.slice_cols(0, 2)).frob_sq()
            + p.slice_cols(2, 6).matmul_nt(&q.slice_cols(2, 6)).frob_sq())
            / (6.0 * 8.0);
        assert!((g.item(r) - direct).abs() < 1e-9);
    }

    #[test]
    fn batched_heads_match_scalar_paths_bitwise() {
        let m = model();
        let pairs: Vec<(usize, usize)> = (0..30).map(|j| (j % 6, (j * 3) % 8)).collect();
        let ratings = m.predict_rating_pairs(&pairs);
        let users: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let items: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let props = m.predict_propensity_batch(&users, &items);
        for (j, &(u, i)) in pairs.iter().enumerate() {
            assert_eq!(
                ratings[j].to_bits(),
                m.predict_rating(u, i).to_bits(),
                "pair {j}"
            );
            assert_eq!(
                props[j].to_bits(),
                m.predict_propensity(u, i).to_bits(),
                "pair {j}"
            );
        }
    }

    #[test]
    fn rating_index_uses_only_primary_columns() {
        let m = model();
        let idx = m.rating_scoring_index();
        assert_eq!(idx.dim(), m.primary_dim());
        let block = idx.score_block(&[3]);
        for i in 0..8 {
            let direct = m.score_head(
                3,
                i,
                0..m.primary_dim,
                (m.user_bias_r, m.item_bias_r, m.mu_r),
            );
            assert_eq!(block.row(0)[i].to_bits(), direct.to_bits(), "item {i}");
        }
        block.recycle();
    }

    #[test]
    fn rating_quantized_index_f64_matches_the_unquantized_index() {
        use dt_serve::{PanelDtype, TopKEngine};
        let m = model();
        let engine = TopKEngine::new();
        let oracle = engine.recommend(&m.rating_scoring_index(), &[1, 3], 4, None);
        let quant = engine.recommend_quantized(
            &m.rating_quantized_index(PanelDtype::F64),
            &[1, 3],
            4,
            None,
        );
        assert_eq!(oracle, quant);
        assert_eq!(
            m.rating_quantized_index(PanelDtype::ScaledI8).dim(),
            m.primary_dim()
        );
    }

    #[test]
    #[should_panic(expected = "need 0 < A")]
    fn degenerate_split_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = DisentangledMf::new(
            2,
            2,
            &DisentangledConfig {
                total_dim: 4,
                primary_dim: 4,
                init_scale: 0.1,
            },
            &mut rng,
        );
    }
}
