//! Shared-embedding multi-tower architecture (ESMM / Multi-IPS / ESCM²).
//!
//! One embedding lookup table per side feeds up to three MLP towers over the
//! concatenated pair embedding `[eᵤ | eᵢ]`:
//!
//! * the **CTR tower** — models `P(o = 1 | x)` (the propensity / click
//!   head trained on the entire space);
//! * the **CVR tower** — models the rating / conversion `P(r = 1 | x)`;
//! * an optional **imputation tower** — models the error `ê(x)` used by
//!   the DR variants.
//!
//! Sharing the embedding lookup is exactly what gives these baselines their
//! `1×` embedding cost in the paper's Table II.

use std::rc::Rc;

use dt_autograd::{Graph, Params, Var};
use dt_stats::expit;
use rand::Rng;

use crate::embedding::EmbeddingTable;
use crate::mlp::{Activation, Mlp};

/// Configuration of a [`TowerModel`].
#[derive(Debug, Clone, Copy)]
pub struct TowerConfig {
    /// Per-side embedding dimension.
    pub emb_dim: usize,
    /// Hidden width of each tower.
    pub hidden: usize,
    /// Whether to build the imputation tower.
    pub with_imputation: bool,
}

impl Default for TowerConfig {
    fn default() -> Self {
        Self {
            emb_dim: 8,
            hidden: 16,
            with_imputation: false,
        }
    }
}

/// The shared-embedding multi-tower model.
pub struct TowerModel {
    /// The parameter store (embeddings + all towers).
    pub params: Params,
    user_emb: EmbeddingTable,
    item_emb: EmbeddingTable,
    ctr: Mlp,
    cvr: Mlp,
    imputation: Option<Mlp>,
}

impl TowerModel {
    /// A fresh model.
    #[must_use]
    pub fn new(n_users: usize, n_items: usize, cfg: &TowerConfig, rng: &mut impl Rng) -> Self {
        let mut params = Params::new();
        let user_emb = EmbeddingTable::new(&mut params, "user_emb", n_users, cfg.emb_dim, 0.1, rng);
        let item_emb = EmbeddingTable::new(&mut params, "item_emb", n_items, cfg.emb_dim, 0.1, rng);
        let sizes = [2 * cfg.emb_dim, cfg.hidden, 1];
        let ctr = Mlp::new(&mut params, "ctr", &sizes, Activation::Tanh, rng);
        let cvr = Mlp::new(&mut params, "cvr", &sizes, Activation::Tanh, rng);
        let imputation = cfg
            .with_imputation
            .then(|| Mlp::new(&mut params, "imp", &sizes, Activation::Tanh, rng));
        Self {
            params,
            user_emb,
            item_emb,
            ctr,
            cvr,
            imputation,
        }
    }

    /// Total scalar parameter count.
    #[must_use]
    pub fn n_parameters(&self) -> usize {
        self.params.n_scalars()
    }

    /// The concatenated pair embedding `[eᵤ | eᵢ]` for a batch.
    fn pair_embedding(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        assert_eq!(users.len(), items.len(), "pair_embedding: batch mismatch");
        let eu = self.user_emb.lookup(g, &self.params, users);
        let ei = self.item_emb.lookup(g, &self.params, items);
        g.concat_cols(eu, ei)
    }

    /// CTR (propensity) logits.
    pub fn ctr_logits(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        let x = self.pair_embedding(g, users, items);
        self.ctr.forward(g, &self.params, x)
    }

    /// CVR (rating) logits.
    pub fn cvr_logits(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        let x = self.pair_embedding(g, users, items);
        self.cvr.forward(g, &self.params, x)
    }

    /// Imputation-tower output (unbounded error estimate).
    ///
    /// # Panics
    /// Panics when the model was built without an imputation tower.
    pub fn imputation_out(&self, g: &mut Graph, users: &[usize], items: &[usize]) -> Var {
        let imp = self
            .imputation
            .as_ref()
            // lint: allow(r3): documented `# Panics` contract on `imputation_out`
            .expect("imputation tower not configured");
        let x = self.pair_embedding(g, users, items);
        imp.forward(g, &self.params, x)
    }

    /// Returns `true` when the imputation tower exists.
    #[must_use]
    pub fn has_imputation(&self) -> bool {
        self.imputation.is_some()
    }

    /// Fast inference: CVR probability for a batch of pairs.
    #[must_use]
    pub fn predict_cvr(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.predict_tower(&self.cvr, pairs)
    }

    /// Fast inference: CTR probability for a batch of pairs.
    #[must_use]
    pub fn predict_ctr(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.predict_tower(&self.ctr, pairs)
    }

    fn predict_tower(&self, tower: &Mlp, pairs: &[(usize, usize)]) -> Vec<f64> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let users: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let items: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let mut g = Graph::new();
        let ue = g.param(&self.params, self.user_emb.id());
        let eu = g.gather(ue, Rc::new(users));
        let ie = g.param(&self.params, self.item_emb.id());
        let ei = g.gather(ie, Rc::new(items));
        let x = g.concat_cols(eu, ei);
        let logits = tower.forward(&mut g, &self.params, x);
        g.value(logits).data().iter().map(|&z| expit(z)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(with_imp: bool) -> TowerModel {
        let mut rng = StdRng::seed_from_u64(5);
        TowerModel::new(
            4,
            5,
            &TowerConfig {
                emb_dim: 3,
                hidden: 6,
                with_imputation: with_imp,
            },
            &mut rng,
        )
    }

    #[test]
    fn parameter_counts_match_table_ii_structure() {
        let base = model(false).n_parameters();
        let with_imp = model(true).n_parameters();
        // The imputation tower adds exactly one more MLP of the same size.
        let tower_size = (2 * 3) * 6 + 6 + 6 + 1;
        assert_eq!(with_imp - base, tower_size);
    }

    #[test]
    fn towers_give_different_outputs() {
        let m = model(false);
        let ctr = m.predict_ctr(&[(0, 0)]);
        let cvr = m.predict_cvr(&[(0, 0)]);
        assert_ne!(ctr[0], cvr[0], "independently initialised towers");
    }

    #[test]
    fn graph_and_fast_paths_agree() {
        let m = model(true);
        let mut g = Graph::new();
        let l = m.cvr_logits(&mut g, &[2], &[3]);
        let fast = m.predict_cvr(&[(2, 3)]);
        assert!((expit(g.value(l).item()) - fast[0]).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_inference() {
        let m = model(false);
        assert!(m.predict_cvr(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "imputation tower not configured")]
    fn missing_imputation_tower_panics() {
        let m = model(false);
        let mut g = Graph::new();
        let _ = m.imputation_out(&mut g, &[0], &[0]);
    }
}
