//! Propensity heads: the three rungs of the paper's Table I.
//!
//! * [`ConstantPropensity`] — the MCAR propensity `P(o = 1)`, estimated by
//!   the empirical observation rate.
//! * [`LogisticMfPropensity`] — the MAR propensity `P(o = 1 | x)`: a
//!   logistic MF fitted to the observation indicators over the full space.
//!   This is what vanilla IPS/DR use, and what Lemma 2(a) shows is *biased*
//!   under MNAR.
//! * [`NaiveBayesAdapter`] — the MNAR propensity `P(o = 1 | x, r)` via the
//!   Naive-Bayes estimator, available only when an MCAR slice exists
//!   (Schnabel et al. 2016). The paper's DT method removes that
//!   requirement; this head serves as the classical reference.

use rand::Rng;

use dt_autograd::Graph;
use dt_data::{uniform_pairs, Dataset, PairSet};
use dt_optim::{Adam, Optimizer};
use dt_stats::NaiveBayesPropensity;
use dt_tensor::Tensor;

use crate::mf::MfModel;

/// Minimum clipped propensity used across the workspace.
pub const DEFAULT_CLIP: f64 = 0.02;

/// A fitted propensity head.
pub trait PropensityHead {
    /// Estimated propensity for an *observed* interaction (rating known).
    fn propensity(&self, user: usize, item: usize, rating: f64) -> f64;

    /// A short label for reports.
    fn label(&self) -> &'static str;
}

/// The MCAR propensity: a single constant `P(o = 1)`.
#[derive(Debug, Clone, Copy)]
pub struct ConstantPropensity {
    rate: f64,
}

impl ConstantPropensity {
    /// Estimates the observation rate from a dataset.
    #[must_use]
    pub fn fit(ds: &Dataset) -> Self {
        Self {
            rate: ds.train.density().max(f64::MIN_POSITIVE),
        }
    }

    /// Builds from a known rate.
    ///
    /// # Panics
    /// Panics outside `(0, 1]`.
    #[must_use]
    pub fn from_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1]");
        Self { rate }
    }
}

impl PropensityHead for ConstantPropensity {
    fn propensity(&self, _user: usize, _item: usize, _rating: f64) -> f64 {
        self.rate
    }

    fn label(&self) -> &'static str {
        "constant (MCAR)"
    }
}

/// The MAR propensity: logistic MF fitted to observation indicators, with
/// negatives sampled uniformly from the full space.
pub struct LogisticMfPropensity {
    model: MfModel,
    clip: f64,
}

impl LogisticMfPropensity {
    /// Fits on a dataset's training log.
    #[must_use]
    pub fn fit(
        ds: &Dataset,
        dim: usize,
        epochs: usize,
        lr: f64,
        clip: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let mut model = MfModel::new(ds.n_users, ds.n_items, dim, rng);
        let observed: PairSet = ds.train.pair_set();
        let mut opt = Adam::with_config(lr, 0.9, 0.999, 1e-8, 1e-5);
        let batch = 1024usize;
        // Fitting P(o = 1 | x) is a full-space problem: train on uniform
        // draws from D labelled by the true observation indicator, which is
        // the unbiased Monte-Carlo estimate of the full-space BCE. One
        // epoch covers ≈ |D| sampled pairs (capped for very large spaces).
        let steps_per_epoch = (ds.train.n_pairs_total()).div_ceil(batch).clamp(4, 200);
        for _ in 0..epochs {
            for _ in 0..steps_per_epoch {
                let pairs = uniform_pairs(ds.n_users, ds.n_items, batch, rng);
                let users: Vec<usize> = pairs.iter().map(|p| p.user as usize).collect();
                let items: Vec<usize> = pairs.iter().map(|p| p.item as usize).collect();
                let labels: Vec<f64> = pairs
                    .iter()
                    .map(|p| f64::from(observed.contains(p.user, p.item)))
                    .collect();
                let mut g = Graph::new();
                let logits = model.logits(&mut g, &users, &items);
                let y = g.constant(Tensor::col_vec(&labels));
                let loss = g.bce_mean(logits, y);
                g.backward(loss, &mut model.params);
                opt.step(&mut model.params);
                model.params.zero_grad();
            }
        }
        Self { model, clip }
    }

    /// Raw (clipped) propensity for a pair.
    #[must_use]
    pub fn predict(&self, user: usize, item: usize) -> f64 {
        dt_stats::expit(self.model.score(user, item)).max(self.clip)
    }

    /// Parameter count of the underlying MF.
    #[must_use]
    pub fn n_parameters(&self) -> usize {
        self.model.n_parameters()
    }
}

impl PropensityHead for LogisticMfPropensity {
    fn propensity(&self, user: usize, item: usize, _rating: f64) -> f64 {
        self.predict(user, item)
    }

    fn label(&self) -> &'static str {
        "logistic-MF (MAR)"
    }
}

/// Naive-Bayes MNAR propensity over binary ratings, fitted from the MNAR
/// log plus an MCAR sample (the test slice of COAT-style datasets).
pub struct NaiveBayesAdapter {
    nb: NaiveBayesPropensity,
    clip: f64,
}

impl NaiveBayesAdapter {
    /// Fits from a dataset whose `test` log is an MCAR/MAR slice.
    ///
    /// # Panics
    /// Panics when either log is empty.
    #[must_use]
    pub fn fit(ds: &Dataset, clip: f64) -> Self {
        let levels = |log: &dt_data::InteractionLog| -> Vec<usize> {
            log.interactions()
                .iter()
                .map(|it| usize::from(it.rating > 0.5))
                .collect()
        };
        let nb = NaiveBayesPropensity::fit(
            &levels(&ds.train),
            &levels(&ds.test),
            2,
            ds.train.n_pairs_total(),
            1.0,
        );
        Self { nb, clip }
    }
}

impl PropensityHead for NaiveBayesAdapter {
    fn propensity(&self, _user: usize, _item: usize, rating: f64) -> f64 {
        self.nb.propensity(usize::from(rating > 0.5)).max(self.clip)
    }

    fn label(&self) -> &'static str {
        "naive-bayes (MNAR)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mar_dataset() -> Dataset {
        mechanism_dataset(
            Mechanism::Mar,
            &MechanismConfig {
                n_users: 150,
                n_items: 200,
                target_density: 0.15,
                feature_effect: 1.5,
                seed: 3,
                ..MechanismConfig::default()
            },
        )
    }

    #[test]
    fn constant_head_matches_density() {
        let ds = mar_dataset();
        let head = ConstantPropensity::fit(&ds);
        let p = head.propensity(0, 0, 1.0);
        assert!((p - ds.train.density()).abs() < 1e-12);
        assert_eq!(head.label(), "constant (MCAR)");
    }

    #[test]
    fn logistic_mf_correlates_with_true_mar_propensity() {
        let ds = mar_dataset();
        let truth = ds.truth.clone().unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let head = LogisticMfPropensity::fit(&ds, 4, 50, 0.05, 0.001, &mut rng);
        // Pearson correlation between p̂ and the oracle P(o|x) over a grid.
        let mut est = Vec::new();
        let mut tru = Vec::new();
        for u in 0..ds.n_users {
            for i in (0..ds.n_items).step_by(7) {
                est.push(head.predict(u, i));
                tru.push(truth.propensity_x.get(u, i));
            }
        }
        let corr = pearson(&est, &tru);
        assert!(corr > 0.5, "correlation {corr}");
    }

    #[test]
    fn naive_bayes_recovers_rating_gap() {
        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 150,
                n_items: 200,
                target_density: 0.1,
                rating_effect: 2.0,
                feature_effect: 0.0,
                seed: 4,
                ..MechanismConfig::default()
            },
        );
        let head = NaiveBayesAdapter::fit(&ds, 1e-4);
        let p1 = head.propensity(0, 0, 1.0);
        let p0 = head.propensity(0, 0, 0.0);
        assert!(
            p1 > 2.0 * p0,
            "NB should see higher propensity for positives: {p1} vs {p0}"
        );
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }
}
