//! Multi-layer perceptron towers.

use dt_autograd::{Graph, ParamId, Params, Var};
use rand::Rng;

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

struct Layer {
    w: ParamId,
    b: ParamId,
}

/// A fully-connected tower: `in → hidden… → out`, linear output (apply a
/// sigmoid outside when a probability is needed).
pub struct Mlp {
    layers: Vec<Layer>,
    activation: Activation,
    sizes: Vec<usize>,
}

impl Mlp {
    /// Builds a tower with the given layer sizes, e.g. `[16, 8, 1]` for a
    /// 16-input, one-hidden-layer scorer. Weights use Xavier init; the
    /// layers are registered into `params` under `name.<k>`.
    ///
    /// # Panics
    /// Panics when fewer than two sizes are given.
    pub fn new(
        params: &mut Params,
        name: &str,
        sizes: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(sizes.len() >= 2, "Mlp: need at least input and output size");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(k, w)| Layer {
                w: params.add(
                    format!("{name}.w{k}"),
                    dt_tensor::xavier_uniform(w[0], w[1], rng),
                ),
                b: params.add(format!("{name}.b{k}"), dt_tensor::Tensor::zeros(1, w[1])),
            })
            .collect();
        Self {
            layers,
            activation,
            sizes: sizes.to_vec(),
        }
    }

    /// Input width.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output width.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        // lint: allow(r3): `sizes` is validated non-empty in the constructor
        *self.sizes.last().expect("non-empty by construction")
    }

    /// Total scalar parameter count of the tower.
    #[must_use]
    pub fn n_parameters(&self) -> usize {
        self.sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Differentiable forward pass on a `n × in_dim` batch.
    pub fn forward(&self, g: &mut Graph, params: &Params, x: Var) -> Var {
        assert_eq!(
            g.value(x).cols(),
            self.in_dim(),
            "Mlp::forward: input width mismatch"
        );
        let mut h = x;
        let last = self.layers.len() - 1;
        for (k, layer) in self.layers.iter().enumerate() {
            let w = g.param(params, layer.w);
            let b = g.param(params, layer.b);
            let z = g.matmul(h, w);
            h = g.add_row_broadcast(z, b);
            if k < last {
                h = match self.activation {
                    Activation::Relu => g.relu(h),
                    Activation::Tanh => g.tanh(h),
                    Activation::Sigmoid => g.sigmoid(h),
                };
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_optim::{Adam, Optimizer};
    use dt_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "t", &[4, 8, 1], Activation::Tanh, &mut rng);
        // 4·8 + 8 + 8·1 + 1 = 49
        assert_eq!(mlp.n_parameters(), 49);
        assert_eq!(params.n_scalars(), 49);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 1);
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "t", &[3, 5, 2], Activation::Relu, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(7, 3));
        let y = mlp.forward(&mut g, &params, x);
        assert_eq!(g.value(y).rows(), 7);
        assert_eq!(g.value(y).cols(), 2);
    }

    #[test]
    fn learns_xor() {
        // XOR needs the hidden layer — a strong end-to-end check of the
        // whole autograd + optimizer + MLP stack.
        let mut rng = StdRng::seed_from_u64(9);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "xor", &[2, 8, 1], Activation::Tanh, &mut rng);
        let x = Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Tensor::col_vec(&[0.0, 1.0, 1.0, 0.0]);
        let mut opt = Adam::new(0.05);
        for _ in 0..800 {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let logits = mlp.forward(&mut g, &params, xv);
            let yv = g.constant(y.clone());
            let loss = g.bce_mean(logits, yv);
            g.backward(loss, &mut params);
            opt.step(&mut params);
            params.zero_grad();
        }
        let mut g = Graph::new();
        let xv = g.constant(x);
        let logits = mlp.forward(&mut g, &params, xv);
        let p = g.sigmoid(logits);
        let out = g.value(p).data().to_vec();
        assert!(out[0] < 0.2 && out[3] < 0.2, "{out:?}");
        assert!(out[1] > 0.8 && out[2] > 0.8, "{out:?}");
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "t", &[3, 1], Activation::Relu, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(1, 2));
        let _ = mlp.forward(&mut g, &params, x);
    }
}
