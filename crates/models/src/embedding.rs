//! Embedding tables.

use std::rc::Rc;

use dt_autograd::{Graph, ParamId, Params, Var};
use rand::Rng;

/// A trainable `n × dim` embedding table registered in a [`Params`] store.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingTable {
    id: ParamId,
    n: usize,
    dim: usize,
}

impl EmbeddingTable {
    /// Registers a table initialised `N(0, scale²)`.
    pub fn new(
        params: &mut Params,
        name: &str,
        n: usize,
        dim: usize,
        scale: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let init = dt_tensor::normal(n, dim, 0.0, scale, rng);
        Self {
            id: params.add(name, init),
            n,
            dim,
        }
    }

    /// The parameter handle.
    #[must_use]
    pub fn id(&self) -> ParamId {
        self.id
    }

    /// Number of rows (entities).
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for an empty table.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Mounts the full table as a leaf.
    pub fn full(&self, g: &mut Graph, params: &Params) -> Var {
        g.param(params, self.id)
    }

    /// Looks up a batch of rows (differentiable; backward emits a
    /// row-sparse gradient). Copies `indices` once — batch loops that mount
    /// the same index list several times should build one
    /// `Rc<Vec<usize>>` and call [`EmbeddingTable::lookup_indexed`].
    pub fn lookup(&self, g: &mut Graph, params: &Params, indices: &[usize]) -> Var {
        self.lookup_indexed(g, params, &Rc::new(indices.to_vec()))
    }

    /// Allocation-free lookup: the shared index list is `Rc`-cloned onto
    /// the tape instead of copied.
    pub fn lookup_indexed(&self, g: &mut Graph, params: &Params, indices: &Rc<Vec<usize>>) -> Var {
        debug_assert!(indices.iter().all(|&i| i < self.n));
        let table = g.param(params, self.id);
        g.gather(table, Rc::clone(indices))
    }

    /// Direct (non-differentiable) lookup of one row's values.
    #[must_use]
    pub fn row<'p>(&self, params: &'p Params, i: usize) -> &'p [f64] {
        params.value(self.id).row(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_and_gradients() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let table = EmbeddingTable::new(&mut params, "emb", 5, 3, 0.1, &mut rng);
        assert_eq!(table.len(), 5);
        assert_eq!(table.dim(), 3);

        let mut g = Graph::new();
        let rows = table.lookup(&mut g, &params, &[0, 0, 4]);
        assert_eq!(g.value(rows).rows(), 3);
        let loss0 = g.sqr(rows);
        let loss = g.sum(loss0);
        g.backward(loss, &mut params);
        // Row 0 looked up twice → its grad is 2·(2·w); rows 1..3 untouched.
        // The accumulator stays row-sparse: only rows {0, 4} are stored.
        let grad = params.grad(table.id());
        assert!(!grad.is_dense());
        let dense = grad.to_dense();
        assert_eq!(dense.row(1), &[0.0, 0.0, 0.0]);
        let w = table.row(&params, 0).to_vec();
        for (gv, wv) in dense.row(0).iter().zip(&w) {
            assert!((gv - 4.0 * wv).abs() < 1e-12);
        }
    }

    #[test]
    fn init_scale_is_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let t = EmbeddingTable::new(&mut params, "e", 400, 16, 0.01, &mut rng);
        let v = params.value(t.id());
        let std = (v.frob_sq() / v.len() as f64).sqrt();
        assert!((std - 0.01).abs() < 0.002, "std {std}");
    }
}
