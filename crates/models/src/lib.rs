//! # dt-models
//!
//! The model zoo behind the `disrec` training methods:
//!
//! * [`MfModel`] — matrix factorisation with biases, the base model of
//!   every method in the paper (§VI: "we use MF as our base model").
//! * [`DisentangledMf`] — the paper's contribution: embeddings split into
//!   a primary block (rating prediction) and an auxiliary block that only
//!   the propensity head sees, with the disentangling / regularisation
//!   penalties of §IV-B.
//! * [`Mlp`] / [`TowerModel`] — shared-embedding multi-tower architectures
//!   used by Multi-IPS/DR, ESMM and ESCM² (§VI: "we use a shallow MLP to
//!   implement these methods after the embedding layer").
//! * [`propensity`] — the propensity heads: constant (MCAR), logistic MF
//!   on `o` (MAR), and Naive-Bayes (MNAR with a uniform slice).

#![forbid(unsafe_code)]

mod disentangled;
mod embedding;
mod mf;
mod mlp;
pub mod propensity;
mod towers;

pub use disentangled::{DisentangledConfig, DisentangledMf};
pub use embedding::EmbeddingTable;
pub use mf::MfModel;
pub use mlp::{Activation, Mlp};
pub use towers::{TowerConfig, TowerModel};

use dt_autograd::{Graph, Var};
use dt_tensor::Tensor;

/// Broadcasts a `1×1` variable to an `n×1` column (used to add a global
/// bias to a batch of logits): implemented as `1_n · s`.
pub fn broadcast_scalar(g: &mut Graph, s: Var, n: usize) -> Var {
    let ones = g.constant(Tensor::ones(n, 1));
    g.matmul(ones, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_autograd::Params;

    #[test]
    fn broadcast_scalar_values_and_gradient() {
        let mut params = Params::new();
        let s = params.add("s", Tensor::scalar(3.0));
        let mut g = Graph::new();
        let sv = g.param(&params, s);
        let col = broadcast_scalar(&mut g, sv, 4);
        assert_eq!(g.value(col).data(), &[3.0; 4]);
        let loss = g.sum(col);
        g.backward(loss, &mut params);
        assert_eq!(params.grad(s).item(), 4.0);
    }
}
