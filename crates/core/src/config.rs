//! Training configuration shared by all methods.

/// Optimisation and architecture knobs common to every method.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Training epochs (one shuffled pass over the observed log each).
    pub epochs: usize,
    /// Mini-batch size over the observed log.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Embedding dimension of the base model (total dimension `K` for the
    /// disentangled model).
    pub emb_dim: usize,
    /// Propensity clip: `p̂ ← max(p̂, clip)`.
    pub prop_clip: f64,
    /// L2 weight decay folded into every Adam optimizer (the paper tunes
    /// an L2 penalty per method; this is the shared knob).
    pub l2: f64,
    /// Method-specific weights.
    pub hyper: Hyper,
}

/// Method-specific hyper-parameters (paper notation).
#[derive(Debug, Clone, Copy)]
pub struct Hyper {
    /// Propensity-loss weight `α` (DT, ESCM²).
    pub alpha: f64,
    /// Disentangling-loss weight `β` (DT) / independence weight (DIB).
    pub beta: f64,
    /// Regularisation-loss weight `γ` (DT) / confidence weight (CVIB).
    pub gamma: f64,
    /// Bias–variance trade-off `λ` (DR-MSE) / counterfactual-risk weight
    /// (ESCM²) / balancing weight (IPS-V2, DR-V2).
    pub lambda: f64,
    /// Primary embedding dimension `A` of the disentangled model
    /// (`0` means `emb_dim / 2`).
    pub primary_dim: usize,
}

impl Default for Hyper {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 1e-2,
            gamma: 1e-2,
            lambda: 0.5,
            primary_dim: 0,
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 15,
            batch_size: 512,
            lr: 0.03,
            emb_dim: 16,
            prop_clip: 0.05,
            l2: 1e-5,
            hyper: Hyper::default(),
        }
    }
}

impl TrainConfig {
    /// The effective primary dimension `A` of the disentangled model.
    ///
    /// Defaults to `3K/4`: the auxiliary block only needs to absorb the
    /// exposure signal, while the primary block carries the rating model —
    /// starving it (e.g. `A = K/2`) costs ranking quality, which is also
    /// why the paper treats `A` as a tuned hyper-parameter.
    #[must_use]
    pub fn primary_dim(&self) -> usize {
        if self.hyper.primary_dim == 0 {
            (3 * self.emb_dim / 4).clamp(1, self.emb_dim - 1)
        } else {
            self.hyper.primary_dim
        }
    }

    /// Validates ranges.
    ///
    /// # Panics
    /// Panics on degenerate values.
    pub fn validate(&self) {
        assert!(self.epochs > 0, "TrainConfig: zero epochs");
        assert!(self.batch_size > 0, "TrainConfig: zero batch size");
        assert!(self.lr > 0.0, "TrainConfig: non-positive lr");
        assert!(self.emb_dim >= 2, "TrainConfig: emb_dim must be ≥ 2");
        assert!(
            self.prop_clip > 0.0 && self.prop_clip < 1.0,
            "TrainConfig: prop_clip must be in (0,1)"
        );
        assert!(self.l2 >= 0.0, "TrainConfig: negative l2");
        assert!(
            self.primary_dim() < self.emb_dim,
            "TrainConfig: primary_dim must be < emb_dim"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TrainConfig::default().validate();
    }

    #[test]
    fn primary_dim_defaults_to_three_quarters() {
        let cfg = TrainConfig {
            emb_dim: 10,
            ..TrainConfig::default()
        };
        assert_eq!(cfg.primary_dim(), 7);
        let cfg2 = TrainConfig {
            emb_dim: 10,
            hyper: Hyper {
                primary_dim: 3,
                ..Hyper::default()
            },
            ..TrainConfig::default()
        };
        assert_eq!(cfg2.primary_dim(), 3);
    }

    #[test]
    #[should_panic(expected = "primary_dim must be < emb_dim")]
    fn oversized_primary_dim_rejected() {
        TrainConfig {
            emb_dim: 4,
            hyper: Hyper {
                primary_dim: 4,
                ..Hyper::default()
            },
            ..TrainConfig::default()
        }
        .validate();
    }
}
