//! The `Recommender` trait and evaluation driver.

use rand::rngs::StdRng;

use dt_data::Dataset;
use dt_metrics::{auc, evaluate_ranking, mae, mse};
use dt_serve::{
    IvfIndex, IvfParams, IvfScratch, PanelDtype, QuantizedIndex, RetrievalMode, ScoringIndex,
    SeenLists, TopKBatch, TopKEngine,
};
use dt_tensor::topk::select_top_k;

/// What every training method exposes to the experiment harness.
pub trait Recommender {
    /// Trains on the dataset's (biased) training log.
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport;

    /// Predicted conversion/rating probability for each pair.
    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64>;

    /// Total scalar parameter count (Table II / Table VI).
    fn n_parameters(&self) -> usize;

    /// Display name.
    fn name(&self) -> &'static str;

    /// Learned propensity for a pair, when the method has a propensity
    /// model (used by the calibration diagnostics).
    fn propensity(&self, _user: usize, _item: usize) -> Option<f64> {
        None
    }

    /// A dense serving index over the method's ranking scores, when its
    /// scorer is MF-family (panels + biases). Powers the fast path of
    /// [`Recommender::recommend_top_k`]; `None` (the default) falls back
    /// to scoring the catalog through [`Recommender::predict`].
    fn scoring_index(&self) -> Option<ScoringIndex> {
        None
    }

    /// The serving index re-exported at a serving dtype
    /// ([`dt_serve::ScoringIndex::quantize`], DESIGN.md section 15), when
    /// the method exposes a [`Recommender::scoring_index`]. Every
    /// MF-family method inherits this — all nine paper methods can emit
    /// `F64`, `F32` or `ScaledI8` panels; `None` mirrors
    /// `scoring_index`'s default for predict-only methods.
    fn quantized_index(&self, dtype: PanelDtype) -> Option<QuantizedIndex> {
        self.scoring_index().map(|index| index.quantize(dtype))
    }

    /// Batched full-catalog retrieval: the top `k` unseen items for each
    /// queried user over a catalog of `n_items`, best first.
    ///
    /// Methods exposing a [`Recommender::scoring_index`] run the blocked
    /// gather-GEMM + bounded-heap [`TopKEngine`]; the rest score the
    /// catalog per user through [`Recommender::predict`]. Both paths use
    /// the same partial-selection kernel and tie-breaking (score
    /// descending, item id ascending), so rankings agree whenever the
    /// index logits are a monotone transform of the predictions.
    ///
    /// # Panics
    /// Panics when an index is present but built for a different catalog
    /// size, or a user/seen-list id is out of bounds.
    #[must_use]
    fn recommend_top_k(
        &self,
        users: &[usize],
        n_items: usize,
        k: usize,
        seen: Option<&SeenLists>,
    ) -> TopKBatch {
        if let Some(index) = self.scoring_index() {
            assert_eq!(
                index.n_items(),
                n_items,
                "recommend_top_k: index built for {} items, asked for {n_items}",
                index.n_items()
            );
            return TopKEngine::new().recommend(&index, users, k, seen);
        }
        let mut out = TopKBatch::new();
        out.reset(users.len(), k);
        if users.is_empty() || k == 0 {
            return out;
        }
        let mut pairs = Vec::with_capacity(n_items);
        for (j, &u) in users.iter().enumerate() {
            pairs.clear();
            pairs.extend((0..n_items).map(|i| (u, i)));
            let scores = self.predict(&pairs);
            let exclude = seen.map_or(&[][..], |s| s.seen(u));
            let filled = select_top_k(&scores, exclude, out.user_mut(j));
            out.set_count(j, filled);
        }
        out
    }

    /// [`Recommender::recommend_top_k`] with a retrieval-mode hint.
    ///
    /// `RetrievalMode::Exact` is exactly `recommend_top_k`. For
    /// `RetrievalMode::Ivf` the method must expose a
    /// [`Recommender::scoring_index`]; a companion [`IvfIndex`] is built
    /// **per call** (a documented cold path — callers serving sustained
    /// traffic should hold the index and the [`TopKEngine`] themselves,
    /// as the Table VI runner and `dt-bench` do) and the query runs the
    /// probe-and-rerank arm. Methods without an index ignore the hint and
    /// take the predict fallback: the hint is advisory, never
    /// result-changing beyond the documented IVF recall trade.
    ///
    /// # Panics
    /// Panics on everything [`Recommender::recommend_top_k`] panics on.
    #[must_use]
    fn recommend_top_k_with(
        &self,
        users: &[usize],
        n_items: usize,
        k: usize,
        seen: Option<&SeenLists>,
        mode: RetrievalMode,
    ) -> TopKBatch {
        let (RetrievalMode::Ivf { nlist, nprobe }, Some(index)) = (mode, self.scoring_index())
        else {
            return self.recommend_top_k(users, n_items, k, seen);
        };
        assert_eq!(
            index.n_items(),
            n_items,
            "recommend_top_k: index built for {} items, asked for {n_items}",
            index.n_items()
        );
        let ivf = IvfIndex::build(
            &index,
            &IvfParams {
                nlist,
                ..IvfParams::default()
            },
        );
        let mut out = TopKBatch::new();
        let mut scratch = IvfScratch::default();
        TopKEngine::new().recommend_ivf_into(
            &index,
            &ivf,
            nprobe,
            users,
            k,
            seen,
            &mut scratch,
            &mut out,
        );
        out
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Final epoch's mean training loss.
    pub final_loss: f64,
    /// Mean training loss per epoch.
    pub loss_trace: Vec<f64>,
    /// Method-specific auxiliary trace (the DT methods record the
    /// disentangling-loss scale per epoch — the paper's Figure 4(c,d)).
    pub aux_trace: Vec<f64>,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
}

impl FitReport {
    /// An empty report for untrainable stubs.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            epochs_run: 0,
            final_loss: f64::NAN,
            loss_trace: Vec::new(),
            aux_trace: Vec::new(),
            train_seconds: 0.0,
        }
    }
}

/// Metrics of one model on one dataset (the columns of Tables III/IV).
#[derive(Debug, Clone, Copy)]
pub struct EvalReport {
    /// AUC over the unbiased test log.
    pub auc: f64,
    /// NDCG@K over the test log.
    pub ndcg: f64,
    /// Recall@K over the test log.
    pub recall: f64,
    /// MSE against the ground-truth preference over the full space (only
    /// meaningful for generated datasets; `NaN` otherwise).
    pub mse_vs_truth: f64,
    /// MAE against the ground-truth preference (ditto).
    pub mae_vs_truth: f64,
}

/// Evaluates a fitted model: ranking/AUC on the unbiased test log, plus
/// pointwise error against the oracle preference when available.
///
/// For datasets with a ground truth but a large space, the pointwise
/// metrics are computed over a deterministic stride of at most ~200k cells.
#[must_use]
pub fn evaluate(model: &dyn Recommender, ds: &Dataset, k: usize) -> EvalReport {
    // Ranking + AUC over the test log.
    let (auc_v, ndcg_v, recall_v) = if ds.test.is_empty() {
        (f64::NAN, f64::NAN, f64::NAN)
    } else {
        let pairs: Vec<(usize, usize)> = ds
            .test
            .interactions()
            .iter()
            .map(|it| (it.user as usize, it.item as usize))
            .collect();
        let scores = model.predict(&pairs);
        let labels: Vec<f64> = ds.test.interactions().iter().map(|it| it.rating).collect();
        let rank = evaluate_ranking(&ds.test, &scores, k);
        (auc(&scores, &labels), rank.ndcg, rank.recall)
    };

    // Pointwise error against the oracle preference.
    let (mse_v, mae_v) = match &ds.truth {
        None => (f64::NAN, f64::NAN),
        Some(truth) => {
            let total = ds.n_users * ds.n_items;
            let stride = (total / 200_000).max(1);
            let mut pairs = Vec::with_capacity(total / stride + 1);
            let mut cell = 0usize;
            while cell < total {
                pairs.push((cell / ds.n_items, cell % ds.n_items));
                cell += stride;
            }
            let pred = model.predict(&pairs);
            let target: Vec<f64> = pairs
                .iter()
                .map(|&(u, i)| truth.preference.get(u, i))
                .collect();
            (mse(&pred, &target), mae(&pred, &target))
        }
    };

    EvalReport {
        auc: auc_v,
        ndcg: ndcg_v,
        recall: recall_v,
        mse_vs_truth: mse_v,
        mae_vs_truth: mae_v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    /// An oracle "model" that predicts the true preference — evaluation
    /// should give it near-zero pointwise error and strong AUC.
    struct Oracle(dt_tensor::Tensor);

    impl Recommender for Oracle {
        fn fit(&mut self, _ds: &Dataset, _rng: &mut StdRng) -> FitReport {
            FitReport::empty()
        }
        fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
            pairs.iter().map(|&(u, i)| self.0.get(u, i)).collect()
        }
        fn n_parameters(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "oracle"
        }
    }

    #[test]
    fn oracle_evaluates_perfectly() {
        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 50,
                n_items: 60,
                seed: 9,
                ..MechanismConfig::default()
            },
        );
        let oracle = Oracle(ds.truth.as_ref().unwrap().preference.clone());
        let rep = evaluate(&oracle, &ds, 5);
        assert!(rep.mse_vs_truth < 1e-12);
        assert!(rep.mae_vs_truth < 1e-12);
        assert!(rep.auc > 0.6, "auc {}", rep.auc);
        assert!(rep.ndcg > 0.5);
    }

    /// An MF model served two ways: with its index (fast path) and with
    /// the index withheld (predict fallback).
    struct Served {
        model: dt_models::MfModel,
        expose_index: bool,
    }

    impl Recommender for Served {
        fn fit(&mut self, _ds: &Dataset, _rng: &mut StdRng) -> FitReport {
            FitReport::empty()
        }
        fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
            self.model.predict(pairs)
        }
        fn n_parameters(&self) -> usize {
            self.model.n_parameters()
        }
        fn name(&self) -> &'static str {
            "served"
        }
        fn scoring_index(&self) -> Option<ScoringIndex> {
            self.expose_index.then(|| self.model.scoring_index())
        }
    }

    #[test]
    fn fast_path_and_predict_fallback_rank_identically() {
        use rand::SeedableRng;
        // Small random weights keep the logits well inside the sigmoid's
        // non-saturating range, so distinct logits stay distinct after
        // expit and both paths face the same tie structure.
        let mut rng = StdRng::seed_from_u64(42);
        let model = dt_models::MfModel::new(12, 37, 4, &mut rng);
        let fast = Served {
            model,
            expose_index: true,
        };
        let users: Vec<usize> = (0..20).map(|j| (j * 5) % 12).collect();
        let seen = SeenLists::from_pairs(12, (0..12u32).flat_map(|u| [(u, u), (u, u + 9)]));
        let a = fast.recommend_top_k(&users, 37, 8, Some(&seen));
        let slow = Served {
            model: fast.model,
            expose_index: false,
        };
        let b = slow.recommend_top_k(&users, 37, 8, Some(&seen));
        assert_eq!(a.n_users(), b.n_users());
        for j in 0..users.len() {
            let fast_items: Vec<u32> = a.user(j).iter().map(|r| r.item).collect();
            let slow_items: Vec<u32> = b.user(j).iter().map(|r| r.item).collect();
            assert_eq!(fast_items, slow_items, "user-slot {j}");
        }
    }

    #[test]
    fn quantized_index_f64_serves_bit_identically_and_fallback_has_none() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(23);
        let served = Served {
            model: dt_models::MfModel::new(9, 41, 4, &mut rng),
            expose_index: true,
        };
        let users: Vec<usize> = (0..12).map(|j| (j * 7) % 9).collect();
        let exact = served.recommend_top_k(&users, 41, 5, None);
        let qidx = served.quantized_index(PanelDtype::F64).unwrap();
        let quant = TopKEngine::new().recommend_quantized(&qidx, &users, 5, None);
        assert_eq!(exact, quant);
        // Lossy dtypes exist for every index-exposing method too.
        assert!(served.quantized_index(PanelDtype::ScaledI8).is_some());
        let fallback = Served {
            model: served.model,
            expose_index: false,
        };
        assert!(fallback.quantized_index(PanelDtype::F32).is_none());
    }

    #[test]
    fn ivf_hint_at_full_probe_matches_exact_and_fallback_ignores_it() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let model = dt_models::MfModel::new(10, 64, 4, &mut rng);
        let served = Served {
            model,
            expose_index: true,
        };
        let users: Vec<usize> = (0..15).map(|j| (j * 3) % 10).collect();
        let seen = SeenLists::from_pairs(10, (0..10u32).map(|u| (u, u * 2)));
        let exact = served.recommend_top_k(&users, 64, 6, Some(&seen));
        // nprobe = nlist covers the catalog: identical output.
        let ivf = served.recommend_top_k_with(
            &users,
            64,
            6,
            Some(&seen),
            RetrievalMode::Ivf {
                nlist: 8,
                nprobe: 8,
            },
        );
        assert_eq!(exact, ivf);
        // Exact hint is literally the plain path.
        let plain = served.recommend_top_k_with(&users, 64, 6, Some(&seen), RetrievalMode::Exact);
        assert_eq!(exact, plain);
        // A method without an index ignores the hint.
        let fallback = Served {
            model: served.model,
            expose_index: false,
        };
        let hinted = fallback.recommend_top_k_with(
            &users,
            64,
            6,
            Some(&seen),
            RetrievalMode::Ivf {
                nlist: 8,
                nprobe: 1,
            },
        );
        let unhinted = fallback.recommend_top_k(&users, 64, 6, Some(&seen));
        assert_eq!(hinted, unhinted);
    }

    #[test]
    #[should_panic(expected = "index built for")]
    fn mismatched_catalog_size_panics() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let served = Served {
            model: dt_models::MfModel::new(3, 5, 2, &mut rng),
            expose_index: true,
        };
        let _ = served.recommend_top_k(&[0], 6, 2, None);
    }

    #[test]
    fn anti_oracle_has_low_auc() {
        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 50,
                n_items: 60,
                seed: 9,
                ..MechanismConfig::default()
            },
        );
        let anti = Oracle(ds.truth.as_ref().unwrap().preference.map(|p| 1.0 - p));
        let rep = evaluate(&anti, &ds, 5);
        assert!(rep.auc < 0.4, "auc {}", rep.auc);
        assert!(rep.mse_vs_truth > 0.01);
    }
}
