//! Method registry: every row of the paper's Table IV, constructible by
//! name.

use dt_data::Dataset;

use crate::config::TrainConfig;
use crate::methods::{
    BalancedRecommender, BalancedVariant, CvibRecommender, DibRecommender, DrRecommender,
    DrVariant, DtRecommender, DtVariant, IpsRecommender, MfRecommender, MrRecommender,
    MultiTaskRecommender, MultiTaskVariant,
};
use crate::recommender::Recommender;

/// Every method in the paper's evaluation (Table IV order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Method {
    Mf,
    Cvib,
    Dib,
    Ips,
    Dr,
    DrJl,
    MrdrJl,
    DrBias,
    DrMse,
    Mr,
    Tdr,
    TdrJl,
    StableDr,
    MultiIps,
    MultiDr,
    Esmm,
    Escm2Ips,
    Escm2Dr,
    IpsV2,
    DrV2,
    DtIps,
    DtDr,
}

impl Method {
    /// All methods, in Table IV order.
    pub const ALL: [Method; 22] = [
        Method::Mf,
        Method::Cvib,
        Method::Dib,
        Method::Ips,
        Method::Dr,
        Method::DrJl,
        Method::MrdrJl,
        Method::DrBias,
        Method::DrMse,
        Method::Mr,
        Method::Tdr,
        Method::TdrJl,
        Method::StableDr,
        Method::MultiIps,
        Method::MultiDr,
        Method::Esmm,
        Method::Escm2Ips,
        Method::Escm2Dr,
        Method::IpsV2,
        Method::DrV2,
        Method::DtIps,
        Method::DtDr,
    ];

    /// The subset used in the semi-synthetic Table III.
    pub const TABLE3: [Method; 9] = [
        Method::Mf,
        Method::Ips,
        Method::Dr,
        Method::MultiIps,
        Method::MultiDr,
        Method::Escm2Ips,
        Method::Escm2Dr,
        Method::DtIps,
        Method::DtDr,
    ];

    /// Display name matching the paper's tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Method::Mf => "MF",
            Method::Cvib => "CVIB",
            Method::Dib => "DIB",
            Method::Ips => "IPS",
            Method::Dr => "DR",
            Method::DrJl => "DR-JL",
            Method::MrdrJl => "MRDR-JL",
            Method::DrBias => "DR-BIAS",
            Method::DrMse => "DR-MSE",
            Method::Mr => "MR",
            Method::Tdr => "TDR",
            Method::TdrJl => "TDR-JL",
            Method::StableDr => "Stable-DR",
            Method::MultiIps => "Multi-IPS",
            Method::MultiDr => "Multi-DR",
            Method::Esmm => "ESMM",
            Method::Escm2Ips => "ESCM2-IPS",
            Method::Escm2Dr => "ESCM2-DR",
            Method::IpsV2 => "IPS-V2",
            Method::DrV2 => "DR-V2",
            Method::DtIps => "DT-IPS",
            Method::DtDr => "DT-DR",
        }
    }

    /// Parses a display name (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Method> {
        let s = s.to_ascii_lowercase();
        Method::ALL
            .into_iter()
            .find(|m| m.label().to_ascii_lowercase() == s)
    }
}

/// Builds an untrained model of the given method for a dataset.
#[must_use]
pub fn build(method: Method, ds: &Dataset, cfg: &TrainConfig, seed: u64) -> Box<dyn Recommender> {
    match method {
        Method::Mf => Box::new(MfRecommender::new(ds, cfg, seed)),
        Method::Cvib => Box::new(CvibRecommender::new(ds, cfg, seed)),
        Method::Dib => Box::new(DibRecommender::new(ds, cfg, seed)),
        Method::Ips => Box::new(IpsRecommender::new(ds, cfg, seed)),
        Method::Dr => Box::new(DrRecommender::new(ds, cfg, DrVariant::Vanilla, seed)),
        Method::DrJl => Box::new(DrRecommender::new(ds, cfg, DrVariant::JointLearning, seed)),
        Method::MrdrJl => Box::new(DrRecommender::new(ds, cfg, DrVariant::Mrdr, seed)),
        Method::DrBias => Box::new(DrRecommender::new(ds, cfg, DrVariant::Bias, seed)),
        Method::DrMse => Box::new(DrRecommender::new(ds, cfg, DrVariant::Mse, seed)),
        Method::Mr => Box::new(MrRecommender::new(ds, cfg, seed)),
        Method::Tdr => Box::new(DrRecommender::new(ds, cfg, DrVariant::Tdr, seed)),
        Method::TdrJl => Box::new(DrRecommender::new(ds, cfg, DrVariant::TdrJl, seed)),
        Method::StableDr => Box::new(DrRecommender::new(ds, cfg, DrVariant::Stable, seed)),
        Method::MultiIps => Box::new(MultiTaskRecommender::new(
            ds,
            cfg,
            MultiTaskVariant::MultiIps,
            seed,
        )),
        Method::MultiDr => Box::new(MultiTaskRecommender::new(
            ds,
            cfg,
            MultiTaskVariant::MultiDr,
            seed,
        )),
        Method::Esmm => Box::new(MultiTaskRecommender::new(
            ds,
            cfg,
            MultiTaskVariant::Esmm,
            seed,
        )),
        Method::Escm2Ips => Box::new(MultiTaskRecommender::new(
            ds,
            cfg,
            MultiTaskVariant::Escm2Ips,
            seed,
        )),
        Method::Escm2Dr => Box::new(MultiTaskRecommender::new(
            ds,
            cfg,
            MultiTaskVariant::Escm2Dr,
            seed,
        )),
        Method::IpsV2 => Box::new(BalancedRecommender::new(
            ds,
            cfg,
            BalancedVariant::IpsV2,
            seed,
        )),
        Method::DrV2 => Box::new(BalancedRecommender::new(
            ds,
            cfg,
            BalancedVariant::DrV2,
            seed,
        )),
        Method::DtIps => Box::new(DtRecommender::new(ds, cfg, DtVariant::Ips, seed)),
        Method::DtDr => Box::new(DtRecommender::new(ds, cfg, DtVariant::Dr, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    fn dataset() -> Dataset {
        mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 20,
                n_items: 25,
                target_density: 0.2,
                seed: 20,
                ..MechanismConfig::default()
            },
        )
    }

    #[test]
    fn every_method_builds_and_reports_parameters() {
        let ds = dataset();
        let cfg = TrainConfig {
            emb_dim: 4,
            ..TrainConfig::default()
        };
        for method in Method::ALL {
            let m = build(method, &ds, &cfg, 0);
            assert_eq!(m.name(), method.label());
            assert!(m.n_parameters() > 0, "{}", method.label());
        }
    }

    #[test]
    fn labels_roundtrip_through_parse() {
        for method in Method::ALL {
            assert_eq!(Method::parse(method.label()), Some(method));
            assert_eq!(Method::parse(&method.label().to_lowercase()), Some(method));
        }
        assert_eq!(Method::parse("nonsense"), None);
    }

    #[test]
    fn table2_embedding_ratios_hold() {
        // The parameter-structure claims of Table II: with a common config,
        //   IPS ≈ 2× MF embeddings, DR-JL ≈ 3×, DT-IPS ≈ 1× (+ prop-head
        //   biases), DT-DR ≈ 2×.
        let ds = dataset();
        let cfg = TrainConfig {
            emb_dim: 16,
            ..TrainConfig::default()
        };
        let params = |m: Method| build(m, &ds, &cfg, 0).n_parameters() as f64;
        let mf = params(Method::Mf);
        assert!(params(Method::Ips) / mf > 1.3, "IPS carries a 2nd model");
        assert!(
            params(Method::DrJl) > params(Method::Ips),
            "DR-JL adds imputation"
        );
        assert!(
            params(Method::DtIps) < params(Method::Ips),
            "DT-IPS shares its embeddings"
        );
        assert!(
            params(Method::DtDr) > params(Method::DtIps),
            "DT-DR adds imputation"
        );
    }
}
