//! # dt-core
//!
//! The training methods of *"Uncovering the Propensity Identification
//! Problem in Debiased Recommendations"* (ICDE 2024), all built on the
//! workspace substrate (`dt-tensor` → `dt-autograd` → `dt-optim` →
//! `dt-models`):
//!
//! * the paper's contribution: [`methods::DtRecommender`] (**DT-IPS** and
//!   **DT-DR**) — disentangled embeddings whose auxiliary block identifies
//!   the MNAR propensity;
//! * the 20 baselines of Table IV: MF, CVIB, DIB, IPS, DR, DR-JL, MRDR-JL,
//!   DR-BIAS, DR-MSE, MR, TDR, TDR-JL, Stable-DR, Multi-IPS, Multi-DR,
//!   ESMM, ESCM²-IPS, ESCM²-DR, IPS-V2, DR-V2.
//!
//! Every method implements the [`Recommender`] trait, is constructible from
//! the [`registry`] by name, and reports parameter counts and loss traces
//! for the efficiency tables.
//!
//! ## Quickstart
//!
//! ```
//! use dt_core::{registry, Method, TrainConfig};
//! use dt_data::{coat_like, RealWorldConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let ds = dt_data::mechanism_dataset(
//!     dt_data::Mechanism::Mnar,
//!     &dt_data::MechanismConfig { n_users: 40, n_items: 50, ..Default::default() },
//! );
//! let cfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
//! let mut model = registry::build(Method::DtIps, &ds, &cfg, 0);
//! let mut rng = StdRng::seed_from_u64(0);
//! let report = model.fit(&ds, &mut rng);
//! assert!(report.final_loss.is_finite());
//! let scores = model.predict(&[(0, 0), (1, 2)]);
//! assert!(scores.iter().all(|p| (0.0..=1.0).contains(p)));
//! # let _ = (coat_like, RealWorldConfig::default());
//! ```

#![forbid(unsafe_code)]

mod config;
pub mod methods;
mod recommender;
pub mod registry;

pub use config::{Hyper, TrainConfig};
pub use recommender::{evaluate, EvalReport, FitReport, Recommender};
pub use registry::Method;

// Serving-layer types, re-exported so harness code can drive
// `Recommender::recommend_top_k` without a direct dt-serve dependency.
pub use dt_serve::{Ranked, ScoringIndex, SeenLists, TopKBatch, TopKEngine};
