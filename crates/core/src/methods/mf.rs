//! The naive baseline: matrix factorisation on the observed ratings only
//! (eq. (2) — unbiased under MCAR, biased otherwise).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_autograd::Graph;
use dt_data::{BatchIter, Dataset};
use dt_models::MfModel;
use dt_optim::{Adam, Optimizer};
use dt_tensor::Tensor;

use crate::config::TrainConfig;
use crate::methods::common::Batch;
use crate::recommender::{FitReport, Recommender};

/// Plain MF trained with BCE on the observed log.
pub struct MfRecommender {
    model: MfModel,
    cfg: TrainConfig,
}

impl MfRecommender {
    /// A fresh model for the dataset's dimensions.
    #[must_use]
    pub fn new(ds: &Dataset, cfg: &TrainConfig, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            model: MfModel::new(ds.n_users, ds.n_items, cfg.emb_dim, &mut rng),
            cfg: *cfg,
        }
    }
}

impl Recommender for MfRecommender {
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport {
        let start = Instant::now(); // lint: allow(r4): epoch wall-time telemetry only; never feeds the numerics
        let mut opt = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut trace = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for raw in BatchIter::new(&ds.train, self.cfg.batch_size, rng) {
                let b = Batch::from_interactions(&raw);
                let mut g = Graph::new();
                let logits = self.model.logits(&mut g, &b.users, &b.items);
                let y = g.constant(Tensor::col_vec(&b.ratings));
                let loss = g.bce_mean(logits, y);
                epoch_loss += g.item(loss);
                n += 1;
                g.backward(loss, &mut self.model.params);
                drop(g); // release the tape's table Rcs so the step mutates in place
                opt.step(&mut self.model.params);
                self.model.params.zero_grad();
            }
            trace.push(epoch_loss / n.max(1) as f64);
        }
        FitReport {
            epochs_run: self.cfg.epochs,
            final_loss: *trace.last().unwrap_or(&f64::NAN),
            loss_trace: trace,
            aux_trace: Vec::new(),
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.model.predict(pairs)
    }

    fn scoring_index(&self) -> Option<dt_serve::ScoringIndex> {
        Some(self.model.scoring_index())
    }

    fn n_parameters(&self) -> usize {
        self.model.n_parameters()
    }

    fn name(&self) -> &'static str {
        "MF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    #[test]
    fn training_reduces_loss() {
        let ds = mechanism_dataset(
            Mechanism::Mcar,
            &MechanismConfig {
                n_users: 40,
                n_items: 50,
                target_density: 0.2,
                seed: 6,
                ..MechanismConfig::default()
            },
        );
        let cfg = TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        };
        let mut m = MfRecommender::new(&ds, &cfg, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let rep = m.fit(&ds, &mut rng);
        assert_eq!(rep.epochs_run, 8);
        assert!(rep.loss_trace[0] > rep.final_loss, "{:?}", rep.loss_trace);
        assert!(rep.final_loss < 0.69, "below chance-level BCE");
        assert!(rep.train_seconds > 0.0);
    }
}
