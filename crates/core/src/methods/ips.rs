//! Vanilla IPS (Schnabel et al. 2016): two-stage inverse propensity
//! scoring with a logistic-MF MAR propensity (eq. (3)).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_autograd::Graph;
use dt_data::{BatchIter, Dataset};
use dt_models::propensity::LogisticMfPropensity;
use dt_models::MfModel;
use dt_optim::{Adam, Optimizer};
use dt_tensor::Tensor;

use crate::config::TrainConfig;
use crate::methods::common::{fit_mar_propensity, inverse_propensities, Batch};
use crate::recommender::{FitReport, Recommender};

/// Two-stage IPS: fit `p̂(x)`, then minimise the reweighted squared error
/// `mean_O[(r − r̂)² / p̂]`.
pub struct IpsRecommender {
    model: MfModel,
    prop: Option<LogisticMfPropensity>,
    cfg: TrainConfig,
    /// Self-normalise the weights within each batch (SNIPS flavour).
    self_normalized: bool,
}

impl IpsRecommender {
    /// A fresh (vanilla) IPS model.
    #[must_use]
    pub fn new(ds: &Dataset, cfg: &TrainConfig, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            model: MfModel::new(ds.n_users, ds.n_items, cfg.emb_dim, &mut rng),
            prop: None,
            cfg: *cfg,
            self_normalized: false,
        }
    }

    /// Switches to per-batch self-normalised weights.
    #[must_use]
    pub fn self_normalized(mut self) -> Self {
        self.self_normalized = true;
        self
    }
}

impl Recommender for IpsRecommender {
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport {
        let start = Instant::now(); // lint: allow(r4): epoch wall-time telemetry only; never feeds the numerics
                                    // Stage 1: MAR propensity.
        let prop = fit_mar_propensity(ds, &self.cfg, rng);
        // Stage 2: reweighted prediction model.
        let mut opt = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut trace = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for raw in BatchIter::new(&ds.train, self.cfg.batch_size, rng) {
                let b = Batch::from_interactions(&raw);
                let inv_p = inverse_propensities(&prop, &b, self.cfg.prop_clip);
                let mut g = Graph::new();
                let logits = self.model.logits(&mut g, &b.users, &b.items);
                let pred = g.sigmoid(logits);
                let y = g.constant(Tensor::col_vec(&b.ratings));
                let err = g.squared_error(pred, y);
                let w = g.constant(Tensor::col_vec(&inv_p));
                let loss = if self.self_normalized {
                    g.self_normalized_mean(w, err)
                } else {
                    g.weighted_mean(w, err)
                };
                epoch_loss += g.item(loss);
                n += 1;
                g.backward(loss, &mut self.model.params);
                drop(g); // release the tape's table Rcs so the step mutates in place
                opt.step(&mut self.model.params);
                self.model.params.zero_grad();
            }
            trace.push(epoch_loss / n.max(1) as f64);
        }
        self.prop = Some(prop);
        FitReport {
            epochs_run: self.cfg.epochs,
            final_loss: *trace.last().unwrap_or(&f64::NAN),
            loss_trace: trace,
            aux_trace: Vec::new(),
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.model.predict(pairs)
    }

    fn scoring_index(&self) -> Option<dt_serve::ScoringIndex> {
        Some(self.model.scoring_index())
    }

    fn n_parameters(&self) -> usize {
        // Prediction MF + separate propensity MF: the paper's Table II
        // "2×" embedding row.
        self.model.n_parameters()
            + self.prop.as_ref().map_or_else(
                || self.model.n_parameters() / 2,
                LogisticMfPropensity::n_parameters,
            )
    }

    fn name(&self) -> &'static str {
        if self.self_normalized {
            "SNIPS"
        } else {
            "IPS"
        }
    }

    fn propensity(&self, user: usize, item: usize) -> Option<f64> {
        self.prop.as_ref().map(|p| p.predict(user, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    fn dataset() -> Dataset {
        mechanism_dataset(
            Mechanism::Mar,
            &MechanismConfig {
                n_users: 40,
                n_items: 50,
                target_density: 0.15,
                seed: 6,
                ..MechanismConfig::default()
            },
        )
    }

    #[test]
    fn fit_produces_finite_losses_and_propensities() {
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        let mut m = IpsRecommender::new(&ds, &cfg, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let rep = m.fit(&ds, &mut rng);
        assert!(rep.final_loss.is_finite());
        let p = m.propensity(0, 0).unwrap();
        assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn snips_variant_is_labelled() {
        let ds = dataset();
        let cfg = TrainConfig::default();
        let m = IpsRecommender::new(&ds, &cfg, 0).self_normalized();
        assert_eq!(m.name(), "SNIPS");
    }
}
