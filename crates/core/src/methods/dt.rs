//! **The paper's contribution**: DT-IPS and DT-DR (§IV-B).
//!
//! A [`DisentangledMf`] carries embeddings `P = [P′, P″]`, `Q = [Q′, Q″]`.
//! The rating head sees only the primary blocks; the propensity head sees
//! the full embeddings, so the auxiliary blocks play the role of the
//! auxiliary variable `z` of Assumption 1 — they may influence *whether* a
//! rating is observed but are pushed (by the disentangling loss) to carry
//! no rating signal. By Lemma 3 / Theorem 1 this renders the MNAR
//! propensity identifiable, and the propensity head is trained on the
//! entire space so the debiasing weights converge to `P(o = 1 | x, r)`
//! rather than the MAR propensity that vanilla IPS/DR are stuck with.
//!
//! The multi-task loss (paper notation):
//!
//! ```text
//! L = L_IPS(P′, Q′; θ_r)            — or the DR pair for DT-DR
//!   + α · L_O(P, Q; θ_o)            — propensity BCE over D
//!   + β · (‖P′ᵀP″‖²_F + ‖Q′ᵀQ″‖²_F) — disentangling
//!   + γ · (‖P′Q′ᵀ‖²_F + ‖P″Q″ᵀ‖²_F) — regularisation (Gram trick)
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_autograd::Graph;
use dt_data::{BatchIter, Dataset};
use dt_models::{DisentangledConfig, DisentangledMf, MfModel};
use dt_optim::{Adam, Optimizer};
use dt_tensor::Tensor;

use crate::config::TrainConfig;
use crate::methods::common::{uniform_batch, Batch};
use crate::recommender::{FitReport, Recommender};

/// Which debiasing estimator drives the rating head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DtVariant {
    /// Inverse propensity scoring (DT-IPS).
    Ips,
    /// Doubly robust with a separate imputation model (DT-DR).
    Dr,
}

/// The disentanglement trainer.
pub struct DtRecommender {
    model: DisentangledMf,
    imputation: Option<MfModel>,
    cfg: TrainConfig,
    variant: DtVariant,
    /// Ablation switches (Table V): disable the disentangling / the
    /// regularisation loss.
    use_disentangle: bool,
    use_regularization: bool,
}

impl DtRecommender {
    /// A fresh DT model.
    #[must_use]
    pub fn new(ds: &Dataset, cfg: &TrainConfig, variant: DtVariant, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = DisentangledMf::new(
            ds.n_users,
            ds.n_items,
            &DisentangledConfig {
                total_dim: cfg.emb_dim,
                primary_dim: cfg.primary_dim(),
                init_scale: 0.1,
            },
            &mut rng,
        );
        let imputation = (variant == DtVariant::Dr)
            .then(|| MfModel::new(ds.n_users, ds.n_items, cfg.emb_dim, &mut rng));
        Self {
            model,
            imputation,
            cfg: *cfg,
            variant,
            use_disentangle: true,
            use_regularization: true,
        }
    }

    /// Disables the disentangling loss (ablation, Table V).
    #[must_use]
    pub fn without_disentangle(mut self) -> Self {
        self.use_disentangle = false;
        self
    }

    /// Disables the regularisation loss (ablation, Table V).
    #[must_use]
    pub fn without_regularization(mut self) -> Self {
        self.use_regularization = false;
        self
    }

    /// Clipped MNAR propensities from the model's own head (plain values),
    /// through the batched propensity kernel.
    fn head_propensities(&self, users: &[usize], items: &[usize]) -> Vec<f64> {
        let mut out = self.model.predict_propensity_batch(users, items);
        for p in &mut out {
            *p = p.max(self.cfg.prop_clip);
        }
        out
    }
}

impl Recommender for DtRecommender {
    #[allow(clippy::too_many_lines)]
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport {
        let start = Instant::now(); // lint: allow(r4): epoch wall-time telemetry only; never feeds the numerics
        let observed_set = ds.train.pair_set();
        let density = ds.train.density();
        let h = self.cfg.hyper;

        let mut opt = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut opt_imp = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut trace = Vec::with_capacity(self.cfg.epochs);
        let mut aux = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for raw in BatchIter::new(&ds.train, self.cfg.batch_size, rng) {
                let b = Batch::from_interactions(&raw);
                // The propensity loss is a full-space objective: give it a
                // 4× Monte-Carlo sample so the head converges on the same
                // schedule as the rating head.
                let ub = uniform_batch(ds, 4 * b.len(), &observed_set, rng);

                // Propensities at the observed pairs, detached: the
                // debiasing weights must not push the propensity head.
                let inv_p: Vec<f64> = self
                    .head_propensities(&b.users, &b.items)
                    .iter()
                    .map(|p| 1.0 / p)
                    .collect();

                // Pseudo-labels r̃ from the imputation model (DT-DR only),
                // treated as given for this pass; the imputed error
                // ê = (r̂ − r̃)² stays a live function of the rating head,
                // which is how the unobserved space is supervised.
                let r_tilde_obs: Option<Vec<f64>> = self
                    .imputation
                    .as_ref()
                    .map(|imp| imp.predict_batch(&b.users, &b.items));
                let r_tilde_unif: Option<Vec<f64>> = self
                    .imputation
                    .as_ref()
                    .map(|imp| imp.predict_batch(&ub.users, &ub.items));

                // ---- main pass over the disentangled model ---------------
                // One shared index list per side and batch: the rating and
                // propensity heads (and the DR base term) gather through the
                // same `Rc` instead of re-copying the lists per head.
                let b_users = std::rc::Rc::new(b.users.clone());
                let b_items = std::rc::Rc::new(b.items.clone());
                let ub_users = std::rc::Rc::new(ub.users.clone());
                let ub_items = std::rc::Rc::new(ub.items.clone());
                let mut g = Graph::new();

                let logits = self.model.rating_logits_indexed(&mut g, &b_users, &b_items);
                let pred = g.sigmoid(logits);
                let y = g.constant(Tensor::col_vec(&b.ratings));
                let err = g.squared_error(pred, y);
                let w = g.constant(Tensor::col_vec(&inv_p));
                let debias_loss = match (&self.variant, &r_tilde_obs) {
                    (DtVariant::Ips, _) | (DtVariant::Dr, None) => g.weighted_mean(w, err),
                    (DtVariant::Dr, Some(rt)) => {
                        let rtv = g.constant(Tensor::col_vec(rt));
                        let e_hat_obs = g.squared_error(pred, rtv);
                        let diff = g.sub(err, e_hat_obs);
                        let corr0 = g.weighted_mean(w, diff);
                        let corr = g.mul_scalar(corr0, density);
                        // Base term: imputed error over the uniform sample,
                        // live in the rating head.
                        let logits_u = self
                            .model
                            .rating_logits_indexed(&mut g, &ub_users, &ub_items);
                        let pred_u = g.sigmoid(logits_u);
                        let rt_u = g.constant(Tensor::col_vec(
                            r_tilde_unif.as_ref().expect("Dr variant has pseudo-labels"),
                        ));
                        let e_hat_unif = g.squared_error(pred_u, rt_u);
                        let base = g.mean(e_hat_unif);
                        g.add(base, corr)
                    }
                };

                // Propensity loss over the entire space (Monte Carlo).
                let prop_logits = self
                    .model
                    .propensity_logits_indexed(&mut g, &ub_users, &ub_items);
                let o_labels = g.constant(Tensor::col_vec(&ub.observed));
                let prop_loss = g.bce_mean(prop_logits, o_labels);

                let mut loss = {
                    let weighted = g.mul_scalar(prop_loss, h.alpha);
                    g.add(debias_loss, weighted)
                };
                if self.use_disentangle {
                    let dis = self.model.disentangle_loss(&mut g);
                    let dis_w = g.mul_scalar(dis, h.beta);
                    loss = g.add(loss, dis_w);
                }
                if self.use_regularization {
                    let reg = self.model.regularization_loss(&mut g);
                    let reg_w = g.mul_scalar(reg, h.gamma);
                    loss = g.add(loss, reg_w);
                }

                epoch_loss += g.item(loss);
                n += 1;
                g.backward(loss, &mut self.model.params);
                drop(g); // release the tape's table Rcs so the step mutates in place
                opt.step(&mut self.model.params);
                self.model.params.zero_grad();

                // ---- imputation pass (DT-DR): train r̃ so the implied
                //      error (r̂ − r̃)² matches the realized error ----------
                if let Some(imp) = &mut self.imputation {
                    let preds = self.model.predict_rating_batch(&b.users, &b.items);
                    let e_vals: Vec<f64> = preds
                        .iter()
                        .zip(&b.ratings)
                        .map(|(p, r)| (p - r) * (p - r))
                        .collect();
                    let mut gi = Graph::new();
                    let imp_logits = imp.logits_indexed(&mut gi, &b_users, &b_items);
                    let rt = gi.sigmoid(imp_logits);
                    let rhat = gi.constant(Tensor::col_vec(&preds));
                    let e_imp = gi.squared_error(rhat, rt);
                    let ev = gi.constant(Tensor::col_vec(&e_vals));
                    let diff_sq = gi.squared_error(e_imp, ev);
                    let wv = gi.constant(Tensor::col_vec(&inv_p));
                    let imp_loss = gi.weighted_mean(wv, diff_sq);
                    gi.backward(imp_loss, &mut imp.params);
                    drop(gi); // release the tape's table Rcs so the step mutates in place
                    opt_imp.step(&mut imp.params);
                    imp.params.zero_grad();
                }
            }
            trace.push(epoch_loss / n.max(1) as f64);
            aux.push(self.model.disentangle_scale());
        }
        FitReport {
            epochs_run: self.cfg.epochs,
            final_loss: *trace.last().unwrap_or(&f64::NAN),
            loss_trace: trace,
            aux_trace: aux,
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.model.predict_rating_pairs(pairs)
    }

    fn n_parameters(&self) -> usize {
        // Table II: DT-IPS's prediction embedding is *contained* in the
        // propensity embedding (1×); DT-DR adds the imputation model (2×).
        self.model.n_parameters() + self.imputation.as_ref().map_or(0, MfModel::n_parameters)
    }

    fn scoring_index(&self) -> Option<dt_serve::ScoringIndex> {
        Some(self.model.rating_scoring_index())
    }

    fn name(&self) -> &'static str {
        match self.variant {
            DtVariant::Ips => "DT-IPS",
            DtVariant::Dr => "DT-DR",
        }
    }

    fn propensity(&self, user: usize, item: usize) -> Option<f64> {
        Some(self.model.predict_propensity(user, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    fn dataset() -> Dataset {
        mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 40,
                n_items: 50,
                target_density: 0.15,
                rating_effect: 2.0,
                seed: 14,
                ..MechanismConfig::default()
            },
        )
    }

    #[test]
    fn both_variants_train_to_finite_loss() {
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        for variant in [DtVariant::Ips, DtVariant::Dr] {
            let mut m = DtRecommender::new(&ds, &cfg, variant, 0);
            let mut rng = StdRng::seed_from_u64(1);
            let rep = m.fit(&ds, &mut rng);
            assert!(rep.final_loss.is_finite());
            assert_eq!(rep.aux_trace.len(), 4, "disentangle trace per epoch");
            let preds = m.predict(&[(0, 0), (1, 1)]);
            assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
            assert!(m.propensity(0, 0).unwrap() > 0.0);
        }
    }

    #[test]
    fn disentangle_loss_weight_controls_the_scale() {
        // With the other losses pulling the embeddings around, the scale
        // need not fall monotonically — but a larger β must end at a
        // (much) smaller scale than β disabled, which is the paper's
        // Figure 4(c,d) claim.
        let ds = dataset();
        let run = |beta_on: bool| {
            let cfg = TrainConfig {
                epochs: 12,
                batch_size: 128,
                hyper: crate::Hyper {
                    beta: 1e-1,
                    ..crate::Hyper::default()
                },
                ..TrainConfig::default()
            };
            let mut m = DtRecommender::new(&ds, &cfg, DtVariant::Ips, 0);
            if !beta_on {
                m = m.without_disentangle();
            }
            let mut rng = StdRng::seed_from_u64(1);
            let rep = m.fit(&ds, &mut rng);
            rep.aux_trace.last().copied().unwrap()
        };
        let with_beta = run(true);
        let without_beta = run(false);
        assert!(
            with_beta < 0.5 * without_beta,
            "β should shrink the disentangle scale: {with_beta} vs {without_beta}"
        );
    }

    #[test]
    fn ablation_switches_change_the_objective() {
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let mut full = DtRecommender::new(&ds, &cfg, DtVariant::Ips, 0);
        let mut bare = DtRecommender::new(&ds, &cfg, DtVariant::Ips, 0)
            .without_disentangle()
            .without_regularization();
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let r_full = full.fit(&ds, &mut rng1);
        let r_bare = bare.fit(&ds, &mut rng2);
        assert_ne!(r_full.final_loss, r_bare.final_loss);
    }

    #[test]
    fn dt_dr_has_roughly_double_the_embeddings() {
        let ds = dataset();
        let cfg = TrainConfig::default();
        let ips = DtRecommender::new(&ds, &cfg, DtVariant::Ips, 0);
        let dr = DtRecommender::new(&ds, &cfg, DtVariant::Dr, 0);
        let ratio = dr.n_parameters() as f64 / ips.n_parameters() as f64;
        assert!(ratio > 1.7 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn propensity_head_tracks_mnar_signal() {
        // After training, the head's propensity at observed (mostly
        // positive) pairs should exceed its propensity at random pairs —
        // the MNAR signature the MAR propensity cannot express.
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 128,
            ..TrainConfig::default()
        };
        let mut m = DtRecommender::new(&ds, &cfg, DtVariant::Ips, 0);
        let mut rng = StdRng::seed_from_u64(1);
        m.fit(&ds, &mut rng);
        let obs_mean: f64 = ds
            .train
            .interactions()
            .iter()
            .take(400)
            .map(|it| m.propensity(it.user as usize, it.item as usize).unwrap())
            .sum::<f64>()
            / 400.0;
        let mut rand_mean = 0.0;
        for k in 0..400 {
            rand_mean += m.propensity(k % ds.n_users, (7 * k) % ds.n_items).unwrap();
        }
        rand_mean /= 400.0;
        assert!(
            obs_mean > rand_mean,
            "observed-pair propensity {obs_mean} vs random {rand_mean}"
        );
    }
}
