//! Shared-embedding multi-task baselines: Multi-IPS, Multi-DR (Zhang et
//! al. 2020), ESMM (Ma et al. 2018) and ESCM²-IPS/DR (Wang et al. 2022).
//!
//! All five share one [`TowerModel`]: a CTR tower models the observation
//! probability over the entire space, a CVR tower models the rating, and
//! the DR members add an imputation tower. They differ in which losses are
//! combined:
//!
//! * **ESMM** — entire-space supervision only: `BCE(o; pCTR)` +
//!   `BCE(o·r; pCTR·pCVR)`.
//! * **Multi-IPS / Multi-DR** — the CVR tower is trained with the IPS
//!   (resp. DR) counterfactual risk, using the CTR tower's (detached)
//!   propensities; the CTR tower with `BCE(o)`.
//! * **ESCM²-IPS / ESCM²-DR** — ESMM's entire-space losses *plus* the
//!   λ-weighted IPS (resp. DR) risk as a counterfactual regulariser.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_autograd::{Graph, Var};
use dt_data::{BatchIter, Dataset};
use dt_models::{TowerConfig, TowerModel};
use dt_optim::{Adam, Optimizer};
use dt_tensor::Tensor;

use crate::config::TrainConfig;
use crate::methods::common::{uniform_batch, Batch};
use crate::recommender::{FitReport, Recommender};

/// Which multi-task objective to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiTaskVariant {
    /// Multi-task IPS.
    MultiIps,
    /// Multi-task DR.
    MultiDr,
    /// Entire-space multi-task model (no reweighting).
    Esmm,
    /// ESMM + IPS counterfactual regulariser.
    Escm2Ips,
    /// ESMM + DR counterfactual regulariser.
    Escm2Dr,
}

impl MultiTaskVariant {
    fn uses_dr(self) -> bool {
        matches!(self, MultiTaskVariant::MultiDr | MultiTaskVariant::Escm2Dr)
    }

    fn uses_entire_space_losses(self) -> bool {
        matches!(
            self,
            MultiTaskVariant::Esmm | MultiTaskVariant::Escm2Ips | MultiTaskVariant::Escm2Dr
        )
    }

    fn uses_counterfactual_risk(self) -> bool {
        !matches!(self, MultiTaskVariant::Esmm)
    }

    fn display_name(self) -> &'static str {
        match self {
            MultiTaskVariant::MultiIps => "Multi-IPS",
            MultiTaskVariant::MultiDr => "Multi-DR",
            MultiTaskVariant::Esmm => "ESMM",
            MultiTaskVariant::Escm2Ips => "ESCM2-IPS",
            MultiTaskVariant::Escm2Dr => "ESCM2-DR",
        }
    }
}

/// The shared-embedding multi-task trainer.
pub struct MultiTaskRecommender {
    model: TowerModel,
    cfg: TrainConfig,
    variant: MultiTaskVariant,
}

impl MultiTaskRecommender {
    /// A fresh model of the requested variant.
    #[must_use]
    pub fn new(ds: &Dataset, cfg: &TrainConfig, variant: MultiTaskVariant, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = TowerModel::new(
            ds.n_users,
            ds.n_items,
            &TowerConfig {
                emb_dim: cfg.emb_dim,
                hidden: 2 * cfg.emb_dim,
                with_imputation: variant.uses_dr(),
            },
            &mut rng,
        );
        Self {
            model,
            cfg: *cfg,
            variant,
        }
    }

    /// Clipped, detached inverse propensities from the CTR tower.
    fn inv_propensities(&self, g: &mut Graph, ctr_logits: Var, clip: f64) -> Var {
        let p = g.sigmoid(ctr_logits);
        let p_det = g.detach(p);
        g.clipped_inverse(p_det, clip)
    }
}

impl Recommender for MultiTaskRecommender {
    #[allow(clippy::too_many_lines)]
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport {
        let start = Instant::now(); // lint: allow(r4): epoch wall-time telemetry only; never feeds the numerics
        let observed_set = ds.train.pair_set();
        let density = ds.train.density();
        let mut opt = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut trace = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for raw in BatchIter::new(&ds.train, self.cfg.batch_size, rng) {
                let b = Batch::from_interactions(&raw);
                let ub = uniform_batch(ds, b.len(), &observed_set, rng);
                let mut g = Graph::new();

                // --- entire-space CTR supervision (all variants) ----------
                let ctr_unif = self.model.ctr_logits(&mut g, &ub.users, &ub.items);
                let o_labels = g.constant(Tensor::col_vec(&ub.observed));
                let ctr_loss = g.bce_mean(ctr_unif, o_labels);
                let mut loss = ctr_loss;

                if self.variant.uses_entire_space_losses() {
                    // CTCVR over the entire space: P(o)·P(r) vs o·r. The
                    // uniform batch's o·r label is o·r with r unknown when
                    // o = 0 — but then o·r = 0 regardless, so the label is
                    // well-defined; for observed pairs we need r, which the
                    // uniform batch does not carry. Use the observed batch
                    // (o = 1, label r) plus the unobserved part of the
                    // uniform batch (label 0), mirroring the standard ESMM
                    // sampling.
                    let ctr_obs = self.model.ctr_logits(&mut g, &b.users, &b.items);
                    let cvr_obs = self.model.cvr_logits(&mut g, &b.users, &b.items);
                    let p_ctr = g.sigmoid(ctr_obs);
                    let p_cvr = g.sigmoid(cvr_obs);
                    let p_ctcvr = g.mul(p_ctr, p_cvr);
                    let pc = g.clamp(p_ctcvr, 1e-7, 1.0 - 1e-7);
                    // BCE with probability inputs: −[y ln p + (1−y) ln(1−p)].
                    let y = g.constant(Tensor::col_vec(&b.ratings));
                    let lnp = g.ln(pc);
                    let t1 = g.mul(y, lnp);
                    let ones = g.constant(Tensor::ones(b.len(), 1));
                    let om_y = g.sub(ones, y);
                    let om_p = {
                        let ones2 = g.constant(Tensor::ones(b.len(), 1));
                        g.sub(ones2, pc)
                    };
                    let ln_omp = g.ln(om_p);
                    let t2 = g.mul(om_y, ln_omp);
                    let s = g.add(t1, t2);
                    let m = g.mean(s);
                    let ctcvr_obs_loss = g.neg(m);
                    // Unobserved sampled pairs: label 0 → −ln(1 − pCTR·pCVR).
                    let ctr_u2 = self.model.ctr_logits(&mut g, &ub.users, &ub.items);
                    let cvr_u2 = self.model.cvr_logits(&mut g, &ub.users, &ub.items);
                    let pu = g.sigmoid(ctr_u2);
                    let pv = g.sigmoid(cvr_u2);
                    let puv = g.mul(pu, pv);
                    let puv_c = g.clamp(puv, 1e-7, 1.0 - 1e-7);
                    let onesu = g.constant(Tensor::ones(ub.users.len(), 1));
                    let anti = g.sub(onesu, puv_c);
                    let ln_anti = g.ln(anti);
                    let mask = g.constant(Tensor::col_vec(
                        &ub.observed.iter().map(|&o| 1.0 - o).collect::<Vec<f64>>(),
                    ));
                    let masked = g.mul(mask, ln_anti);
                    let mm = g.mean(masked);
                    let ctcvr_miss_loss = g.neg(mm);
                    let es1 = g.mul_scalar(ctcvr_obs_loss, density);
                    let es = g.add(es1, ctcvr_miss_loss);
                    loss = g.add(loss, es);
                }

                if self.variant.uses_counterfactual_risk() {
                    // IPS or DR risk on the CVR tower with detached CTR
                    // propensities.
                    let ctr_obs = self.model.ctr_logits(&mut g, &b.users, &b.items);
                    let inv_p = self.inv_propensities(&mut g, ctr_obs, self.cfg.prop_clip);
                    let cvr_obs = self.model.cvr_logits(&mut g, &b.users, &b.items);
                    let pred = g.sigmoid(cvr_obs);
                    let y = g.constant(Tensor::col_vec(&b.ratings));
                    let err = g.squared_error(pred, y);
                    let risk = if self.variant.uses_dr() {
                        // The imputation tower produces pseudo-labels r̃;
                        // the imputed error ê = (r̂ − r̃)² is live in the
                        // CVR tower (that is the DR supervision channel for
                        // the unobserved space).
                        let imp_obs = self.model.imputation_out(&mut g, &b.users, &b.items);
                        let rt_obs0 = g.sigmoid(imp_obs);
                        let rt_obs = g.detach(rt_obs0);
                        let e_hat_obs = g.squared_error(pred, rt_obs);
                        let diff = g.sub(err, e_hat_obs);
                        let corr0 = g.weighted_mean(inv_p, diff);
                        let corr = g.mul_scalar(corr0, density);
                        let cvr_unif = self.model.cvr_logits(&mut g, &ub.users, &ub.items);
                        let pred_unif = g.sigmoid(cvr_unif);
                        let imp_unif = self.model.imputation_out(&mut g, &ub.users, &ub.items);
                        let rt_unif0 = g.sigmoid(imp_unif);
                        let rt_unif = g.detach(rt_unif0);
                        let e_hat_unif = g.squared_error(pred_unif, rt_unif);
                        let base = g.mean(e_hat_unif);
                        let dr = g.add(base, corr);
                        // Imputation tower's own loss: the implied error
                        // (r̂_det − r̃)² should match the realized error.
                        let e_det = g.detach(err);
                        let pred_det = g.detach(pred);
                        let imp_obs2 = self.model.imputation_out(&mut g, &b.users, &b.items);
                        let rt_live = g.sigmoid(imp_obs2);
                        let e_imp = g.squared_error(pred_det, rt_live);
                        let imp_err = g.squared_error(e_imp, e_det);
                        let imp_loss = g.weighted_mean(inv_p, imp_err);
                        g.add(dr, imp_loss)
                    } else {
                        g.weighted_mean(inv_p, err)
                    };
                    let weighted = g.mul_scalar(risk, self.cfg.hyper.lambda);
                    loss = g.add(loss, weighted);
                }

                epoch_loss += g.item(loss);
                n += 1;
                g.backward(loss, &mut self.model.params);
                drop(g); // release the tape's table Rcs so the step mutates in place
                opt.step(&mut self.model.params);
                self.model.params.zero_grad();
            }
            trace.push(epoch_loss / n.max(1) as f64);
        }
        FitReport {
            epochs_run: self.cfg.epochs,
            final_loss: *trace.last().unwrap_or(&f64::NAN),
            loss_trace: trace,
            aux_trace: Vec::new(),
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.model.predict_cvr(pairs)
    }

    fn n_parameters(&self) -> usize {
        self.model.n_parameters()
    }

    fn name(&self) -> &'static str {
        self.variant.display_name()
    }

    fn propensity(&self, user: usize, item: usize) -> Option<f64> {
        Some(self.model.predict_ctr(&[(user, item)])[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    fn dataset() -> Dataset {
        mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 40,
                n_items: 50,
                target_density: 0.15,
                seed: 12,
                ..MechanismConfig::default()
            },
        )
    }

    #[test]
    fn every_variant_trains_to_finite_loss() {
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        for variant in [
            MultiTaskVariant::MultiIps,
            MultiTaskVariant::MultiDr,
            MultiTaskVariant::Esmm,
            MultiTaskVariant::Escm2Ips,
            MultiTaskVariant::Escm2Dr,
        ] {
            let mut m = MultiTaskRecommender::new(&ds, &cfg, variant, 0);
            let mut rng = StdRng::seed_from_u64(1);
            let rep = m.fit(&ds, &mut rng);
            assert!(
                rep.final_loss.is_finite(),
                "{}: {:?}",
                variant.display_name(),
                rep.loss_trace
            );
            let preds = m.predict(&[(0, 0), (3, 4)]);
            assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
            assert!(m.propensity(0, 0).unwrap() > 0.0);
        }
    }

    #[test]
    fn shared_embeddings_keep_parameter_counts_equal() {
        // Table II: Multi-IPS, ESCM²-IPS and ESMM share the 1× embedding
        // cost; the DR members add only the imputation tower.
        let ds = dataset();
        let cfg = TrainConfig::default();
        let esmm = MultiTaskRecommender::new(&ds, &cfg, MultiTaskVariant::Esmm, 0);
        let mips = MultiTaskRecommender::new(&ds, &cfg, MultiTaskVariant::MultiIps, 0);
        let escm_ips = MultiTaskRecommender::new(&ds, &cfg, MultiTaskVariant::Escm2Ips, 0);
        let mdr = MultiTaskRecommender::new(&ds, &cfg, MultiTaskVariant::MultiDr, 0);
        assert_eq!(esmm.n_parameters(), mips.n_parameters());
        assert_eq!(esmm.n_parameters(), escm_ips.n_parameters());
        assert!(mdr.n_parameters() > esmm.n_parameters());
        let tower_cost = mdr.n_parameters() - esmm.n_parameters();
        assert!(tower_cost < esmm.n_parameters() / 2, "only one extra tower");
    }

    #[test]
    fn ctr_tower_learns_the_observation_rate() {
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 128,
            ..TrainConfig::default()
        };
        let mut m = MultiTaskRecommender::new(&ds, &cfg, MultiTaskVariant::Esmm, 0);
        let mut rng = StdRng::seed_from_u64(1);
        m.fit(&ds, &mut rng);
        // Mean predicted CTR should be near the dataset density.
        let mut pairs = Vec::new();
        for u in (0..ds.n_users).step_by(3) {
            for i in (0..ds.n_items).step_by(5) {
                pairs.push((u, i));
            }
        }
        let mean_ctr: f64 = m.model.predict_ctr(&pairs).iter().sum::<f64>() / pairs.len() as f64;
        assert!(
            (mean_ctr - ds.train.density()).abs() < 0.1,
            "mean CTR {mean_ctr} vs density {}",
            ds.train.density()
        );
    }
}
