//! Shared training-loop plumbing.

use rand::rngs::StdRng;

use dt_data::{uniform_pairs, Dataset, Interaction, PairSet};
use dt_models::propensity::LogisticMfPropensity;

use crate::config::TrainConfig;

/// A mini-batch of observed interactions in parallel-array form.
pub struct Batch {
    /// User indices.
    pub users: Vec<usize>,
    /// Item indices.
    pub items: Vec<usize>,
    /// Binary ratings.
    pub ratings: Vec<f64>,
}

impl Batch {
    /// Converts an interaction slice.
    #[must_use]
    pub fn from_interactions(batch: &[Interaction]) -> Self {
        Self {
            users: batch.iter().map(|it| it.user as usize).collect(),
            items: batch.iter().map(|it| it.item as usize).collect(),
            ratings: batch.iter().map(|it| it.rating).collect(),
        }
    }

    /// Batch size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Returns `true` for an empty batch.
    #[must_use]
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

/// A uniform sample from the full space `D` with observation labels —
/// the Monte-Carlo estimate of every "entire-space" loss term.
pub struct UniformBatch {
    /// User indices.
    pub users: Vec<usize>,
    /// Item indices.
    pub items: Vec<usize>,
    /// Observation indicators `o ∈ {0,1}`.
    pub observed: Vec<f64>,
}

/// Draws a uniform full-space batch labelled against the observed set.
#[must_use]
pub fn uniform_batch(ds: &Dataset, n: usize, observed: &PairSet, rng: &mut StdRng) -> UniformBatch {
    let pairs = uniform_pairs(ds.n_users, ds.n_items, n, rng);
    UniformBatch {
        users: pairs.iter().map(|p| p.user as usize).collect(),
        items: pairs.iter().map(|p| p.item as usize).collect(),
        observed: pairs
            .iter()
            .map(|p| f64::from(observed.contains(p.user, p.item)))
            .collect(),
    }
}

/// Stage-one propensity fit shared by the two-stage methods (IPS, DR
/// family): a logistic MF on the observation indicators, with a budget
/// derived from the training config.
#[must_use]
pub fn fit_mar_propensity(
    ds: &Dataset,
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> LogisticMfPropensity {
    let dim = (cfg.emb_dim / 2).max(2);
    LogisticMfPropensity::fit(ds, dim, cfg.epochs.max(10), cfg.lr, cfg.prop_clip, rng)
}

/// Clipped inverse propensities for an observed batch, as plain values
/// (propensities are always detached in the debiasing losses).
#[must_use]
pub fn inverse_propensities(prop: &LogisticMfPropensity, batch: &Batch, clip: f64) -> Vec<f64> {
    batch
        .users
        .iter()
        .zip(&batch.items)
        .map(|(&u, &i)| 1.0 / prop.predict(u, i).max(clip))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
    use rand::SeedableRng;

    #[test]
    fn batch_conversion() {
        let b =
            Batch::from_interactions(&[Interaction::new(1, 2, 1.0), Interaction::new(3, 4, 0.0)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.users, vec![1, 3]);
        assert_eq!(b.items, vec![2, 4]);
        assert_eq!(b.ratings, vec![1.0, 0.0]);
    }

    #[test]
    fn uniform_batch_labels_match_set() {
        let ds = mechanism_dataset(
            Mechanism::Mcar,
            &MechanismConfig {
                n_users: 30,
                n_items: 40,
                target_density: 0.2,
                seed: 1,
                ..MechanismConfig::default()
            },
        );
        let set = ds.train.pair_set();
        let mut rng = StdRng::seed_from_u64(2);
        let ub = uniform_batch(&ds, 500, &set, &mut rng);
        for k in 0..ub.users.len() {
            let expected = f64::from(set.contains(ub.users[k] as u32, ub.items[k] as u32));
            assert_eq!(ub.observed[k], expected);
        }
        // Label rate near the dataset density.
        let rate = ub.observed.iter().sum::<f64>() / 500.0;
        assert!((rate - ds.train.density()).abs() < 0.1);
    }
}
