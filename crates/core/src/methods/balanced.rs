//! IPS-V2 / DR-V2 (Li et al., ICML 2023): balancing-enhanced propensities.
//!
//! The propensity model is trained with an additional *balancing*
//! regulariser: a correct inverse propensity transports the observed
//! feature distribution onto the full population, so the squared gap
//! between the inverse-propensity-weighted observed embedding mean and the
//! full-space embedding mean is pushed to zero. DR-V2 adds a learned
//! imputation model on top.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_autograd::Graph;
use dt_data::{BatchIter, Dataset};
use dt_models::MfModel;
use dt_optim::{Adam, Optimizer};
use dt_tensor::Tensor;

use crate::config::TrainConfig;
use crate::methods::common::{uniform_batch, Batch};
use crate::recommender::{FitReport, Recommender};

/// IPS-V2 or DR-V2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancedVariant {
    /// Balancing-enhanced IPS.
    IpsV2,
    /// Balancing-enhanced DR.
    DrV2,
}

/// The balanced-propensity trainer.
pub struct BalancedRecommender {
    model: MfModel,
    prop_model: MfModel,
    imputation: Option<MfModel>,
    cfg: TrainConfig,
    variant: BalancedVariant,
}

impl BalancedRecommender {
    /// A fresh model.
    #[must_use]
    pub fn new(ds: &Dataset, cfg: &TrainConfig, variant: BalancedVariant, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MfModel::new(ds.n_users, ds.n_items, cfg.emb_dim, &mut rng);
        let prop_model = MfModel::new(ds.n_users, ds.n_items, (cfg.emb_dim / 2).max(2), &mut rng);
        let imputation = (variant == BalancedVariant::DrV2)
            .then(|| MfModel::new(ds.n_users, ds.n_items, cfg.emb_dim, &mut rng));
        Self {
            model,
            prop_model,
            imputation,
            cfg: *cfg,
            variant,
        }
    }

    fn clipped_prop(&self, user: usize, item: usize) -> f64 {
        dt_stats::expit(self.prop_model.score(user, item)).max(self.cfg.prop_clip)
    }
}

impl Recommender for BalancedRecommender {
    #[allow(clippy::too_many_lines)]
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport {
        let start = Instant::now(); // lint: allow(r4): epoch wall-time telemetry only; never feeds the numerics
        let observed_set = ds.train.pair_set();
        let density = ds.train.density();
        let lambda = self.cfg.hyper.lambda;

        let mut opt_prop = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut opt_pred = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut opt_imp = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut trace = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for raw in BatchIter::new(&ds.train, self.cfg.batch_size, rng) {
                let b = Batch::from_interactions(&raw);
                let ub = uniform_batch(ds, b.len(), &observed_set, rng);

                // --- propensity step: BCE over D̂ + balancing term --------
                {
                    let mut g = Graph::new();
                    let logits = self.prop_model.logits(&mut g, &ub.users, &ub.items);
                    let o = g.constant(Tensor::col_vec(&ub.observed));
                    let bce = g.bce_mean(logits, o);

                    // Balancing: prediction-model embeddings as the feature
                    // map φ(x) (detached constants here).
                    let phi_obs = {
                        let pairs: Vec<(usize, usize)> = b
                            .users
                            .iter()
                            .zip(&b.items)
                            .map(|(&u, &i)| (u, i))
                            .collect();
                        feature_map(&self.model, &pairs)
                    };
                    let phi_unif = {
                        let pairs: Vec<(usize, usize)> = ub
                            .users
                            .iter()
                            .zip(&ub.items)
                            .map(|(&u, &i)| (u, i))
                            .collect();
                        feature_map(&self.model, &pairs)
                    };
                    let obs_logits = self.prop_model.logits(&mut g, &b.users, &b.items);
                    let p = g.sigmoid(obs_logits);
                    let pc = g.clamp(p, self.cfg.prop_clip, 1.0);
                    let ones = g.constant(Tensor::ones(b.len(), 1));
                    let inv_p = g.div(ones, pc); // n×1, live in the propensity
                    let phi_o = g.constant(phi_obs);
                    // broadcast inv_p across feature columns
                    let cols = g.value(phi_o).cols();
                    let ones_row = g.constant(Tensor::ones(1, cols));
                    let inv_p_wide = g.matmul(inv_p, ones_row);
                    let weighted = g.mul(inv_p_wide, phi_o);
                    let obs_mean0 = g.col_sums(weighted);
                    let obs_mean1 = g.mul_scalar(obs_mean0, density / b.len() as f64);
                    let phi_u = g.constant(phi_unif);
                    let unif_mean0 = g.col_sums(phi_u);
                    let unif_mean = g.mul_scalar(unif_mean0, 1.0 / ub.users.len() as f64);
                    let gap = g.sub(obs_mean1, unif_mean);
                    let balance = g.frob_sq(gap);
                    let bw = g.mul_scalar(balance, lambda);
                    let prop_loss = g.add(bce, bw);
                    g.backward(prop_loss, &mut self.prop_model.params);
                    drop(g); // release the tape's table Rcs so the step mutates in place
                    opt_prop.step(&mut self.prop_model.params);
                    self.prop_model.params.zero_grad();
                }

                // --- prediction step (IPS or DR with the balanced p̂) -----
                let inv_p: Vec<f64> = b
                    .users
                    .iter()
                    .zip(&b.items)
                    .map(|(&u, &i)| 1.0 / self.clipped_prop(u, i))
                    .collect();
                // Pseudo-labels from the imputation model (DR-V2 only).
                let r_tilde: Option<Vec<f64>> = self
                    .imputation
                    .as_ref()
                    .map(|imp| imp.predict_batch(&b.users, &b.items));
                let r_tilde_unif: Option<Vec<f64>> = self
                    .imputation
                    .as_ref()
                    .map(|imp| imp.predict_batch(&ub.users, &ub.items));
                let e_vals: Vec<f64>;
                let pred_vals: Vec<f64>;
                {
                    let mut g = Graph::new();
                    let logits = self.model.logits(&mut g, &b.users, &b.items);
                    let pred = g.sigmoid(logits);
                    let y = g.constant(Tensor::col_vec(&b.ratings));
                    let err = g.squared_error(pred, y);
                    let w = g.constant(Tensor::col_vec(&inv_p));
                    let loss = match &r_tilde {
                        None => g.weighted_mean(w, err),
                        Some(rt) => {
                            // ê = (r̂ − r̃)², live in the prediction model.
                            let rtv = g.constant(Tensor::col_vec(rt));
                            let e_hat = g.squared_error(pred, rtv);
                            let diff = g.sub(err, e_hat);
                            let corr0 = g.weighted_mean(w, diff);
                            let corr = g.mul_scalar(corr0, density);
                            let logits_u = self.model.logits(&mut g, &ub.users, &ub.items);
                            let pred_u = g.sigmoid(logits_u);
                            let rt_u = g.constant(Tensor::col_vec(
                                r_tilde_unif.as_ref().expect("DR-V2 has pseudo-labels"),
                            ));
                            let e_hat_u = g.squared_error(pred_u, rt_u);
                            let base = g.mean(e_hat_u);
                            g.add(base, corr)
                        }
                    };
                    epoch_loss += g.item(loss);
                    n += 1;
                    e_vals = g.value(err).data().to_vec();
                    pred_vals = g.value(pred).data().to_vec();
                    g.backward(loss, &mut self.model.params);
                    drop(g); // release the tape's table Rcs so the step mutates in place
                    opt_pred.step(&mut self.model.params);
                    self.model.params.zero_grad();
                }

                // --- imputation step (DR-V2): train r̃ so the implied
                //     error (r̂ − r̃)² matches the realized error ----------
                if let Some(imp) = &mut self.imputation {
                    let mut g = Graph::new();
                    let logits = imp.logits(&mut g, &b.users, &b.items);
                    let rt = g.sigmoid(logits);
                    let rhat = g.constant(Tensor::col_vec(&pred_vals));
                    let e_imp = g.squared_error(rhat, rt);
                    let ev = g.constant(Tensor::col_vec(&e_vals));
                    let diff_sq = g.squared_error(e_imp, ev);
                    let w = g.constant(Tensor::col_vec(&inv_p));
                    let imp_loss = g.weighted_mean(w, diff_sq);
                    g.backward(imp_loss, &mut imp.params);
                    drop(g); // release the tape's table Rcs so the step mutates in place
                    opt_imp.step(&mut imp.params);
                    imp.params.zero_grad();
                }
            }
            trace.push(epoch_loss / n.max(1) as f64);
        }
        FitReport {
            epochs_run: self.cfg.epochs,
            final_loss: *trace.last().unwrap_or(&f64::NAN),
            loss_trace: trace,
            aux_trace: Vec::new(),
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.model.predict(pairs)
    }

    fn scoring_index(&self) -> Option<dt_serve::ScoringIndex> {
        Some(self.model.scoring_index())
    }

    fn n_parameters(&self) -> usize {
        self.model.n_parameters()
            + self.prop_model.n_parameters()
            + self.imputation.as_ref().map_or(0, MfModel::n_parameters)
    }

    fn name(&self) -> &'static str {
        match self.variant {
            BalancedVariant::IpsV2 => "IPS-V2",
            BalancedVariant::DrV2 => "DR-V2",
        }
    }

    fn propensity(&self, user: usize, item: usize) -> Option<f64> {
        Some(self.clipped_prop(user, item))
    }
}

/// The feature map φ(u, i): the prediction model's concatenated pair
/// embedding, as plain values.
fn feature_map(model: &MfModel, pairs: &[(usize, usize)]) -> Tensor {
    let preds = model.predict(pairs);
    // Use the model's predictions plus a constant as a low-dimensional
    // balancing feature: cheap, informative about x, and avoids reaching
    // into embedding internals.
    let mut t = Tensor::zeros(pairs.len(), 2);
    for (k, &p) in preds.iter().enumerate() {
        t.set(k, 0, 1.0);
        t.set(k, 1, p);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    #[test]
    fn both_variants_train_to_finite_loss() {
        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 40,
                n_items: 50,
                target_density: 0.15,
                seed: 18,
                ..MechanismConfig::default()
            },
        );
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        for variant in [BalancedVariant::IpsV2, BalancedVariant::DrV2] {
            let mut m = BalancedRecommender::new(&ds, &cfg, variant, 0);
            let mut rng = StdRng::seed_from_u64(1);
            let rep = m.fit(&ds, &mut rng);
            assert!(rep.final_loss.is_finite(), "{:?}", rep.loss_trace);
            assert!(m.propensity(0, 0).unwrap() >= cfg.prop_clip);
        }
    }

    #[test]
    fn balancing_keeps_weighted_mass_near_population() {
        // After training, density · mean_O[1/p̂] should be near 1 — the
        // balancing property.
        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 60,
                n_items: 70,
                target_density: 0.15,
                seed: 19,
                ..MechanismConfig::default()
            },
        );
        let cfg = TrainConfig {
            epochs: 8,
            hyper: crate::Hyper {
                lambda: 1.0,
                ..crate::Hyper::default()
            },
            ..TrainConfig::default()
        };
        let mut m = BalancedRecommender::new(&ds, &cfg, BalancedVariant::IpsV2, 0);
        let mut rng = StdRng::seed_from_u64(1);
        m.fit(&ds, &mut rng);
        let mean_inv: f64 = ds
            .train
            .interactions()
            .iter()
            .map(|it| 1.0 / m.clipped_prop(it.user as usize, it.item as usize))
            .sum::<f64>()
            / ds.train.len() as f64;
        let mass = ds.train.density() * mean_inv;
        assert!((mass - 1.0).abs() < 0.35, "weighted mass {mass}");
    }
}
