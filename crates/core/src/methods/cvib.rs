//! CVIB (Wang et al., NeurIPS 2020): information-theoretic counterfactual
//! learning without propensities.
//!
//! The loss combines the factual BCE on observed pairs with (i) a
//! *contrastive balancing* term that aligns the average prediction on the
//! unobserved (counterfactual) domain with the observed one, and (ii) a
//! *confidence penalty* that rewards predictive entropy. We implement the
//! published objective's structure:
//!
//! ```text
//! L = BCE_O(r̂) + α·[ −p̄_O·ln p̄_miss − (1 − p̄_O)·ln(1 − p̄_miss) ] − γ·H(r̂)
//! ```
//!
//! where `p̄_O` / `p̄_miss` are mean predictions over the observed batch
//! and a sampled unobserved batch, and `H` is the mean binary entropy over
//! both.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_autograd::Graph;
use dt_data::{BatchIter, Dataset};
use dt_models::MfModel;
use dt_optim::{Adam, Optimizer};
use dt_tensor::Tensor;

use crate::config::TrainConfig;
use crate::methods::common::{uniform_batch, Batch};
use crate::recommender::{FitReport, Recommender};

/// The CVIB trainer.
pub struct CvibRecommender {
    model: MfModel,
    cfg: TrainConfig,
}

impl CvibRecommender {
    /// A fresh model.
    #[must_use]
    pub fn new(ds: &Dataset, cfg: &TrainConfig, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            model: MfModel::new(ds.n_users, ds.n_items, cfg.emb_dim, &mut rng),
            cfg: *cfg,
        }
    }
}

impl Recommender for CvibRecommender {
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport {
        let start = Instant::now(); // lint: allow(r4): epoch wall-time telemetry only; never feeds the numerics
        let observed_set = ds.train.pair_set();
        let h = self.cfg.hyper;
        let mut opt = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut trace = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for raw in BatchIter::new(&ds.train, self.cfg.batch_size, rng) {
                let b = Batch::from_interactions(&raw);
                let ub = uniform_batch(ds, b.len(), &observed_set, rng);
                let mut g = Graph::new();

                // Factual loss.
                let logits = self.model.logits(&mut g, &b.users, &b.items);
                let y = g.constant(Tensor::col_vec(&b.ratings));
                let factual = g.bce_mean(logits, y);

                // Contrastive balancing between domains.
                let pred_obs0 = g.sigmoid(logits);
                let pred_obs = g.mean(pred_obs0);
                let miss_logits = self.model.logits(&mut g, &ub.users, &ub.items);
                let pred_miss0 = g.sigmoid(miss_logits);
                let pred_miss1 = g.mean(pred_miss0);
                let pred_miss = g.clamp(pred_miss1, 1e-6, 1.0 - 1e-6);
                let ln_miss = g.ln(pred_miss);
                let t1 = g.mul(pred_obs, ln_miss);
                let one = g.scalar(1.0);
                let om_obs = g.sub(one, pred_obs);
                let om_miss = {
                    let one2 = g.scalar(1.0);
                    g.sub(one2, pred_miss)
                };
                let ln_om = g.ln(om_miss);
                let t2 = g.mul(om_obs, ln_om);
                let s = g.add(t1, t2);
                let contrastive = g.neg(s);

                // Confidence penalty: reward entropy on both domains.
                let probs_all = {
                    let p1 = g.sigmoid(logits);
                    let p2 = g.sigmoid(miss_logits);
                    // both are n×1; stack as one row vector
                    let r1 = g.transpose(p1);
                    let r2 = g.transpose(p2);
                    g.concat_cols(r1, r2)
                };
                let entropy = g.entropy_penalty(probs_all);

                let cw = g.mul_scalar(contrastive, h.alpha);
                let ew = g.mul_scalar(entropy, -h.gamma);
                let l1 = g.add(factual, cw);
                let loss = g.add(l1, ew);

                epoch_loss += g.item(loss);
                n += 1;
                g.backward(loss, &mut self.model.params);
                drop(g); // release the tape's table Rcs so the step mutates in place
                opt.step(&mut self.model.params);
                self.model.params.zero_grad();
            }
            trace.push(epoch_loss / n.max(1) as f64);
        }
        FitReport {
            epochs_run: self.cfg.epochs,
            final_loss: *trace.last().unwrap_or(&f64::NAN),
            loss_trace: trace,
            aux_trace: Vec::new(),
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.model.predict(pairs)
    }

    fn scoring_index(&self) -> Option<dt_serve::ScoringIndex> {
        Some(self.model.scoring_index())
    }

    fn n_parameters(&self) -> usize {
        self.model.n_parameters()
    }

    fn name(&self) -> &'static str {
        "CVIB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    #[test]
    fn trains_and_balances_domains() {
        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 40,
                n_items: 50,
                target_density: 0.15,
                seed: 15,
                ..MechanismConfig::default()
            },
        );
        let cfg = TrainConfig {
            epochs: 6,
            hyper: crate::Hyper {
                alpha: 0.5,
                gamma: 0.01,
                ..crate::Hyper::default()
            },
            ..TrainConfig::default()
        };
        let mut m = CvibRecommender::new(&ds, &cfg, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let rep = m.fit(&ds, &mut rng);
        assert!(rep.final_loss.is_finite());
        // With the balancing term, the observed/unobserved mean-prediction
        // gap should stay moderate despite MNAR training data.
        let obs_mean: f64 = ds
            .train
            .interactions()
            .iter()
            .take(300)
            .map(|it| m.predict(&[(it.user as usize, it.item as usize)])[0])
            .sum::<f64>()
            / 300.0;
        let mut unif_mean = 0.0;
        for k in 0..300 {
            unif_mean += m.predict(&[(k % ds.n_users, (13 * k) % ds.n_items)])[0];
        }
        unif_mean /= 300.0;
        assert!(
            (obs_mean - unif_mean).abs() < 0.45,
            "domain gap {obs_mean} vs {unif_mean}"
        );
    }
}
