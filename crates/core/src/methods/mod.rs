//! The training methods (one module per family).

mod balanced;
mod common;
mod cvib;
mod dib;
mod dr_family;
mod dt;
mod ips;
mod mf;
mod mr;
mod multitask;

pub use balanced::{BalancedRecommender, BalancedVariant};
pub use common::fit_mar_propensity;
pub use cvib::CvibRecommender;
pub use dib::DibRecommender;
pub use dr_family::{DrRecommender, DrVariant};
pub use dt::{DtRecommender, DtVariant};
pub use ips::IpsRecommender;
pub use mf::MfRecommender;
pub use mr::MrRecommender;
pub use multitask::{MultiTaskRecommender, MultiTaskVariant};
