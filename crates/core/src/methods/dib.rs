//! DIB (Liu et al., RecSys 2021): debiased information bottleneck.
//!
//! Embeddings are split into an *unbiased* and a *biased* component. Both
//! drive the training-time prediction (their logits add), but only the
//! unbiased component is used at test time — the biased block soaks up
//! exposure-driven signal. An orthogonality penalty keeps the components
//! independent, and a secondary loss makes the unbiased part predictive on
//! its own. Structurally this is the closest published relative of the
//! paper's DT method (which the paper also notes), differing in *where*
//! the auxiliary block is consumed: DIB discards it at test time, DT feeds
//! it to a propensity head.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_autograd::Graph;
use dt_data::{BatchIter, Dataset};
use dt_models::{DisentangledConfig, DisentangledMf};
use dt_optim::{Adam, Optimizer};
use dt_tensor::Tensor;

use crate::config::TrainConfig;
use crate::methods::common::Batch;
use crate::recommender::{FitReport, Recommender};

/// The DIB trainer. Reuses [`DisentangledMf`]: the "primary" block is the
/// unbiased component (rating head), the full embedding is the biased
/// training-time predictor (propensity head doubling as the full-logit
/// head).
pub struct DibRecommender {
    model: DisentangledMf,
    cfg: TrainConfig,
}

impl DibRecommender {
    /// A fresh model.
    #[must_use]
    pub fn new(ds: &Dataset, cfg: &TrainConfig, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            model: DisentangledMf::new(
                ds.n_users,
                ds.n_items,
                &DisentangledConfig {
                    total_dim: cfg.emb_dim,
                    primary_dim: cfg.primary_dim(),
                    init_scale: 0.1,
                },
                &mut rng,
            ),
            cfg: *cfg,
        }
    }
}

impl Recommender for DibRecommender {
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport {
        let start = Instant::now(); // lint: allow(r4): epoch wall-time telemetry only; never feeds the numerics
        let h = self.cfg.hyper;
        let mut opt = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut trace = Vec::with_capacity(self.cfg.epochs);
        let mut aux = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for raw in BatchIter::new(&ds.train, self.cfg.batch_size, rng) {
                let b = Batch::from_interactions(&raw);
                let mut g = Graph::new();

                // Training-time prediction uses the full embedding.
                let full_logits = self.model.propensity_logits(&mut g, &b.users, &b.items);
                let y = g.constant(Tensor::col_vec(&b.ratings));
                let full_loss = g.bce_mean(full_logits, y);

                // The unbiased block must be predictive on its own.
                let unbiased_logits = self.model.rating_logits(&mut g, &b.users, &b.items);
                let y2 = g.constant(Tensor::col_vec(&b.ratings));
                let unbiased_loss = g.bce_mean(unbiased_logits, y2);

                // Independence between the blocks.
                let ortho = self.model.disentangle_loss(&mut g);

                let uw = g.mul_scalar(unbiased_loss, h.alpha);
                let ow = g.mul_scalar(ortho, h.beta);
                let l1 = g.add(full_loss, uw);
                let loss = g.add(l1, ow);

                epoch_loss += g.item(loss);
                n += 1;
                g.backward(loss, &mut self.model.params);
                drop(g); // release the tape's table Rcs so the step mutates in place
                opt.step(&mut self.model.params);
                self.model.params.zero_grad();
            }
            trace.push(epoch_loss / n.max(1) as f64);
            aux.push(self.model.disentangle_scale());
        }
        FitReport {
            epochs_run: self.cfg.epochs,
            final_loss: *trace.last().unwrap_or(&f64::NAN),
            loss_trace: trace,
            aux_trace: aux,
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        // Test time: unbiased component only.
        self.model.predict_rating_pairs(pairs)
    }

    fn n_parameters(&self) -> usize {
        self.model.n_parameters()
    }

    fn scoring_index(&self) -> Option<dt_serve::ScoringIndex> {
        Some(self.model.rating_scoring_index())
    }

    fn name(&self) -> &'static str {
        "DIB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    #[test]
    fn trains_and_test_path_uses_unbiased_block() {
        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 40,
                n_items: 50,
                target_density: 0.15,
                seed: 16,
                ..MechanismConfig::default()
            },
        );
        let cfg = TrainConfig {
            epochs: 5,
            hyper: crate::Hyper {
                alpha: 1.0,
                beta: 1e-3,
                ..crate::Hyper::default()
            },
            ..TrainConfig::default()
        };
        let mut m = DibRecommender::new(&ds, &cfg, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let rep = m.fit(&ds, &mut rng);
        assert!(rep.final_loss.is_finite());
        assert!(rep.loss_trace[0] > rep.final_loss);
        // Prediction equals the rating head (unbiased block), not the full
        // head.
        let p = m.predict(&[(3, 7)])[0];
        assert!((p - m.model.predict_rating(3, 7)).abs() < 1e-12);
        assert!((p - m.model.predict_propensity(3, 7)).abs() > 1e-9);
    }
}
