//! The doubly-robust family (eq. (4)) and its refinements.
//!
//! One parameterised trainer covers eight published variants; they differ
//! only in the imputation model, its training weight `w(p̂)`, whether a
//! targeted correction is applied, and whether the weights are
//! self-normalised:
//!
//! | Variant | Imputation | Imputation weight | Extra |
//! |---|---|---|---|
//! | `Vanilla` (DR)      | constant (EMA of observed error) | — | |
//! | `Tdr` (TDR)         | constant + targeted `ε/p̂`       | — | zeroes the empirical DR bias |
//! | `JointLearning` (DR-JL) | learned MF | `1/p̂`          | alternating updates |
//! | `Mrdr` (MRDR-JL)    | learned MF | `(1−p̂)/p̂²`         | variance-minimising |
//! | `Bias` (DR-BIAS)    | learned MF | `(1−p̂)²/p̂²`        | bias-targeting |
//! | `Mse` (DR-MSE)      | learned MF | λ-mixture of the two | bias–variance trade-off |
//! | `TdrJl` (TDR-JL)    | learned MF + targeted `ε/p̂` | `1/p̂` | |
//! | `Stable` (Stable-DR)| learned MF | self-normalised `1/p̂` | SNIPS-style denominators |

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_autograd::Graph;
use dt_data::{BatchIter, Dataset};
use dt_models::propensity::LogisticMfPropensity;
use dt_models::MfModel;
use dt_optim::{Adam, Optimizer};
use dt_tensor::Tensor;

use crate::config::TrainConfig;
use crate::methods::common::{fit_mar_propensity, inverse_propensities, uniform_batch, Batch};
use crate::recommender::{FitReport, Recommender};

/// Which member of the DR family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrVariant {
    /// Vanilla DR with a constant imputation.
    Vanilla,
    /// Targeted DR (constant imputation + closed-form correction).
    Tdr,
    /// DR joint learning (Wang et al. 2019).
    JointLearning,
    /// More-robust DR (Guo et al. 2021).
    Mrdr,
    /// Bias-targeting imputation weight (Dai et al. 2022).
    Bias,
    /// λ-mixture of the MRDR and BIAS objectives (Dai et al. 2022).
    Mse,
    /// Targeted DR with joint learning (Li et al. 2023).
    TdrJl,
    /// Stabilised DR with self-normalised weights (Li et al. 2023).
    Stable,
}

impl DrVariant {
    fn learns_imputation(self) -> bool {
        !matches!(self, DrVariant::Vanilla | DrVariant::Tdr)
    }

    fn targeted(self) -> bool {
        matches!(self, DrVariant::Tdr | DrVariant::TdrJl)
    }

    fn display_name(self) -> &'static str {
        match self {
            DrVariant::Vanilla => "DR",
            DrVariant::Tdr => "TDR",
            DrVariant::JointLearning => "DR-JL",
            DrVariant::Mrdr => "MRDR-JL",
            DrVariant::Bias => "DR-BIAS",
            DrVariant::Mse => "DR-MSE",
            DrVariant::TdrJl => "TDR-JL",
            DrVariant::Stable => "Stable-DR",
        }
    }
}

/// The parameterised DR trainer.
pub struct DrRecommender {
    model: MfModel,
    imputation: Option<MfModel>,
    const_imp: f64,
    prop: Option<LogisticMfPropensity>,
    cfg: TrainConfig,
    variant: DrVariant,
}

impl DrRecommender {
    /// A fresh model of the requested variant.
    #[must_use]
    pub fn new(ds: &Dataset, cfg: &TrainConfig, variant: DrVariant, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MfModel::new(ds.n_users, ds.n_items, cfg.emb_dim, &mut rng);
        let imputation = variant
            .learns_imputation()
            .then(|| MfModel::new(ds.n_users, ds.n_items, cfg.emb_dim, &mut rng));
        Self {
            model,
            imputation,
            const_imp: 0.5,
            prop: None,
            cfg: *cfg,
            variant,
        }
    }

    /// The imputation model's pseudo-labels `r̃` for a set of pairs (plain
    /// values). The imputed error is `ê = (r̂ − r̃)²`, which keeps ê a live
    /// function of the prediction model — the channel through which the
    /// imputation supervises the unobserved space in DR-JL.
    fn pseudo_labels(&self, users: &[usize], items: &[usize]) -> Vec<f64> {
        match &self.imputation {
            Some(m) => m.predict_batch(users, items),
            None => vec![self.const_imp; users.len()],
        }
    }

    /// Imputation training weight per observed example.
    fn imputation_weight(&self, inv_p: &[f64]) -> Vec<f64> {
        let lambda = self.cfg.hyper.lambda;
        inv_p
            .iter()
            .map(|&ip| {
                let p = 1.0 / ip;
                match self.variant {
                    DrVariant::JointLearning | DrVariant::TdrJl | DrVariant::Stable => ip,
                    DrVariant::Mrdr => (1.0 - p) * ip * ip,
                    DrVariant::Bias => (1.0 - p) * (1.0 - p) * ip * ip,
                    DrVariant::Mse => {
                        lambda * (1.0 - p) * ip * ip
                            + (1.0 - lambda) * (1.0 - p) * (1.0 - p) * ip * ip
                    }
                    DrVariant::Vanilla | DrVariant::Tdr => ip,
                }
            })
            .collect()
    }
}

impl Recommender for DrRecommender {
    #[allow(clippy::too_many_lines)]
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport {
        let start = Instant::now(); // lint: allow(r4): epoch wall-time telemetry only; never feeds the numerics
        let prop = fit_mar_propensity(ds, &self.cfg, rng);
        let observed_set = ds.train.pair_set();
        let density = ds.train.density();

        let mut opt_pred = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut opt_imp = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut trace = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for raw in BatchIter::new(&ds.train, self.cfg.batch_size, rng) {
                let b = Batch::from_interactions(&raw);
                let ub = uniform_batch(ds, b.len(), &observed_set, rng);
                let inv_p = inverse_propensities(&prop, &b, self.cfg.prop_clip);
                let inv_p_unif: Vec<f64> = ub
                    .users
                    .iter()
                    .zip(&ub.items)
                    .map(|(&u, &i)| 1.0 / prop.predict(u, i).max(self.cfg.prop_clip))
                    .collect();

                // --- pseudo-labels (treated as given by the prediction
                //     step; ê = (r̂ − r̃)² stays live in the prediction
                //     model) ---------------------------------------------
                let r_tilde_obs = self.pseudo_labels(&b.users, &b.items);
                let r_tilde_unif = self.pseudo_labels(&ub.users, &ub.items);

                // Current prediction errors as values (for the targeted
                // correction and the imputation step).
                let pairs_obs: Vec<(usize, usize)> = b
                    .users
                    .iter()
                    .zip(&b.items)
                    .map(|(&u, &i)| (u, i))
                    .collect();
                let preds = self.model.predict(&pairs_obs);
                let e_vals: Vec<f64> = preds
                    .iter()
                    .zip(&b.ratings)
                    .map(|(p, r)| (p - r) * (p - r))
                    .collect();
                let e_hat_vals: Vec<f64> = preds
                    .iter()
                    .zip(&r_tilde_obs)
                    .map(|(p, rt)| (p - rt) * (p - rt))
                    .collect();

                // Targeted correction (TDR): ε zeroes the empirical DR bias
                // term Σ[(e − ê − ε/p̂)/p̂] ⇒ ε = Σ[(e−ê)/p̂] / Σ[1/p̂²].
                // ε enters the loss as a constant shift (its gradient
                // channel is the corrected imputation target below).
                let eps = if self.variant.targeted() {
                    let num: f64 = e_vals
                        .iter()
                        .zip(&e_hat_vals)
                        .zip(&inv_p)
                        .map(|((e, eh), ip)| (e - eh) * ip)
                        .sum();
                    let den: f64 = inv_p.iter().map(|ip| ip * ip).sum::<f64>().max(1e-12);
                    num / den
                } else {
                    0.0
                };

                // --- prediction step --------------------------------------
                {
                    let mut g = Graph::new();
                    let logits = self.model.logits(&mut g, &b.users, &b.items);
                    let pred = g.sigmoid(logits);
                    let y = g.constant(Tensor::col_vec(&b.ratings));
                    let err = g.squared_error(pred, y);
                    // ê_obs = (r̂ − r̃)², live in the prediction model.
                    let rt = g.constant(Tensor::col_vec(&r_tilde_obs));
                    let e_hat_obs = g.squared_error(pred, rt);
                    let eps_shift: Vec<f64> = inv_p.iter().map(|ip| eps * ip).collect();
                    let eps_v = g.constant(Tensor::col_vec(&eps_shift));
                    let diff0 = g.sub(err, e_hat_obs);
                    let diff = g.sub(diff0, eps_v);
                    let w = g.constant(Tensor::col_vec(&inv_p));
                    let correction = if self.variant == DrVariant::Stable {
                        g.self_normalized_mean(w, diff)
                    } else {
                        let wm = g.weighted_mean(w, diff);
                        g.mul_scalar(wm, density)
                    };
                    // Base term over the uniform full-space sample:
                    // mean[(r̂ − r̃)²] — this is where the pseudo-labels
                    // supervise the unobserved pairs.
                    let logits_u = self.model.logits(&mut g, &ub.users, &ub.items);
                    let pred_u = g.sigmoid(logits_u);
                    let rt_u = g.constant(Tensor::col_vec(&r_tilde_unif));
                    let e_hat_unif = g.squared_error(pred_u, rt_u);
                    let base0 = g.mean(e_hat_unif);
                    let eps_base: f64 =
                        eps * inv_p_unif.iter().sum::<f64>() / inv_p_unif.len().max(1) as f64;
                    let eps_b = g.scalar(eps_base);
                    let base = g.add(base0, eps_b);
                    let loss = g.add(base, correction);
                    epoch_loss += g.item(loss);
                    n += 1;
                    g.backward(loss, &mut self.model.params);
                    drop(g); // release the tape's table Rcs so the step mutates in place
                    opt_pred.step(&mut self.model.params);
                    self.model.params.zero_grad();
                }

                // --- imputation step --------------------------------------
                let weights = self.imputation_weight(&inv_p);
                if let Some(imp) = &mut self.imputation {
                    // Train r̃ so the implied error (r̂ − r̃)² matches the
                    // realized error (ε-corrected for the targeted
                    // variants), with the variant's weighting.
                    let targets: Vec<f64> = e_vals
                        .iter()
                        .zip(&inv_p)
                        .map(|(e, ip)| (e - eps * ip).max(0.0))
                        .collect();
                    let mut g = Graph::new();
                    let logits = imp.logits(&mut g, &b.users, &b.items);
                    let rt = g.sigmoid(logits);
                    let rhat = g.constant(Tensor::col_vec(&preds));
                    let e_imp = g.squared_error(rhat, rt);
                    let tv = g.constant(Tensor::col_vec(&targets));
                    let diff_sq = g.squared_error(e_imp, tv);
                    let w = g.constant(Tensor::col_vec(&weights));
                    let imp_loss = if self.variant == DrVariant::Stable {
                        g.self_normalized_mean(w, diff_sq)
                    } else {
                        g.weighted_mean(w, diff_sq)
                    };
                    g.backward(imp_loss, &mut imp.params);
                    drop(g); // release the tape's table Rcs so the step mutates in place
                    opt_imp.step(&mut imp.params);
                    imp.params.zero_grad();
                } else {
                    // Constant pseudo-label: exponential moving average of
                    // the observed ratings.
                    let batch_mean = b.ratings.iter().sum::<f64>() / b.ratings.len().max(1) as f64;
                    self.const_imp = 0.9 * self.const_imp + 0.1 * batch_mean;
                }
            }
            trace.push(epoch_loss / n.max(1) as f64);
        }
        self.prop = Some(prop);
        FitReport {
            epochs_run: self.cfg.epochs,
            final_loss: *trace.last().unwrap_or(&f64::NAN),
            loss_trace: trace,
            aux_trace: Vec::new(),
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.model.predict(pairs)
    }

    fn scoring_index(&self) -> Option<dt_serve::ScoringIndex> {
        Some(self.model.scoring_index())
    }

    fn n_parameters(&self) -> usize {
        // Prediction + propensity (+ imputation): Table II's 3× embedding
        // row for the learned-imputation variants.
        let prop_params = self.prop.as_ref().map_or_else(
            || self.model.n_parameters() / 2,
            LogisticMfPropensity::n_parameters,
        );
        self.model.n_parameters()
            + prop_params
            + self.imputation.as_ref().map_or(0, MfModel::n_parameters)
    }

    fn name(&self) -> &'static str {
        self.variant.display_name()
    }

    fn propensity(&self, user: usize, item: usize) -> Option<f64> {
        self.prop.as_ref().map(|p| p.predict(user, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    fn dataset() -> Dataset {
        mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 40,
                n_items: 50,
                target_density: 0.15,
                seed: 8,
                ..MechanismConfig::default()
            },
        )
    }

    #[test]
    fn every_variant_trains_to_finite_loss() {
        let ds = dataset();
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        for variant in [
            DrVariant::Vanilla,
            DrVariant::Tdr,
            DrVariant::JointLearning,
            DrVariant::Mrdr,
            DrVariant::Bias,
            DrVariant::Mse,
            DrVariant::TdrJl,
            DrVariant::Stable,
        ] {
            let mut m = DrRecommender::new(&ds, &cfg, variant, 0);
            let mut rng = StdRng::seed_from_u64(1);
            let rep = m.fit(&ds, &mut rng);
            assert!(
                rep.final_loss.is_finite(),
                "{}: loss {:?}",
                variant.display_name(),
                rep.loss_trace
            );
            let preds = m.predict(&[(0, 0), (10, 20)]);
            assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn learned_imputation_variants_have_more_parameters() {
        let ds = dataset();
        let cfg = TrainConfig::default();
        let vanilla = DrRecommender::new(&ds, &cfg, DrVariant::Vanilla, 0);
        let jl = DrRecommender::new(&ds, &cfg, DrVariant::JointLearning, 0);
        assert!(jl.n_parameters() > vanilla.n_parameters());
    }

    #[test]
    fn imputation_weights_match_formulas() {
        let ds = dataset();
        let cfg = TrainConfig::default();
        let inv_p = [2.0, 10.0]; // p = 0.5, 0.1
        let w_jl =
            DrRecommender::new(&ds, &cfg, DrVariant::JointLearning, 0).imputation_weight(&inv_p);
        assert_eq!(w_jl, vec![2.0, 10.0]);
        let w_mrdr = DrRecommender::new(&ds, &cfg, DrVariant::Mrdr, 0).imputation_weight(&inv_p);
        assert!((w_mrdr[0] - 0.5 * 4.0).abs() < 1e-12);
        assert!((w_mrdr[1] - 0.9 * 100.0).abs() < 1e-12);
        let w_bias = DrRecommender::new(&ds, &cfg, DrVariant::Bias, 0).imputation_weight(&inv_p);
        assert!((w_bias[1] - 0.81 * 100.0).abs() < 1e-12);
    }

    #[test]
    fn targeted_correction_zeroes_the_empirical_bias_term() {
        // Directly check the ε formula on synthetic numbers.
        let e = [0.5, 0.2, 0.9];
        let eh = [0.3, 0.3, 0.3];
        let inv_p = [2.0, 4.0, 5.0];
        let num: f64 = e
            .iter()
            .zip(&eh)
            .zip(&inv_p)
            .map(|((e, eh), ip)| (e - eh) * ip)
            .sum();
        let den: f64 = inv_p.iter().map(|ip| ip * ip).sum();
        let eps = num / den;
        let corrected: f64 = e
            .iter()
            .zip(&eh)
            .zip(&inv_p)
            .map(|((e, eh), ip)| (e - (eh + eps * ip)) * ip)
            .sum();
        assert!(corrected.abs() < 1e-12);
    }
}
