//! MR — multiple robust learning (Li et al., AAAI 2023).
//!
//! Instead of betting on one propensity model and one imputation model, MR
//! maintains *candidate sets* of both and learns a convex combination; the
//! estimator is unbiased if any candidate (or a linear combination of
//! them) is accurate. Our candidate sets:
//!
//! * propensities — {constant `P(o=1)`, logistic-MF `P(o=1|x)`,
//!   Naive-Bayes `P(o=1|r)` when a test slice exists};
//! * imputations — {zero, constant EMA of observed error}.
//!
//! The combination weights are trained (softmax-parameterised) to minimise
//! the squared *self-diagnostic* of the DR estimator — the empirical bias
//! term `mean_O[(e − ê)·(w − 1/density)]`-style residual used by the MR
//! objective — alongside the prediction model's DR loss.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_autograd::Graph;
use dt_data::{BatchIter, Dataset};
use dt_models::propensity::{ConstantPropensity, NaiveBayesAdapter, PropensityHead};
use dt_models::MfModel;
use dt_optim::{Adam, Optimizer};
use dt_tensor::Tensor;

use crate::config::TrainConfig;
use crate::methods::common::{fit_mar_propensity, Batch};
use crate::recommender::{FitReport, Recommender};

/// The MR trainer.
pub struct MrRecommender {
    model: MfModel,
    cfg: TrainConfig,
    /// Softmax logits over the propensity candidates.
    mix_logits: Vec<f64>,
    heads: Vec<Box<dyn PropensityHead>>,
    const_imp: f64,
}

impl MrRecommender {
    /// A fresh model.
    #[must_use]
    pub fn new(ds: &Dataset, cfg: &TrainConfig, seed: u64) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            model: MfModel::new(ds.n_users, ds.n_items, cfg.emb_dim, &mut rng),
            cfg: *cfg,
            mix_logits: Vec::new(),
            heads: Vec::new(),
            const_imp: 0.25,
        }
    }

    fn mix_weights(&self) -> Vec<f64> {
        let max = self
            .mix_logits
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = self.mix_logits.iter().map(|l| (l - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.iter().map(|e| e / total).collect()
    }

    /// Combined inverse propensity for one observed interaction.
    fn combined_inverse(&self, user: usize, item: usize, rating: f64) -> f64 {
        let weights = self.mix_weights();
        self.heads
            .iter()
            .zip(&weights)
            .map(|(h, w)| w / h.propensity(user, item, rating).max(self.cfg.prop_clip))
            .sum()
    }
}

impl Recommender for MrRecommender {
    fn fit(&mut self, ds: &Dataset, rng: &mut StdRng) -> FitReport {
        let start = Instant::now(); // lint: allow(r4): epoch wall-time telemetry only; never feeds the numerics
                                    // Build the candidate set.
        self.heads = vec![Box::new(ConstantPropensity::fit(ds))];
        let logistic = fit_mar_propensity(ds, &self.cfg, rng);
        self.heads.push(Box::new(logistic));
        if !ds.test.is_empty() {
            self.heads
                .push(Box::new(NaiveBayesAdapter::fit(ds, self.cfg.prop_clip)));
        }
        self.mix_logits = vec![0.0; self.heads.len()];

        let density = ds.train.density();
        let mut opt = Adam::with_config(self.cfg.lr, 0.9, 0.999, 1e-8, self.cfg.l2);
        let mut trace = Vec::with_capacity(self.cfg.epochs);

        for _ in 0..self.cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut n = 0usize;
            for raw in BatchIter::new(&ds.train, self.cfg.batch_size, rng) {
                let b = Batch::from_interactions(&raw);
                let inv_p: Vec<f64> = (0..b.len())
                    .map(|k| self.combined_inverse(b.users[k], b.items[k], b.ratings[k]))
                    .collect();

                // Prediction step: DR with the combined weights and the
                // constant imputation.
                let e_vals: Vec<f64>;
                {
                    let mut g = Graph::new();
                    let logits = self.model.logits(&mut g, &b.users, &b.items);
                    let pred = g.sigmoid(logits);
                    let y = g.constant(Tensor::col_vec(&b.ratings));
                    let err = g.squared_error(pred, y);
                    let eh = g.constant(Tensor::full(b.len(), 1, self.const_imp));
                    let diff = g.sub(err, eh);
                    let w = g.constant(Tensor::col_vec(&inv_p));
                    let corr0 = g.weighted_mean(w, diff);
                    let corr = g.mul_scalar(corr0, density);
                    let base = g.scalar(self.const_imp);
                    let loss = g.add(base, corr);
                    epoch_loss += g.item(loss);
                    n += 1;
                    e_vals = g.value(err).data().to_vec();
                    g.backward(loss, &mut self.model.params);
                    drop(g); // release the tape's table Rcs so the step mutates in place
                    opt.step(&mut self.model.params);
                    self.model.params.zero_grad();
                }
                self.const_imp = 0.9 * self.const_imp
                    + 0.1 * (e_vals.iter().sum::<f64>() / e_vals.len().max(1) as f64);

                // Mixture step: nudge the weights to shrink the MR
                // self-diagnostic |mean_O[w·o] − 1| (a correct inverse
                // propensity satisfies E[o·w] = 1 over D, i.e.
                // density·mean_O[w] = 1). Numeric gradient over the few
                // mixture logits.
                let diagnostic = |logits: &[f64]| -> f64 {
                    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
                    let total: f64 = exps.iter().sum();
                    let ws: Vec<f64> = exps.iter().map(|e| e / total).collect();
                    let mean_inv: f64 = (0..b.len())
                        .map(|k| {
                            self.heads
                                .iter()
                                .zip(&ws)
                                .map(|(h, w)| {
                                    w / h
                                        .propensity(b.users[k], b.items[k], b.ratings[k])
                                        .max(self.cfg.prop_clip)
                                })
                                .sum::<f64>()
                        })
                        .sum::<f64>()
                        / b.len().max(1) as f64;
                    let resid = density * mean_inv - 1.0;
                    resid * resid
                };
                let eps = 1e-4;
                let mut grads = vec![0.0; self.mix_logits.len()];
                for k in 0..self.mix_logits.len() {
                    let mut plus = self.mix_logits.clone();
                    plus[k] += eps;
                    let mut minus = self.mix_logits.clone();
                    minus[k] -= eps;
                    grads[k] = (diagnostic(&plus) - diagnostic(&minus)) / (2.0 * eps);
                }
                for (l, gr) in self.mix_logits.iter_mut().zip(&grads) {
                    *l -= self.cfg.lr * gr;
                }
            }
            trace.push(epoch_loss / n.max(1) as f64);
        }
        FitReport {
            epochs_run: self.cfg.epochs,
            final_loss: *trace.last().unwrap_or(&f64::NAN),
            loss_trace: trace,
            aux_trace: self.mix_weights(),
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
        self.model.predict(pairs)
    }

    fn scoring_index(&self) -> Option<dt_serve::ScoringIndex> {
        Some(self.model.scoring_index())
    }

    fn n_parameters(&self) -> usize {
        // Prediction MF + logistic propensity candidate + mixture logits.
        self.model.n_parameters() + self.model.n_parameters() / 2 + self.mix_logits.len()
    }

    fn name(&self) -> &'static str {
        "MR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

    #[test]
    fn trains_and_learns_a_mixture() {
        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 40,
                n_items: 50,
                target_density: 0.15,
                seed: 17,
                ..MechanismConfig::default()
            },
        );
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        let mut m = MrRecommender::new(&ds, &cfg, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let rep = m.fit(&ds, &mut rng);
        assert!(rep.final_loss.is_finite());
        // Three candidates (test slice exists): constant, logistic, NB.
        assert_eq!(rep.aux_trace.len(), 3);
        let total: f64 = rep.aux_trace.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to one");
        assert!(rep.aux_trace.iter().all(|&w| w > 0.0));
    }
}
