//! Theorem 1 in action: maximum-likelihood recovery of the separable
//! logistic MNAR mechanism using an auxiliary variable.
//!
//! World: `z ~ N(0,1)` and `r ~ Bern(π)` independent (Assumption 1(i),
//! with `x` implicit), selection `o ~ Bern(σ(c + α·z + β·r))`
//! (Assumption 1(ii): `z` affects `o`). The analyst sees `(z, o)` for every
//! unit but `r` only when `o = 1` — exactly the recommendation setting.
//!
//! The observed-data log-likelihood marginalises the missing ratings:
//!
//! ```text
//! o=1:  ln π_r + ln σ(c + α·z + β·r)
//! o=0:  ln Σ_{r∈{0,1}} π_r · (1 − σ(c + α·z + β·r))
//! ```
//!
//! Theorem 1 guarantees this likelihood has a unique population maximiser,
//! so MLE recovers `(c, α, β, π)` — including the rating coefficient `β`
//! that the MAR propensity is structurally unable to represent. The test
//! suite also shows the contrast: with `α = 0` (no auxiliary variable) the
//! likelihood is flat across an Example-1-style ridge.

use dt_stats::{expit, logit, sample_bernoulli};
use rand::Rng;

/// The separable logistic MNAR model `P(o=1|z,r) = σ(c + α·z + β·r)`,
/// `P(r=1) = π`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparableLogisticModel {
    /// Selection intercept.
    pub c: f64,
    /// Auxiliary-variable coefficient (`q(z) = α·z`).
    pub alpha: f64,
    /// Rating coefficient (`g(r) = β·r`) — the MNAR ingredient.
    pub beta: f64,
    /// Positive-rating probability.
    pub pi: f64,
}

impl SeparableLogisticModel {
    /// The separable selection propensity `σ(c + α·z + β·r)` of
    /// Assumption 1.
    #[must_use]
    pub fn propensity(&self, z: f64, r: f64) -> f64 {
        expit(self.c + self.alpha * z + self.beta * r)
    }

    /// Samples a dataset of `n` units from the Theorem 1 world:
    /// `z ~ N(0,1)`, `r ~ Bern(π)`, `o` from the separable propensity.
    #[must_use]
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> MnarSample {
        let mut z = Vec::with_capacity(n);
        let mut o = Vec::with_capacity(n);
        let mut r = Vec::with_capacity(n);
        for _ in 0..n {
            let zi: f64 = {
                // Box–Muller standard normal.
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            let ri = sample_bernoulli(self.pi, rng);
            let oi = sample_bernoulli(self.propensity(zi, f64::from(ri)), rng);
            z.push(zi);
            o.push(oi);
            r.push(if oi { Some(ri) } else { None });
        }
        MnarSample { z, o, r }
    }
}

/// An MNAR sample: `z` and `o` always observed, `r` only where `o = 1`.
#[derive(Debug, Clone)]
pub struct MnarSample {
    /// Auxiliary variable per unit.
    pub z: Vec<f64>,
    /// Observation indicator per unit.
    pub o: Vec<bool>,
    /// Rating, present only for observed units.
    pub r: Vec<Option<bool>>,
}

impl MnarSample {
    /// Number of units.
    #[must_use]
    // lint: allow(r6): size accessor, no paper construct to cite
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Returns `true` for an empty sample.
    #[must_use]
    // lint: allow(r6): size accessor, no paper construct to cite
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }

    /// Observed-data log-likelihood of a candidate model under Theorem 1's
    /// separable mechanism (averaged per unit, for scale stability).
    #[must_use]
    pub fn log_likelihood(&self, m: &SeparableLogisticModel) -> f64 {
        let mut ll = 0.0;
        for i in 0..self.len() {
            let z = self.z[i];
            if self.o[i] {
                let r = f64::from(self.r[i].expect("observed unit has a rating"));
                let pr = if r > 0.5 { m.pi } else { 1.0 - m.pi };
                ll += pr.max(1e-300).ln() + m.propensity(z, r).max(1e-300).ln();
            } else {
                let miss = m.pi * (1.0 - m.propensity(z, 1.0))
                    + (1.0 - m.pi) * (1.0 - m.propensity(z, 0.0));
                ll += miss.max(1e-300).ln();
            }
        }
        ll / self.len() as f64
    }
}

/// Fits the separable logistic model of Theorem 1 by gradient ascent on
/// the observed log-likelihood (numeric central-difference gradients over
/// the four parameters, with `π` optimised on the logit scale).
///
/// # Panics
/// Panics on an empty sample.
#[must_use]
pub fn fit_separable(sample: &MnarSample, steps: usize, lr: f64) -> SeparableLogisticModel {
    assert!(!sample.is_empty(), "fit_separable: empty sample");
    // Initialise at an agnostic point.
    let obs_rate = sample.o.iter().filter(|&&o| o).count() as f64 / sample.len() as f64;
    let mut theta = [
        logit(obs_rate.clamp(0.01, 0.99)), // c
        0.0,                               // alpha
        0.0,                               // beta
        0.0,                               // logit(pi)
    ];
    let unpack = |t: &[f64; 4]| SeparableLogisticModel {
        c: t[0],
        alpha: t[1],
        beta: t[2],
        pi: expit(t[3]),
    };
    let eps = 1e-5;
    let mut lr = lr;
    let mut prev = sample.log_likelihood(&unpack(&theta));
    for _ in 0..steps {
        let mut grad = [0.0; 4];
        for k in 0..4 {
            let mut plus = theta;
            plus[k] += eps;
            let mut minus = theta;
            minus[k] -= eps;
            grad[k] = (sample.log_likelihood(&unpack(&plus))
                - sample.log_likelihood(&unpack(&minus)))
                / (2.0 * eps);
        }
        for k in 0..4 {
            theta[k] += lr * grad[k];
        }
        let ll = sample.log_likelihood(&unpack(&theta));
        if ll < prev {
            lr *= 0.5; // backtrack on overshoot
        }
        prev = ll;
    }
    unpack(&theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> SeparableLogisticModel {
        SeparableLogisticModel {
            c: -1.0,
            alpha: 1.2,
            beta: 1.8,
            pi: 0.4,
        }
    }

    #[test]
    fn sample_shape_and_missingness() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = truth().sample(5000, &mut rng);
        assert_eq!(s.len(), 5000);
        for i in 0..s.len() {
            assert_eq!(s.o[i], s.r[i].is_some());
        }
        // Positives should be over-represented among observed units
        // (beta > 0): the MNAR signature.
        let obs_pos = s.r.iter().flatten().filter(|&&r| r).count() as f64
            / s.o.iter().filter(|&&o| o).count() as f64;
        assert!(obs_pos > 0.5, "observed positive rate {obs_pos} vs π = 0.4");
    }

    #[test]
    fn likelihood_peaks_at_the_truth_in_population() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = truth().sample(40_000, &mut rng);
        let ll_true = s.log_likelihood(&truth());
        // Perturbations in every direction lower the likelihood.
        for (dc, da, db, dp) in [
            (0.5, 0.0, 0.0, 0.0),
            (0.0, 0.5, 0.0, 0.0),
            (0.0, 0.0, 0.7, 0.0),
            (0.0, 0.0, 0.0, 0.15),
            (-0.5, 0.3, -0.5, -0.1),
        ] {
            let m = SeparableLogisticModel {
                c: truth().c + dc,
                alpha: truth().alpha + da,
                beta: truth().beta + db,
                pi: (truth().pi + dp).clamp(0.01, 0.99),
            };
            assert!(
                s.log_likelihood(&m) < ll_true,
                "perturbed model not worse: {m:?}"
            );
        }
    }

    #[test]
    fn mle_recovers_the_generating_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = truth().sample(40_000, &mut rng);
        let fitted = fit_separable(&s, 800, 2.0);
        assert!((fitted.c - truth().c).abs() < 0.15, "c = {}", fitted.c);
        assert!(
            (fitted.alpha - truth().alpha).abs() < 0.15,
            "alpha = {}",
            fitted.alpha
        );
        assert!(
            (fitted.beta - truth().beta).abs() < 0.3,
            "beta = {}",
            fitted.beta
        );
        assert!((fitted.pi - truth().pi).abs() < 0.05, "pi = {}", fitted.pi);
        // Crucially, the rating effect is detected as strongly positive —
        // the MNAR propensity is identified.
        assert!(fitted.beta > 1.0);
    }

    #[test]
    fn without_z_an_example1_style_ridge_appears() {
        // Remove the auxiliary variable (alpha = 0). Then a *MAR* model
        // (beta' = 0) exactly mimics the MNAR generator on observed data by
        // trading the rating effect against the rating prevalence:
        //   σ(c') = π·σ(c+β) + (1−π)·σ(c),   π' = π·σ(c+β)/σ(c').
        // This matches P(o=1, r=1), P(o=1, r=0) and P(o=0) simultaneously —
        // the binary-rating analogue of the paper's Example 1, and the
        // sharpest reading of its message: observed data cannot even tell
        // MNAR from MAR.
        let gen = SeparableLogisticModel {
            c: -2.0,
            alpha: 0.0,
            beta: 4.0,
            pi: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let s = gen.sample(40_000, &mut rng);

        let p1 = expit(gen.c + gen.beta); // P(o=1|r=1)
        let p0 = expit(gen.c); // P(o=1|r=0)
        let sel = gen.pi * p1 + (1.0 - gen.pi) * p0;
        let dual = SeparableLogisticModel {
            c: logit(sel),
            alpha: 0.0,
            beta: 0.0,
            pi: gen.pi * p1 / sel,
        };
        assert!(dual.pi > 0.8, "dual inflates prevalence: {}", dual.pi);

        let ll_gen = s.log_likelihood(&gen);
        let ll_dual = s.log_likelihood(&dual);
        assert!(
            (ll_gen - ll_dual).abs() < 1e-9,
            "without z the MAR dual is indistinguishable: {ll_gen} vs {ll_dual}"
        );

        // With an informative z (alpha ≠ 0) the same trade-off IS
        // detectable: logistic curves at different offsets are not scalar
        // multiples of each other across z.
        let gen_z = SeparableLogisticModel { alpha: 1.5, ..gen };
        let s_z = gen_z.sample(40_000, &mut StdRng::seed_from_u64(5));
        let dual_z = SeparableLogisticModel { alpha: 1.5, ..dual };
        let gap = s_z.log_likelihood(&gen_z) - s_z.log_likelihood(&dual_z);
        assert!(gap > 0.01, "z breaks the ridge: gap {gap}");
    }
}
