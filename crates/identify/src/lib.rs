//! # dt-identify
//!
//! Numerical companion to the paper's identifiability theory (§IV-A):
//!
//! * [`example1`] — the paper's Example 1: two distinct (propensity,
//!   outcome-law) pairs that induce **exactly** the same observed-data
//!   distribution, so no amount of data can tell them apart. This is why
//!   fitting the MNAR propensity without extra structure is hopeless.
//! * [`condition`] — a numerical checker for Lemma 3's condition (7): given
//!   two candidate models over an auxiliary variable `z`, decide whether
//!   they are distinguishable from observed data.
//! * [`separable_mle`] — Theorem 1 in action: with an auxiliary variable
//!   `z` (satisfying Assumption 1) and the separable logistic mechanism
//!   `P(o=1|z,r) = σ(c + α·z + β·r)`, the full law *is* identifiable, and a
//!   maximum-likelihood fit on `(z, o, r·o)` data recovers the generating
//!   parameters — including the rating coefficient `β` that drives the
//!   MNAR propensity.

#![forbid(unsafe_code)]

pub mod condition;
pub mod example1;
pub mod separable_mle;

pub use condition::{condition7_holds, CandidateModel};
pub use example1::{example1_models, observed_density, GaussianLogisticModel};
pub use separable_mle::{fit_separable, MnarSample, SeparableLogisticModel};
