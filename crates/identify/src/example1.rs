//! The paper's Example 1: non-identifiability of the MNAR propensity.
//!
//! Model (a): `P(o=1|r) = σ(−4 + 2r)`, `r ~ N(1, 1)`.
//! Model (b): `P(o=1|r) = σ( 4 − 2r)`, `r ~ N(3, 1)`.
//!
//! Both induce the same joint density of `(o = 1, r)` — checked here to
//! machine precision over a grid — so a likelihood fitted to observed data
//! cannot distinguish a mechanism that *reveals high ratings* from one that
//! *reveals low ratings*. Debiasing with the wrong one is catastrophic,
//! which is the motivation for the auxiliary-variable construction.

use dt_stats::{expit, normal_pdf};

/// A Gaussian-outcome / logistic-missingness model:
/// `r ~ N(mean, 1)`, `P(o=1|r) = σ(a + b·r)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianLogisticModel {
    /// Intercept of the selection logit.
    pub a: f64,
    /// Rating coefficient of the selection logit.
    pub b: f64,
    /// Mean of the outcome distribution.
    pub mean: f64,
}

impl GaussianLogisticModel {
    /// The MNAR propensity `P(o = 1 | r) = σ(a + b·r)` of Example 1.
    #[must_use]
    pub fn propensity(&self, r: f64) -> f64 {
        expit(self.a + self.b * r)
    }

    /// The outcome density `P(r)` of Example 1 (standard-normal shape
    /// around `mean`).
    #[must_use]
    pub fn outcome_density(&self, r: f64) -> f64 {
        normal_pdf(r - self.mean)
    }
}

/// The observed-data density `P(o = 1, r) = P(o = 1 | r) · P(r)` — the
/// quantity Example 1 shows is shared by both models.
#[must_use]
pub fn observed_density(model: &GaussianLogisticModel, r: f64) -> f64 {
    model.propensity(r) * model.outcome_density(r)
}

/// The two models of the paper's Example 1.
#[must_use]
pub fn example1_models() -> (GaussianLogisticModel, GaussianLogisticModel) {
    (
        GaussianLogisticModel {
            a: -4.0,
            b: 2.0,
            mean: 1.0,
        },
        GaussianLogisticModel {
            a: 4.0,
            b: -2.0,
            mean: 3.0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_two_models_are_genuinely_different() {
        let (a, b) = example1_models();
        assert_ne!(a, b);
        // Their propensities disagree wildly at r = 4:
        assert!(a.propensity(4.0) > 0.9);
        assert!(b.propensity(4.0) < 0.1);
        // And their outcome laws disagree:
        assert!((a.outcome_density(1.0) - b.outcome_density(3.0)).abs() < 1e-15);
        assert!(a.outcome_density(1.0) > 3.0 * b.outcome_density(1.0));
    }

    #[test]
    fn observed_data_distributions_coincide_exactly() {
        // The heart of Example 1: identical P(o=1, r) everywhere.
        let (a, b) = example1_models();
        for i in 0..=400 {
            let r = -4.0 + i as f64 * 0.03; // grid over [-4, 8]
            let da = observed_density(&a, r);
            let db = observed_density(&b, r);
            assert!(
                (da - db).abs() < 1e-12 * da.max(db).max(1e-300),
                "densities differ at r = {r}: {da} vs {db}"
            );
        }
    }

    #[test]
    fn observed_densities_integrate_to_the_same_mass() {
        // Same P(o=1) marginal — the likelihood of the missing part also
        // matches, so even "o = 0 counts" cannot separate the models.
        let (a, b) = example1_models();
        let integrate = |m: &GaussianLogisticModel| -> f64 {
            let mut s = 0.0;
            let h = 0.001;
            let mut r = -10.0;
            while r < 14.0 {
                s += observed_density(m, r) * h;
                r += h;
            }
            s
        };
        let (ma, mb) = (integrate(&a), integrate(&b));
        assert!((ma - mb).abs() < 1e-9, "{ma} vs {mb}");
        // And it is a proper sub-probability mass.
        assert!(ma > 0.0 && ma < 1.0);
    }

    #[test]
    fn debiasing_with_the_wrong_model_is_catastrophic() {
        // The practical consequence: IPS weights 1/p̂ under the two models
        // differ by orders of magnitude at the same observed point.
        let (a, b) = example1_models();
        let r = 4.5;
        let w_a = 1.0 / a.propensity(r);
        let w_b = 1.0 / b.propensity(r);
        assert!(w_b / w_a > 50.0, "weight ratio {}", w_b / w_a);
    }
}
