//! A numerical checker for Lemma 3's condition (7).
//!
//! Two candidate models are *indistinguishable* from observed data exactly
//! when the ratio of their selection probabilities equals the inverse ratio
//! of their outcome densities for every `(z, r)`:
//!
//! ```text
//! P₁(o=1 | z, r) / P₂(o=1 | z, r)  ==  P₂(r) / P₁(r)    ∀ z, r
//! ```
//!
//! Condition (7) requires this *not* to happen for any two distinct
//! candidates. The checker evaluates both sides over a grid: if the
//! equality holds everywhere the pair violates identifiability (as in
//! Example 1, which has no `z`); if the left side varies with `z` while the
//! right side cannot, the pair is distinguishable.

/// A candidate model: a selection probability over `(z, r)` and an outcome
/// density over `r`.
pub struct CandidateModel {
    /// `P(o = 1 | z, r)`.
    pub selection: Box<dyn Fn(f64, f64) -> f64>,
    /// `P(r)` (the outcome law; conditioning on `x` is left implicit).
    pub outcome: Box<dyn Fn(f64) -> f64>,
}

impl CandidateModel {
    /// Builds a candidate model for the condition (7) check from closures.
    #[must_use]
    pub fn new(
        selection: impl Fn(f64, f64) -> f64 + 'static,
        outcome: impl Fn(f64) -> f64 + 'static,
    ) -> Self {
        Self {
            selection: Box::new(selection),
            outcome: Box::new(outcome),
        }
    }
}

/// Returns `true` when condition (7) holds for the pair over the grid —
/// i.e. the two candidates are distinguishable from observed data (there
/// exists a grid point where the selection ratio differs from the inverse
/// outcome-density ratio).
///
/// `rel_tol` controls when two ratios count as equal.
///
/// # Panics
/// Panics on an empty grid.
#[must_use]
pub fn condition7_holds(
    m1: &CandidateModel,
    m2: &CandidateModel,
    z_grid: &[f64],
    r_grid: &[f64],
    rel_tol: f64,
) -> bool {
    assert!(
        !z_grid.is_empty() && !r_grid.is_empty(),
        "condition7_holds: empty grid"
    );
    for &z in z_grid {
        for &r in r_grid {
            let sel_ratio = (m1.selection)(z, r) / (m2.selection)(z, r);
            let out_ratio = (m2.outcome)(r) / (m1.outcome)(r);
            let scale = sel_ratio.abs().max(out_ratio.abs()).max(1e-300);
            if (sel_ratio - out_ratio).abs() > rel_tol * scale {
                // Found a witness where the two observed densities differ.
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example1::{example1_models, GaussianLogisticModel};
    use dt_stats::expit;

    fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    }

    fn as_candidate(m: GaussianLogisticModel) -> CandidateModel {
        // No z-dependence: the Example 1 world has no auxiliary variable.
        CandidateModel::new(move |_z, r| m.propensity(r), move |r| m.outcome_density(r))
    }

    #[test]
    fn example1_pair_violates_condition7() {
        let (a, b) = example1_models();
        let holds = condition7_holds(
            &as_candidate(a),
            &as_candidate(b),
            &grid(-2.0, 2.0, 9),
            &grid(-3.0, 7.0, 101),
            1e-9,
        );
        assert!(!holds, "Example 1 must be undetectable without z");
    }

    #[test]
    fn identical_models_violate_trivially() {
        let (a, _) = example1_models();
        let holds = condition7_holds(
            &as_candidate(a),
            &as_candidate(a),
            &grid(-1.0, 1.0, 5),
            &grid(-3.0, 5.0, 41),
            1e-9,
        );
        assert!(!holds, "a model is never distinguishable from itself");
    }

    #[test]
    fn separable_logistic_candidates_with_z_satisfy_condition7() {
        // Two distinct separable-logistic mechanisms over z: their selection
        // ratio varies with z, which the outcome ratio cannot mimic
        // (Theorem 1).
        let m1 = CandidateModel::new(
            |z, r| expit(-1.0 + 1.0 * z + 2.0 * r),
            |r| dt_stats::normal_pdf(r - 1.0),
        );
        let m2 = CandidateModel::new(
            |z, r| expit(-1.0 + 0.5 * z + 2.0 * r),
            |r| dt_stats::normal_pdf(r - 1.0),
        );
        let holds = condition7_holds(&m1, &m2, &grid(-2.0, 2.0, 9), &grid(-2.0, 4.0, 31), 1e-9);
        assert!(holds);
    }

    #[test]
    fn example1_pair_becomes_distinguishable_with_an_informative_z() {
        // Embed the Example 1 mechanisms in a world with an auxiliary
        // variable that shifts selection (Assumption 1(ii)): now the ratio
        // varies with z and the ambiguity disappears.
        let (a, b) = example1_models();
        let m1 = CandidateModel::new(
            move |z, r| expit(a.a + a.b * r + 1.5 * z),
            move |r| a.outcome_density(r),
        );
        let m2 = CandidateModel::new(
            move |z, r| expit(b.a + b.b * r + 0.5 * z),
            move |r| b.outcome_density(r),
        );
        let holds = condition7_holds(&m1, &m2, &grid(-2.0, 2.0, 9), &grid(-3.0, 7.0, 41), 1e-9);
        assert!(holds);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let (a, b) = example1_models();
        let _ = condition7_holds(&as_candidate(a), &as_candidate(b), &[], &[1.0], 1e-9);
    }
}
