//! Randomized model test: `ClockCache` (and `SharedCache`) against a
//! naive `HashMap` reference. Std-only and fully deterministic — a
//! SplitMix64 stream drives the op sequence, so the container needs no
//! proptest dependency and every failure replays exactly.
//!
//! Checked invariants, per op, across seeds × capacities:
//! - **No phantom hits** — a probe may only hit if the exact key
//!   (user, epoch, fingerprint) was inserted, not since superseded, and
//!   the returned stripe is bit-for-bit the latest inserted value.
//! - **Stale epoch never served** — inserting at a newer epoch removes
//!   the older entry from the model; a hit on a dead key is a failure.
//! - **Capacity never exceeded** — `len() <= capacity()` always.
//!
//! Misses are always legal (CLOCK may evict anything), so the model is
//! an over-approximation of the live set; the cache must stay inside it.

use std::collections::HashMap;

use dt_cache::{CacheKey, ClockCache, ResultCache, SharedCache};
use dt_tensor::topk::Ranked;

/// Same generator the serving stack uses for deterministic seeding.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const K: usize = 6;
const N_USERS: u64 = 48;
const FINGERPRINTS: [u64; 2] = [0x1111_2222_3333_4444, 0xAAAA_BBBB_CCCC_DDDD];

/// Stripe whose bits encode the insert it came from: `nonce`
/// distinguishes re-inserts of the same key, so a hit returning an
/// outdated value (refresh-in-place bug) fails the bit compare.
fn stripe(key: &CacheKey, nonce: u64, len: usize) -> Vec<Ranked> {
    (0..len)
        .map(|i| Ranked {
            item: (key.user as u32) << 8 | i as u32,
            score: f64::from(nonce as u32) + f64::from(i as u32) * 0.5 + key.epoch as f64 * 1e6,
        })
        .collect()
}

fn bits_equal(a: &[Ranked], b: &[Ranked]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.item == y.item && x.score.to_bits() == y.score.to_bits())
}

/// Drives `ops` random probe/insert/bump operations against `cache`,
/// mirroring inserts into a HashMap model and checking every hit.
fn drive<C: ResultCache>(cache: &mut C, capacity: usize, seed: u64, ops: usize) {
    let mut rng = SplitMix64(seed);
    // Model of everything the cache could legally still hold:
    // key -> (nonce-tagged stripe). Superseded epochs are removed.
    let mut model: HashMap<(u64, u64, u64), Vec<Ranked>> = HashMap::new();
    // Current epoch per fingerprint (both sides use the same clock).
    let mut epochs = [0u64; FINGERPRINTS.len()];
    let mut out = [Ranked::TOMBSTONE; K];
    let mut nonce = 0u64;
    let mut hits = 0usize;

    for _ in 0..ops {
        let fp_idx = rng.below(FINGERPRINTS.len() as u64) as usize;
        let key = CacheKey {
            user: rng.below(N_USERS),
            epoch: epochs[fp_idx],
            arm_fingerprint: FINGERPRINTS[fp_idx],
        };
        match rng.below(100) {
            // Epoch bump: every older entry for this fingerprint is now
            // stale and must never be served again.
            0..=4 => {
                epochs[fp_idx] += 1;
                model.retain(|&(_, _, fp), _| fp != FINGERPRINTS[fp_idx]);
            }
            5..=54 => {
                let len = 1 + rng.below(K as u64) as usize;
                nonce += 1;
                let s = stripe(&key, nonce, len);
                cache.insert(&key, &s);
                // A newer-epoch insert displaces the older entry in the
                // store, so drop superseded keys from the model too.
                model.retain(|&(u, e, fp), _| {
                    !(u == key.user && fp == key.arm_fingerprint && e < key.epoch)
                });
                model.insert((key.user, key.epoch, key.arm_fingerprint), s);
            }
            _ => {
                if let Some(n) = cache.probe(&key, &mut out) {
                    hits += 1;
                    let expect = model
                        .get(&(key.user, key.epoch, key.arm_fingerprint))
                        .unwrap_or_else(|| {
                            panic!("phantom hit: {key:?} was never inserted (or is stale)")
                        });
                    assert!(
                        bits_equal(&out[..n], expect),
                        "hit returned wrong bits for {key:?}: got {:?} want {expect:?}",
                        &out[..n],
                    );
                }
            }
        }
    }
    // The workload revisits keys heavily (48 users, 2 fingerprints), so
    // any non-toy capacity must produce real hits or the test is vacuous.
    if capacity >= 16 && ops >= 2_000 {
        assert!(
            hits > ops / 50,
            "only {hits} hits in {ops} ops — vacuous run"
        );
    }
}

#[test]
fn clock_store_matches_hashmap_model() {
    for &capacity in &[1usize, 4, 16, 64, 128] {
        for seed in 0..4u64 {
            let mut cache = ClockCache::new(capacity, K);
            drive(
                &mut cache,
                capacity,
                0xC10C_0000 + seed * 7919 + capacity as u64,
                4_000,
            );
            assert!(
                cache.len() <= cache.capacity(),
                "len {} exceeds capacity {}",
                cache.len(),
                cache.capacity()
            );
            let c = cache.counters();
            assert_eq!(c.hits + c.misses, c.probes());
        }
    }
}

#[test]
fn sharded_store_matches_hashmap_model() {
    for &(capacity, shards) in &[(16usize, 2usize), (64, 4), (128, 8)] {
        for seed in 0..3u64 {
            let cache = SharedCache::new(capacity, K, shards);
            let mut view = &cache;
            drive(&mut view, capacity, 0x5AAD_0000 + seed * 104_729, 4_000);
            assert!(cache.len() <= cache.capacity());
        }
    }
}
