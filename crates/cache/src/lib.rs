//! # dt-cache
//!
//! Epoch-keyed top-K **result cache** for the serving stack (DESIGN.md
//! section 17). Under the replayed Zipf traffic of `dt-load`, a small
//! head of users generates most queries; recomputing their top-K on
//! every arrival wastes the very scoring bandwidth the overloaded
//! regime is short of. This crate memoises finished `(item, score)`
//! stripes keyed by `(user, epoch, arm_fingerprint)`:
//!
//! - [`CacheKey`] / [`Fingerprint`] ([`key`]) — identity of a stripe.
//!   The fingerprint folds the full retrieval configuration (arm kind,
//!   K, dtype, IVF geometry, shard count) so distinct arms never alias
//!   in a shared store.
//! - [`ClockCache`] — the per-worker store: open-addressed, fixed
//!   capacity, CLOCK/second-chance eviction in a bounded probe window.
//!   Zero locks, zero steady-state allocations; both slabs (slots and
//!   result stripes) are sized at construction.
//! - [`SharedCache`] — the cross-worker store: N independent
//!   mutex-guarded CLOCK shards selected by key hash, so one worker's
//!   warm entries serve every worker at `1/N` contention.
//! - Epoch-keyed **lazy invalidation**: engines carry an `epoch: u64`
//!   bumped on model updates; probes at the new epoch recognise stale
//!   entries in place (same slot window — see [`key`]) and evict them.
//!   No global flush ever runs.
//!
//! Both stores implement [`ResultCache`], which is what the `dt-load`
//! worker loop programs against (probe-before-dispatch,
//! insert-after-dispatch). Cached results are **bitwise identical** to
//! fresh dispatch: stripes are stored and returned verbatim, never
//! recomputed, so the determinism contract (`DT_NUM_THREADS`-invariant
//! bytes) survives caching.
//!
//! Std-only, like the rest of the workspace.

#![forbid(unsafe_code)]

mod clock;
pub mod key;
mod sharded;

use dt_metrics::CacheCounters;
use dt_tensor::topk::Ranked;

pub use clock::{ClockCache, PROBE_WINDOW};
pub use key::{mix64, CacheKey, Fingerprint};
pub use sharded::SharedCache;

/// The probe/insert surface the serving worker loop programs against.
///
/// `probe` takes `&mut self` because even a read mutates store state
/// (reference bits, counters, stale evictions). Per-worker stores
/// implement it directly; the shared store implements it for
/// `&SharedCache`, so each worker holds a shared reference and the
/// interior mutability lives behind the shard locks.
pub trait ResultCache {
    /// Looks up `key`. On a hit, copies the stored stripe into the
    /// front of `out` and returns its length; on a miss (including a
    /// stale-epoch entry, which is evicted) returns `None`.
    fn probe(&mut self, key: &CacheKey, out: &mut [Ranked]) -> Option<usize>;

    /// Stores `stripe` under `key`, refreshing in place when the exact
    /// key is already present and evicting per CLOCK when full.
    fn insert(&mut self, key: &CacheKey, stripe: &[Ranked]);

    /// Lifetime hit/miss/eviction counters for this store.
    fn counters(&self) -> CacheCounters;
}
