//! Cache keys and arm fingerprints (DESIGN.md section 17).
//!
//! A cached top-K stripe is only reusable when three things agree: the
//! *user* being served, the *index epoch* the stripe was computed at,
//! and the *retrieval configuration* that produced it — arm kind, K,
//! serving dtype, IVF geometry, shard count. The first two are explicit
//! key fields; the third is folded into a 64-bit [`Fingerprint`] so
//! distinct arms (or the same arm at different K/nprobe/dtype) can share
//! one store without ever aliasing.
//!
//! **Epoch is excluded from the slot hash on purpose.** Equality checks
//! the full key, but [`CacheKey::slot_hash`] mixes only `(user,
//! fingerprint)` — so after a `bump_epoch`, a new-epoch probe lands in
//! the *same* probe window as the stale entry, recognises the
//! user/fingerprint match with a lagging epoch, and evicts it in place.
//! That is what makes invalidation lazy and O(1): no flush pass ever
//! walks the store, stale entries die on the next probe (or under
//! ordinary CLOCK pressure, whichever comes first).

/// Identity of one cached top-K result stripe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// User the stripe was retrieved for.
    pub user: u64,
    /// Index epoch the stripe was computed at (see
    /// `TopKEngine::bump_epoch` / `QuantizedIndex::bump_epoch`).
    pub epoch: u64,
    /// Retrieval-configuration fingerprint ([`Fingerprint::finish`]).
    pub arm_fingerprint: u64,
}

impl CacheKey {
    /// Slot-placement hash: mixes `user` and `arm_fingerprint` but *not*
    /// `epoch`, so stale-epoch entries stay discoverable (and evictable)
    /// by the probes that supersede them (module docs).
    #[must_use]
    pub fn slot_hash(&self) -> u64 {
        mix64(self.user ^ mix64(self.arm_fingerprint ^ 0x9E37_79B9_7F4A_7C15))
    }

    /// `true` when `other` is the same logical entry at an older epoch —
    /// the lazy-invalidation test applied during probes.
    #[must_use]
    pub fn supersedes(&self, other: &CacheKey) -> bool {
        self.user == other.user
            && self.arm_fingerprint == other.arm_fingerprint
            && self.epoch > other.epoch
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer (every input bit
/// flips each output bit with probability ~1/2), used for slot placement
/// and shard selection.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Incremental FNV-1a-style fingerprint of a retrieval configuration.
///
/// Callers fold the arm kind plus every knob that changes results or
/// their meaning (K, dtype, nlist/nprobe, shard count when it could
/// matter) and [`Fingerprint::finish`] the digest into
/// [`CacheKey::arm_fingerprint`]. Field *order* is significant — use one
/// canonical construction per arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Starts a fingerprint from the arm-kind label.
    #[must_use]
    pub fn new(kind: &str) -> Self {
        Self(Self::OFFSET).bytes(kind.as_bytes())
    }

    fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds one configuration field (label + value) into the digest.
    #[must_use]
    pub fn with(self, label: &str, value: u64) -> Self {
        self.bytes(label.as_bytes()).bytes(&value.to_le_bytes())
    }

    /// The finished 64-bit fingerprint, avalanche-mixed so low-entropy
    /// configurations still spread across the key space.
    #[must_use]
    pub fn finish(self) -> u64 {
        mix64(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_separate_arms_and_knobs() {
        let exact = Fingerprint::new("exact").with("k", 10).finish();
        let exact_k50 = Fingerprint::new("exact").with("k", 50).finish();
        let sharded = Fingerprint::new("sharded")
            .with("k", 10)
            .with("shards", 8)
            .finish();
        let ivf = Fingerprint::new("ivf")
            .with("k", 10)
            .with("nlist", 256)
            .with("nprobe", 8)
            .finish();
        let ivf_wide = Fingerprint::new("ivf")
            .with("k", 10)
            .with("nlist", 256)
            .with("nprobe", 16)
            .finish();
        let all = [exact, exact_k50, sharded, ivf, ivf_wide];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b, "fingerprint collision between configurations");
            }
        }
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let a = Fingerprint::new("quant").with("k", 10).with("dtype", 2);
        let b = Fingerprint::new("quant").with("k", 10).with("dtype", 2);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn slot_hash_ignores_epoch_but_equality_does_not() {
        let k0 = CacheKey {
            user: 42,
            epoch: 0,
            arm_fingerprint: 7,
        };
        let k1 = CacheKey { epoch: 1, ..k0 };
        assert_eq!(k0.slot_hash(), k1.slot_hash());
        assert_ne!(k0, k1);
        assert!(k1.supersedes(&k0));
        assert!(!k0.supersedes(&k1));
        assert!(!k1.supersedes(&k1));
        let other_user = CacheKey { user: 43, ..k1 };
        assert!(!other_user.supersedes(&k0));
    }

    #[test]
    fn slot_hash_spreads_users() {
        // Consecutive users must not collide in the low bits (slot index
        // is hash % capacity).
        let fp = Fingerprint::new("exact").with("k", 10).finish();
        let mut low: Vec<u64> = (0..64u64)
            .map(|user| {
                CacheKey {
                    user,
                    epoch: 0,
                    arm_fingerprint: fp,
                }
                .slot_hash()
                    % 1024
            })
            .collect();
        low.sort_unstable();
        low.dedup();
        assert!(low.len() > 56, "only {} distinct slots of 64", low.len());
    }
}
