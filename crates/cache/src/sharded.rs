//! The shared sharded result store (DESIGN.md section 17).
//!
//! One [`SharedCache`] serves every worker thread, so a hot user warmed
//! by worker 0 hits on worker 1 — under a head-heavy popularity law
//! that multiplies the effective capacity by the worker count compared
//! to per-worker stores. The price is synchronisation, paid at shard
//! granularity: the key space splits across `n_shards` independent
//! `Mutex<ClockCore>`s selected by high hash bits, so two probes
//! contend only when they land on the same shard (probability `1/N`
//! for unrelated keys). The critical section is a bounded window scan
//! plus one stripe memcpy — no allocation, no nested locks, no
//! condvars — so even a contended probe costs microseconds, far below
//! one dispatch. A sharded `Mutex` therefore beats both a global lock
//! (all workers serialise) and lock-free schemes (which cannot return
//! a consistent multi-word stripe without seqlock retries or epoch
//! reclamation, neither of which is std-only-friendly).

use std::sync::{Mutex, PoisonError};

use dt_metrics::CacheCounters;
use dt_tensor::topk::Ranked;

use crate::clock::ClockCore;
use crate::key::{mix64, CacheKey};
use crate::ResultCache;

/// A result cache shared across worker threads: `n_shards` independent
/// CLOCK stores behind per-shard mutexes.
#[derive(Debug)]
pub struct SharedCache {
    shards: Vec<Mutex<ClockCore>>,
}

impl SharedCache {
    /// A shared store of `capacity` total stripes of up to `k` entries,
    /// split evenly across `n_shards` locks (each shard holds
    /// `ceil(capacity / n_shards)` slots, so the total is at least
    /// `capacity`).
    ///
    /// # Panics
    /// Panics when `capacity`, `k` or `n_shards` is zero.
    #[must_use]
    pub fn new(capacity: usize, k: usize, n_shards: usize) -> Self {
        assert!(n_shards > 0, "SharedCache: n_shards must be positive");
        assert!(capacity > 0, "SharedCache: capacity must be positive");
        let per_shard = capacity.div_ceil(n_shards);
        let shards = (0..n_shards)
            .map(|_| Mutex::new(ClockCore::new(per_shard, k)))
            .collect();
        Self { shards }
    }

    /// Shard selection by the *high* hash bits — [`ClockCore`] indexes
    /// slots with the low bits of the same hash, so shard choice and
    /// in-shard placement stay uncorrelated.
    fn shard(&self, key: &CacheKey) -> &Mutex<ClockCore> {
        let h = mix64(key.slot_hash().rotate_left(32));
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn lock(m: &Mutex<ClockCore>) -> std::sync::MutexGuard<'_, ClockCore> {
        // A panicked holder cannot leave a torn store: every mutation is
        // complete at instruction boundaries, so poisoning is ignored
        // like the admission queue does.
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Probes the owning shard; on a hit the stripe is copied into
    /// `out` under the shard lock and its length returned.
    pub fn probe(&self, key: &CacheKey, out: &mut [Ranked]) -> Option<usize> {
        Self::lock(self.shard(key)).probe(key, out)
    }

    /// Inserts (or refreshes) `stripe` in the owning shard.
    ///
    /// # Panics
    /// Panics when `stripe` exceeds the slab width `k`.
    pub fn insert(&self, key: &CacheKey, stripe: &[Ranked]) {
        Self::lock(self.shard(key)).insert(key, stripe)
    }

    /// Counters summed over every shard (a consistent-enough snapshot:
    /// each shard is read under its own lock).
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        let mut total = CacheCounters::default();
        for shard in &self.shards {
            total.merge(&Self::lock(shard).counters());
        }
        total
    }

    /// Live entries summed over every shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// `true` when no shard stores any entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity across shards (≥ the constructor's request).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).capacity()).sum()
    }

    /// Number of independent shard locks.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Workers hold `&SharedCache` and still satisfy the `&mut self` trait
/// surface: the shared store's interior mutability lives behind the
/// shard locks.
impl ResultCache for &SharedCache {
    fn probe(&mut self, key: &CacheKey, out: &mut [Ranked]) -> Option<usize> {
        SharedCache::probe(self, key, out)
    }

    fn insert(&mut self, key: &CacheKey, stripe: &[Ranked]) {
        SharedCache::insert(self, key, stripe)
    }

    fn counters(&self) -> CacheCounters {
        SharedCache::counters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(user: u64, epoch: u64) -> CacheKey {
        CacheKey {
            user,
            epoch,
            arm_fingerprint: 0xCAFE,
        }
    }

    fn stripe(tag: u32) -> Vec<Ranked> {
        (0..3)
            .map(|i| Ranked {
                item: tag * 10 + i,
                score: f64::from(tag) - f64::from(i),
            })
            .collect()
    }

    #[test]
    fn round_trips_across_shards() {
        let c = SharedCache::new(64, 3, 4);
        assert_eq!(c.n_shards(), 4);
        assert!(c.capacity() >= 64);
        for u in 0..32 {
            c.insert(&key(u, 0), &stripe(u as u32));
        }
        let mut out = [Ranked::TOMBSTONE; 3];
        let mut hits = 0;
        for u in 0..32 {
            if let Some(n) = c.probe(&key(u, 0), &mut out) {
                assert_eq!(n, 3);
                assert_eq!(out[0].item, u as u32 * 10);
                hits += 1;
            }
        }
        // Capacity 64 over 32 inserts: everything fits (window-local
        // clustering can evict at worst a handful).
        assert!(hits >= 28, "only {hits}/32 hits");
        let counters = c.counters();
        assert_eq!(counters.probes(), 32);
        assert_eq!(counters.hits, hits);
    }

    #[test]
    fn keys_spread_over_multiple_shards() {
        let c = SharedCache::new(256, 2, 8);
        for u in 0..128 {
            c.insert(&key(u, 0), &stripe(1)[..2]);
        }
        let occupied = c
            .shards
            .iter()
            .filter(|s| SharedCache::lock(s).len() > 0)
            .count();
        assert!(occupied >= 6, "only {occupied}/8 shards used");
    }

    #[test]
    fn concurrent_insert_probe_is_consistent() {
        let c = SharedCache::new(128, 4, 4);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    let mut out = [Ranked::TOMBSTONE; 4];
                    for round in 0..200u64 {
                        let u = (t * 31 + round) % 64;
                        let tag = u as u32;
                        c.insert(&key(u, 0), &stripe(tag));
                        if let Some(n) = c.probe(&key(u, 0), &mut out) {
                            // Any hit must be a complete, untorn stripe
                            // for that exact user.
                            assert_eq!(n, 3);
                            assert_eq!(out[0].item, tag * 10);
                            assert_eq!(out[2].item, tag * 10 + 2);
                        }
                    }
                });
            }
        });
        assert!(c.len() <= c.capacity());
        let counters = c.counters();
        assert_eq!(counters.probes(), 4 * 200);
    }

    #[test]
    fn cross_worker_hit_through_shared_store() {
        // Worker A inserts; worker B (a different thread) must hit.
        let c = SharedCache::new(32, 3, 2);
        std::thread::scope(|s| {
            s.spawn(|| c.insert(&key(9, 4), &stripe(9)))
                .join()
                .expect("insert thread");
            let handle = s.spawn(|| {
                let mut out = [Ranked::TOMBSTONE; 3];
                c.probe(&key(9, 4), &mut out).map(|n| (n, out[0].item))
            });
            assert_eq!(handle.join().expect("probe thread"), Some((3, 90)));
        });
    }
}
