//! The open-addressed CLOCK result store (DESIGN.md section 17).
//!
//! One store is a fixed-capacity slot table plus a parallel stripe slab
//! of `(item id, score)` pairs, both sized at construction — probes and
//! inserts after that perform zero allocations, which is what lets the
//! per-worker store sit inside the zero-alloc serving loop. Placement is
//! open addressing: a key lives somewhere in the `PROBE_WINDOW` slots
//! starting at `slot_hash % capacity`, and both probe and insert scan
//! that whole window (never early-exiting on an empty slot, so stale
//! evictions cannot break lookup chains).
//!
//! Eviction is CLOCK/second-chance, windowed: every hit or insert sets
//! the slot's reference bit; when an insert finds its window full, a
//! hand sweeps the window clearing reference bits and evicts the first
//! slot found unreferenced (at most two passes). With `capacity ≤
//! PROBE_WINDOW` the window covers the whole table and this is textbook
//! CLOCK; larger tables run one independent clock per window, which
//! keeps eviction O(window) instead of O(capacity).
//!
//! Epoch invalidation is lazy (see [`crate::key`]): a probe or insert
//! that finds the same `(user, fingerprint)` at an older epoch drops it
//! on the spot and counts a stale eviction — `bump_epoch` itself never
//! touches the store.

use dt_metrics::CacheCounters;
use dt_tensor::topk::Ranked;

use crate::key::CacheKey;
use crate::ResultCache;

/// Slots scanned per probe/insert, starting at the key's base slot.
pub const PROBE_WINDOW: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: CacheKey,
    /// Filled stripe length (≤ k).
    len: u32,
    /// Slot holds a live entry.
    occupied: bool,
    /// CLOCK reference bit: set on hit/insert, cleared by the sweep.
    referenced: bool,
}

const EMPTY_SLOT: Slot = Slot {
    key: CacheKey {
        user: 0,
        epoch: 0,
        arm_fingerprint: 0,
    },
    len: 0,
    occupied: false,
    referenced: false,
};

/// The store shared by [`ClockCache`] (one per worker) and each shard of
/// [`crate::SharedCache`].
#[derive(Debug, Clone)]
pub(crate) struct ClockCore {
    slots: Vec<Slot>,
    /// `capacity × k` stripe slab, parallel to `slots`.
    stripes: Vec<Ranked>,
    k: usize,
    window: usize,
    /// Sweep start offset within a window, advanced past each victim so
    /// consecutive evictions rotate through the window.
    hand: usize,
    live: usize,
    counters: CacheCounters,
}

impl ClockCore {
    pub(crate) fn new(capacity: usize, k: usize) -> Self {
        assert!(capacity > 0, "result cache: capacity must be positive");
        assert!(k > 0, "result cache: k must be positive");
        Self {
            slots: vec![EMPTY_SLOT; capacity], // alloc-ok: construction-time slab
            stripes: vec![Ranked::TOMBSTONE; capacity * k], // alloc-ok: construction-time slab
            k,
            window: PROBE_WINDOW.min(capacity),
            hand: 0,
            live: 0,
            counters: CacheCounters::default(),
        }
    }

    fn base(&self, key: &CacheKey) -> usize {
        (key.slot_hash() % self.slots.len() as u64) as usize
    }

    /// Drops the entry in `idx` because `key` supersedes it.
    fn evict_stale(&mut self, idx: usize) {
        self.slots[idx].occupied = false;
        self.slots[idx].referenced = false;
        self.live -= 1;
        self.counters.stale_evictions += 1;
    }

    fn write(&mut self, idx: usize, key: &CacheKey, stripe: &[Ranked]) {
        self.slots[idx] = Slot {
            key: *key,
            len: stripe.len() as u32,
            occupied: true,
            referenced: true,
        };
        self.stripes[idx * self.k..idx * self.k + stripe.len()].copy_from_slice(stripe);
    }

    pub(crate) fn probe(&mut self, key: &CacheKey, out: &mut [Ranked]) -> Option<usize> {
        let base = self.base(key);
        let cap = self.slots.len();
        for i in 0..self.window {
            let idx = (base + i) % cap;
            if !self.slots[idx].occupied {
                continue;
            }
            if self.slots[idx].key == *key {
                self.slots[idx].referenced = true;
                let n = self.slots[idx].len as usize;
                assert!(
                    out.len() >= n,
                    "result cache: probe output holds {} slots, stripe has {n}",
                    out.len()
                );
                out[..n].copy_from_slice(&self.stripes[idx * self.k..idx * self.k + n]);
                self.counters.hits += 1;
                return Some(n);
            }
            if key.supersedes(&self.slots[idx].key) {
                // Same user/arm at an older epoch: lazily invalidate and
                // keep scanning (the current-epoch entry, if any, sits
                // elsewhere in this same window).
                self.evict_stale(idx);
            }
        }
        self.counters.misses += 1;
        None
    }

    pub(crate) fn insert(&mut self, key: &CacheKey, stripe: &[Ranked]) {
        assert!(
            stripe.len() <= self.k,
            "result cache: stripe of {} exceeds slab width {}",
            stripe.len(),
            self.k
        );
        let base = self.base(key);
        let cap = self.slots.len();
        let mut free: Option<usize> = None;
        for i in 0..self.window {
            let idx = (base + i) % cap;
            if self.slots[idx].occupied {
                if self.slots[idx].key == *key {
                    // Refresh in place (same key re-dispatched, e.g. a
                    // duplicate user inside one batch).
                    self.write(idx, key, stripe);
                    return;
                }
                if key.supersedes(&self.slots[idx].key) {
                    self.evict_stale(idx);
                    free.get_or_insert(idx);
                }
            } else {
                free.get_or_insert(idx);
            }
        }
        if let Some(idx) = free {
            self.write(idx, key, stripe);
            self.live += 1;
            return;
        }
        // Window full of live entries: second-chance sweep. Referenced
        // slots spend their reference bit and survive; the first
        // unreferenced slot is the victim. After one full clearing pass
        // every slot is unreferenced, so the sweep terminates within two
        // window lengths.
        let start = self.hand;
        let mut i = 0;
        let victim = loop {
            let idx = (base + (start + i) % self.window) % cap;
            if self.slots[idx].referenced {
                self.slots[idx].referenced = false;
                i += 1;
            } else {
                break idx;
            }
        };
        self.hand = (start + i + 1) % self.window;
        self.counters.evictions += 1;
        self.write(victim, key, stripe);
    }

    pub(crate) fn counters(&self) -> CacheCounters {
        self.counters
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn k(&self) -> usize {
        self.k
    }
}

/// A per-worker result cache: one [`ClockCore`] owned by a single
/// thread. No locks anywhere — the worker's serving loop probes before
/// dispatch and inserts after, and both are plain slice scans.
#[derive(Debug, Clone)]
pub struct ClockCache {
    core: ClockCore,
}

impl ClockCache {
    /// A store holding at most `capacity` stripes of up to `k` entries.
    /// Both slabs are allocated here, once; probes and inserts never
    /// allocate.
    ///
    /// # Panics
    /// Panics when `capacity` or `k` is zero.
    #[must_use]
    pub fn new(capacity: usize, k: usize) -> Self {
        Self {
            core: ClockCore::new(capacity, k),
        }
    }

    /// Live entries currently stored (≤ capacity, by construction).
    #[must_use]
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// `true` when no entry is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.core.len() == 0
    }

    /// The fixed slot count chosen at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// The stripe slab width (maximum cached K).
    #[must_use]
    pub fn k(&self) -> usize {
        self.core.k()
    }
}

impl ResultCache for ClockCache {
    fn probe(&mut self, key: &CacheKey, out: &mut [Ranked]) -> Option<usize> {
        self.core.probe(key, out)
    }

    fn insert(&mut self, key: &CacheKey, stripe: &[Ranked]) {
        self.core.insert(key, stripe)
    }

    fn counters(&self) -> CacheCounters {
        self.core.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(user: u64, epoch: u64) -> CacheKey {
        CacheKey {
            user,
            epoch,
            arm_fingerprint: 0xFEED,
        }
    }

    fn stripe(tag: u32, n: usize) -> Vec<Ranked> {
        (0..n)
            .map(|i| Ranked {
                item: tag * 100 + i as u32,
                score: f64::from(tag) - i as f64 * 0.125,
            })
            .collect()
    }

    #[test]
    fn probe_returns_exact_inserted_bits() {
        let mut c = ClockCache::new(16, 4);
        let s = stripe(3, 3);
        c.insert(&key(7, 0), &s);
        let mut out = [Ranked::TOMBSTONE; 4];
        let n = c.probe(&key(7, 0), &mut out).expect("hit");
        assert_eq!(n, 3);
        for (got, want) in out[..3].iter().zip(&s) {
            assert_eq!(got.item, want.item);
            assert_eq!(got.score.to_bits(), want.score.to_bits());
        }
        assert!(out[3].is_tombstone(), "slots past the stripe untouched");
        let counters = c.counters();
        assert_eq!((counters.hits, counters.misses), (1, 0));
    }

    #[test]
    fn miss_and_reinsert_refreshes_in_place() {
        let mut c = ClockCache::new(8, 2);
        let mut out = [Ranked::TOMBSTONE; 2];
        assert!(c.probe(&key(1, 0), &mut out).is_none());
        c.insert(&key(1, 0), &stripe(1, 2));
        c.insert(&key(1, 0), &stripe(9, 1));
        assert_eq!(c.len(), 1, "refresh must not duplicate the entry");
        let n = c.probe(&key(1, 0), &mut out).expect("hit");
        assert_eq!(n, 1);
        assert_eq!(out[0].item, 900);
    }

    #[test]
    fn stale_epoch_is_never_served_and_is_evicted_on_probe() {
        let mut c = ClockCache::new(8, 2);
        c.insert(&key(5, 0), &stripe(5, 2));
        let mut out = [Ranked::TOMBSTONE; 2];
        // Newer-epoch probe: miss, and the stale entry dies in place.
        assert!(c.probe(&key(5, 1), &mut out).is_none());
        assert_eq!(c.counters().stale_evictions, 1);
        assert_eq!(c.len(), 0);
        // The old-epoch key is gone too (it was the same slot).
        assert!(c.probe(&key(5, 0), &mut out).is_none());
        // An older-epoch probe never serves a newer entry either.
        c.insert(&key(5, 3), &stripe(7, 2));
        assert!(c.probe(&key(5, 2), &mut out).is_none());
        assert_eq!(
            c.counters().stale_evictions,
            1,
            "older probe must not evict a newer entry"
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_at_newer_epoch_displaces_the_stale_entry() {
        let mut c = ClockCache::new(4, 2);
        c.insert(&key(2, 0), &stripe(1, 2));
        c.insert(&key(2, 1), &stripe(2, 2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.counters().stale_evictions, 1);
        let mut out = [Ranked::TOMBSTONE; 2];
        assert!(c.probe(&key(2, 0), &mut out).is_none());
        assert_eq!(c.probe(&key(2, 1), &mut out), Some(2));
    }

    #[test]
    fn capacity_is_never_exceeded_and_evictions_are_counted() {
        let mut c = ClockCache::new(4, 2);
        for u in 0..9 {
            c.insert(&key(u, 0), &stripe(u as u32, 2));
            assert!(c.len() <= 4, "live {} exceeds capacity", c.len());
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.counters().evictions, 5);
    }

    #[test]
    fn referenced_entries_get_a_second_chance() {
        // Fill the table, force one eviction (which clears every
        // reference bit), then re-reference one survivor: the next
        // eviction must pick an unreferenced slot, never the survivor.
        let mut c = ClockCache::new(4, 2);
        for u in 0..4 {
            c.insert(&key(u, 0), &stripe(u as u32, 2));
        }
        c.insert(&key(100, 0), &stripe(100, 2));
        let mut out = [Ranked::TOMBSTONE; 2];
        let survivor = (0..4)
            .find(|&u| c.probe(&key(u, 0), &mut out).is_some())
            .expect("three of the first four entries survive");
        c.insert(&key(200, 0), &stripe(200, 2));
        assert!(
            c.probe(&key(survivor, 0), &mut out).is_some(),
            "referenced entry was evicted ahead of unreferenced ones"
        );
        assert!(c.probe(&key(200, 0), &mut out).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ClockCache::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds slab width")]
    fn oversized_stripe_panics() {
        let mut c = ClockCache::new(4, 2);
        c.insert(&key(0, 0), &stripe(0, 3));
    }
}
