//! Statistically-matched simulators for the paper's real evaluation
//! datasets: COAT, Yahoo! R3 and KuaiRec.
//!
//! The defining structure of all three is an **MNAR training log** (users
//! self-select, with the realized preference influencing selection) paired
//! with an **unbiased test set**:
//!
//! * **COAT** — 290 users × 300 items; every user rates 24 self-selected
//!   items (MNAR) *and* 16 uniformly-random items (MAR test).
//! * **Yahoo! R3** — 15,400 users × 1,000 items; ≈311k self-selected
//!   ratings plus a random-item test slice.
//! * **KuaiRec** — 7,176 users × 10,728 videos of MNAR watch-ratios, with a
//!   *fully observed* dense user×item block as the unbiased test matrix.
//!
//! Each simulator reproduces the user/item scale (the larger two default to
//! a documented scale-down for CI runtime; pass `full_scale = true` for the
//! paper's dimensions), the per-user selection protocol, and a separable
//! logistic MNAR mechanism with configurable rating dependence.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use dt_stats::{expit, sample_bernoulli, sample_categorical};
use dt_tensor::Tensor;

use crate::dataset::{Dataset, GroundTruth};
use crate::interactions::{Interaction, InteractionLog};

/// Common knobs of the real-world simulators.
#[derive(Clone, Copy, Debug)]
pub struct RealWorldConfig {
    /// RNG seed.
    pub seed: u64,
    /// Strength of the `r → o` edge in the selection mechanism.
    pub rating_effect: f64,
    /// Use the paper's full dimensions instead of the scaled defaults
    /// (affects YAHOO and KUAIREC only).
    pub full_scale: bool,
    /// Attach oracle ground truth (costs `O(users × items)` memory).
    pub with_truth: bool,
}

impl Default for RealWorldConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            rating_effect: 1.5,
            full_scale: false,
            with_truth: false,
        }
    }
}

/// Shared latent world: a preference surface plus realized binary ratings.
struct World {
    preference: Tensor,
    ratings: Tensor,
}

fn latent_world(m: usize, n: usize, rng: &mut StdRng) -> World {
    let d = 10;
    let u = dt_tensor::normal(m, d, 0.0, 1.0 / (d as f64).sqrt(), rng);
    let v = dt_tensor::normal(n, d, 0.0, 1.0, rng);
    let ub = dt_tensor::normal(m, 1, 0.0, 0.4, rng);
    let ib = dt_tensor::normal(1, n, 0.0, 0.6, rng);
    let score = u
        .matmul_nt(&v)
        .add_col_broadcast(&ub)
        .add_row_broadcast(&ib);
    let mean = score.mean();
    let std = score
        .map(|s| (s - mean) * (s - mean))
        .mean()
        .sqrt()
        .max(1e-12);
    let preference = score.map(|s| expit(1.2 * (s - mean) / std - 0.4));
    let ratings = Tensor::from_fn(m, n, |i, j| {
        f64::from(sample_bernoulli(preference.get(i, j), rng))
    });
    World {
        preference,
        ratings,
    }
}

/// Per-user self-selection: each user picks `k` distinct items with
/// probability proportional to `exp(effect · r + pop_j)` — liking an item
/// (and its popularity) makes rating it more likely. Returns the chosen
/// item indices.
fn self_select(
    world: &World,
    user: usize,
    k: usize,
    rating_effect: f64,
    item_pop: &[f64],
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = world.ratings.cols();
    let mut weights: Vec<f64> = (0..n)
        .map(|j| (rating_effect * world.ratings.get(user, j) + item_pop[j]).exp())
        .collect();
    let mut chosen = Vec::with_capacity(k);
    for _ in 0..k.min(n) {
        let j = sample_categorical(&weights, rng);
        chosen.push(j);
        weights[j] = 0.0;
    }
    chosen
}

/// Computes the per-pair MNAR selection propensity implied by repeating the
/// weighted without-replacement draw; approximated by the normalised weight
/// times the number of draws (exact in the small-k limit), clamped to 1.
fn selection_propensity(world: &World, rating_effect: f64, item_pop: &[f64], k: usize) -> Tensor {
    let (m, n) = (world.ratings.rows(), world.ratings.cols());
    let mut p = Tensor::zeros(m, n);
    for i in 0..m {
        let weights: Vec<f64> = (0..n)
            .map(|j| (rating_effect * world.ratings.get(i, j) + item_pop[j]).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        for (j, w) in weights.iter().enumerate() {
            p.set(i, j, (k as f64 * w / total).min(1.0));
        }
    }
    p
}

/// Marginalises the selection propensity over the rating distribution,
/// producing the MAR propensity `P(o|x)`.
fn marginal_propensity(world: &World, propensity_xr: &Tensor, rating_effect: f64) -> Tensor {
    let (m, n) = (propensity_xr.rows(), propensity_xr.cols());
    Tensor::from_fn(m, n, |i, j| {
        let eta = world.preference.get(i, j);
        let p_here = propensity_xr.get(i, j);
        let r_here = world.ratings.get(i, j);
        // weight ratio between r=1 and r=0 is e^effect; convert the realized
        // propensity into both counterfactuals, then mix.
        let boost = rating_effect.exp();
        let (p1, p0) = if r_here > 0.5 {
            (p_here, (p_here / boost).min(1.0))
        } else {
            ((p_here * boost).min(1.0), p_here)
        };
        (eta * p1 + (1.0 - eta) * p0).min(1.0)
    })
}

fn item_popularity(n: usize, rng: &mut StdRng) -> Vec<f64> {
    // Log-normal-ish popularity skew, as in real catalogues.
    (0..n)
        .map(|_| 0.8 * rng.gen::<f64>() + 0.6 * rng.gen::<f64>().powi(3))
        .collect()
}

/// COAT-like dataset: 290×300, 24 self-selected (MNAR) + 16 random (MAR)
/// ratings per user.
#[must_use]
pub fn coat_like(cfg: &RealWorldConfig) -> Dataset {
    build_selection_dataset("coat-like", 290, 300, 24, 16, cfg)
}

/// Yahoo-R3-like dataset. Scaled default: 3,080 users × 1,000 items with
/// ≈20 MNAR ratings/user; `full_scale` restores 15,400 users.
#[must_use]
pub fn yahoo_like(cfg: &RealWorldConfig) -> Dataset {
    let users = if cfg.full_scale { 15_400 } else { 3_080 };
    build_selection_dataset("yahoo-like", users, 1_000, 20, 10, cfg)
}

/// KuaiRec-like dataset: MNAR watch-ratio log plus a *fully observed* dense
/// user×item test block (KuaiRec's distinguishing feature). Scaled default
/// 1,794×2,682; `full_scale` restores 7,176×10,728.
#[must_use]
pub fn kuairec_like(cfg: &RealWorldConfig) -> Dataset {
    let (m, n) = if cfg.full_scale {
        (7_176, 10_728)
    } else {
        (1_794, 2_682)
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fxhash("kuairec-like"));
    let world = latent_world(m, n, &mut rng);
    let pop = item_popularity(n, &mut rng);

    // Dense MNAR interaction log (KuaiRec is ~16% dense): per-user count
    // scales with an activity level.
    let per_user_base = n / 18;
    let mut train = InteractionLog::new(m, n);
    for i in 0..m {
        let activity = 0.5 + 1.5 * rng.gen::<f64>();
        let k = ((per_user_base as f64) * activity) as usize;
        for j in self_select(&world, i, k, cfg.rating_effect, &pop, &mut rng) {
            train.push(Interaction::new(
                i as u32,
                j as u32,
                world.ratings.get(i, j),
            ));
        }
    }

    // Fully observed dense block: the first `bu` users × `bi` items
    // (excluded pairs that appear in train are fine — test labels are the
    // ground-truth ratings either way).
    let (bu, bi) = (m.min(250), n.min(400));
    let mut test = InteractionLog::new(m, n);
    for i in 0..bu {
        for j in 0..bi {
            test.push(Interaction::new(
                i as u32,
                j as u32,
                world.ratings.get(i, j),
            ));
        }
    }

    let truth = cfg.with_truth.then(|| {
        let k_mean = per_user_base as f64 * 1.25;
        let propensity_xr = selection_propensity(&world, cfg.rating_effect, &pop, k_mean as usize);
        let propensity_x = marginal_propensity(&world, &propensity_xr, cfg.rating_effect);
        GroundTruth {
            preference: world.preference.clone(),
            propensity_xr,
            propensity_x,
            ratings: world.ratings.clone(),
        }
    });

    let ds = Dataset {
        name: "kuairec-like".into(),
        n_users: m,
        n_items: n,
        train,
        test,
        truth,
    };
    ds.validate();
    ds
}

/// Shared builder for the COAT/YAHOO protocol: `k_mnar` self-selected
/// training ratings per user plus `k_mar` uniformly-random test ratings.
fn build_selection_dataset(
    name: &str,
    m: usize,
    n: usize,
    k_mnar: usize,
    k_mar: usize,
    cfg: &RealWorldConfig,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fxhash(name));
    let world = latent_world(m, n, &mut rng);
    let pop = item_popularity(n, &mut rng);

    let mut train = InteractionLog::new(m, n);
    for i in 0..m {
        for j in self_select(&world, i, k_mnar, cfg.rating_effect, &pop, &mut rng) {
            train.push(Interaction::new(
                i as u32,
                j as u32,
                world.ratings.get(i, j),
            ));
        }
    }

    let mut test = InteractionLog::new(m, n);
    for i in 0..m {
        for j in rand::seq::index::sample(&mut rng, n, k_mar.min(n)) {
            test.push(Interaction::new(
                i as u32,
                j as u32,
                world.ratings.get(i, j),
            ));
        }
    }

    let truth = cfg.with_truth.then(|| {
        let propensity_xr = selection_propensity(&world, cfg.rating_effect, &pop, k_mnar);
        let propensity_x = marginal_propensity(&world, &propensity_xr, cfg.rating_effect);
        GroundTruth {
            preference: world.preference.clone(),
            propensity_xr,
            propensity_x,
            ratings: world.ratings.clone(),
        }
    });

    let ds = Dataset {
        name: name.into(),
        n_users: m,
        n_items: n,
        train,
        test,
        truth,
    };
    ds.validate();
    ds
}

/// Tiny deterministic string hash for seed mixing.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RealWorldConfig {
        RealWorldConfig {
            with_truth: true,
            ..RealWorldConfig::default()
        }
    }

    #[test]
    fn coat_matches_paper_protocol() {
        let ds = coat_like(&cfg());
        assert_eq!(ds.n_users, 290);
        assert_eq!(ds.n_items, 300);
        assert_eq!(ds.train.len(), 290 * 24, "6,960 MNAR ratings");
        assert_eq!(ds.test.len(), 290 * 16, "4,640 MAR ratings");
        // Every user has exactly 24 train interactions.
        assert!(ds.train.user_counts().iter().all(|&c| c == 24));
    }

    #[test]
    fn coat_training_log_is_positively_biased() {
        let ds = coat_like(&cfg());
        let train_pos = ds.train.mean_rating();
        let test_pos = ds.test.mean_rating();
        assert!(
            train_pos > test_pos + 0.05,
            "MNAR train positives {train_pos} vs MAR test {test_pos}"
        );
    }

    #[test]
    fn oracle_propensities_are_mnar() {
        let ds = coat_like(&cfg());
        let t = ds.truth.unwrap();
        t.validate();
        // Realized-rating propensity differs from the marginal one.
        let diff = t.propensity_xr.sub(&t.propensity_x).map(f64::abs).mean();
        assert!(diff > 1e-3, "mean |p_xr − p_x| = {diff}");
    }

    #[test]
    fn yahoo_scaled_shape() {
        let ds = yahoo_like(&RealWorldConfig::default());
        assert_eq!(ds.n_users, 3_080);
        assert_eq!(ds.n_items, 1_000);
        assert_eq!(ds.train.len(), 3_080 * 20);
        assert_eq!(ds.test.len(), 3_080 * 10);
        assert!(ds.truth.is_none(), "truth skipped by default");
    }

    #[test]
    fn kuairec_has_dense_test_block() {
        let ds = kuairec_like(&RealWorldConfig::default());
        assert_eq!(ds.n_users, 1_794);
        assert_eq!(ds.n_items, 2_682);
        assert_eq!(ds.test.len(), 250 * 400, "fully observed block");
        // Train is much denser than coat/yahoo (KuaiRec's hallmark).
        assert!(ds.train.density() > 0.03, "density {}", ds.train.density());
    }

    #[test]
    fn no_duplicate_train_pairs_per_user() {
        let ds = coat_like(&cfg());
        let mut seen = std::collections::HashSet::new();
        for it in ds.train.interactions() {
            assert!(seen.insert((it.user, it.item)), "duplicate pair");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = coat_like(&cfg());
        let b = coat_like(&cfg());
        assert_eq!(a.train.interactions(), b.train.interactions());
    }

    #[test]
    fn rating_effect_zero_removes_selection_bias() {
        let mut c = cfg();
        c.rating_effect = 0.0;
        let ds = coat_like(&c);
        let gap = (ds.train.mean_rating() - ds.test.mean_rating()).abs();
        assert!(gap < 0.06, "popularity-only selection gap {gap}");
    }
}
