//! # dt-data
//!
//! Data substrate for the `disrec` workspace: interaction logs, the three
//! missing-data mechanisms (MCAR / MAR / MNAR) as explicit generators with
//! oracle propensities, the paper's semi-synthetic ML-100K pipeline
//! (Section V, Steps 1–3), statistically-matched simulators for the COAT /
//! YAHOO / KUAIREC evaluation datasets, parsers for the real on-disk
//! formats, and batching/splitting utilities.
//!
//! ## Why simulators?
//!
//! The paper evaluates on MovieLens-100K, COAT, Yahoo! R3 and KuaiRec.
//! Those downloads are unavailable offline, so each is replaced by a
//! generator that reproduces the property the evaluation hinges on — an
//! **MNAR training log** (users select what they rate, with the rating
//! itself influencing selection) paired with an **unbiased (MCAR/MAR) test
//! set**. Unlike the real data, the simulators also expose the ground-truth
//! preference and propensity matrices, which lets the test suite check
//! estimator bias *exactly* (see `dt-estimators`).

#![forbid(unsafe_code)]

mod batch;
mod binser;
mod dataset;
mod interactions;
mod parsers;
mod realworld;
mod semisynthetic;
mod sparsify;
mod split;
mod synthetic;

pub use batch::{uniform_pairs, BatchIter, EpochPlan};
pub use binser::{decode_log, encode_log, DecodeError};
pub use dataset::{Dataset, GroundTruth};
pub use interactions::{Interaction, InteractionLog, Pair, PairSet};
pub use parsers::{parse_coat_ascii, parse_movielens, parse_yahoo_triples, ParseError};
pub use realworld::{coat_like, kuairec_like, yahoo_like, RealWorldConfig};
pub use semisynthetic::{ml100k_like, semi_synthetic, MfCompletion, SemiSyntheticConfig};
pub use sparsify::sparsify;
pub use split::{holdout_split, leave_k_out};
pub use synthetic::{mechanism_dataset, Mechanism, MechanismConfig};
