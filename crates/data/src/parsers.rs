//! Parsers for the real datasets' on-disk formats.
//!
//! A downstream user with the actual downloads can feed them straight into
//! the experiment harness:
//!
//! * MovieLens-100K `u.data` — tab-separated `user \t item \t rating \t ts`
//!   with **1-based** ids.
//! * COAT `train.ascii` / `test.ascii` — a dense space-separated matrix,
//!   one row per user, `0` meaning unobserved.
//! * Yahoo! R3 `ydata-*.txt` — `user \t item \t rating` triples, 1-based.

use std::io::BufRead;

use crate::interactions::{Interaction, InteractionLog};

/// Error raised by the dataset parsers.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed line with its 1-based line number.
    Malformed(usize, String),
    /// An id was zero where 1-based ids were expected.
    ZeroId(usize),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(line, s) => write!(f, "line {line}: malformed record {s:?}"),
            ParseError::ZeroId(line) => write!(f, "line {line}: zero id in 1-based format"),
            ParseError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses MovieLens `u.data` (tab-separated, 1-based ids, trailing
/// timestamp ignored). The space is sized by the maximum ids seen.
///
/// # Errors
/// Returns [`ParseError`] on malformed records or zero ids.
pub fn parse_movielens(reader: impl BufRead) -> Result<InteractionLog, ParseError> {
    parse_triples(reader, '\t', true)
}

/// Parses Yahoo! R3 triple files (`user \t item \t rating`, 1-based ids).
///
/// # Errors
/// Returns [`ParseError`] on malformed records or zero ids.
pub fn parse_yahoo_triples(reader: impl BufRead) -> Result<InteractionLog, ParseError> {
    parse_triples(reader, '\t', true)
}

fn parse_triples(
    reader: impl BufRead,
    sep: char,
    one_based: bool,
) -> Result<InteractionLog, ParseError> {
    let mut entries: Vec<(u32, u32, f64)> = Vec::new();
    let (mut max_u, mut max_i) = (0u32, 0u32);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(sep).filter(|s| !s.is_empty());
        let (u, i, r) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(i), Some(r)) => (u, i, r),
            _ => return Err(ParseError::Malformed(lineno + 1, line.to_string())),
        };
        let parse_id = |s: &str| -> Result<u32, ParseError> {
            s.parse::<u32>()
                .map_err(|_| ParseError::Malformed(lineno + 1, line.to_string()))
        };
        let mut u: u32 = parse_id(u)?;
        let mut i: u32 = parse_id(i)?;
        let r: f64 = r
            .parse()
            .map_err(|_| ParseError::Malformed(lineno + 1, line.to_string()))?;
        if one_based {
            if u == 0 || i == 0 {
                return Err(ParseError::ZeroId(lineno + 1));
            }
            u -= 1;
            i -= 1;
        }
        max_u = max_u.max(u);
        max_i = max_i.max(i);
        entries.push((u, i, r));
    }
    let mut log = InteractionLog::new(max_u as usize + 1, max_i as usize + 1);
    for (u, i, r) in entries {
        log.push(Interaction::new(u, i, r));
    }
    Ok(log)
}

/// Parses a COAT-style dense ASCII matrix: one row per user, space-separated
/// integer ratings, `0` = unobserved.
///
/// # Errors
/// Returns [`ParseError`] on ragged rows or non-numeric cells.
pub fn parse_coat_ascii(reader: impl BufRead) -> Result<InteractionLog, ParseError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line
            .split_whitespace()
            .map(|tok| {
                tok.parse::<f64>()
                    .map_err(|_| ParseError::Malformed(lineno + 1, tok.to_string()))
            })
            .collect();
        let row = row?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(ParseError::Malformed(lineno + 1, "ragged row".into()));
            }
        }
        rows.push(row);
    }
    let n_items = rows.first().map_or(0, Vec::len);
    let mut log = InteractionLog::new(rows.len(), n_items);
    for (u, row) in rows.iter().enumerate() {
        for (i, &r) in row.iter().enumerate() {
            if r != 0.0 {
                log.push(Interaction::new(u as u32, i as u32, r));
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn movielens_roundtrip() {
        let data = "1\t2\t5\t881250949\n3\t1\t3\t891717742\n";
        let log = parse_movielens(Cursor::new(data)).unwrap();
        assert_eq!(log.n_users(), 3);
        assert_eq!(log.n_items(), 2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.interactions()[0], Interaction::new(0, 1, 5.0));
        assert_eq!(log.interactions()[1], Interaction::new(2, 0, 3.0));
    }

    #[test]
    fn movielens_rejects_zero_ids() {
        let err = parse_movielens(Cursor::new("0\t2\t5\t0\n")).unwrap_err();
        assert!(matches!(err, ParseError::ZeroId(1)));
    }

    #[test]
    fn movielens_rejects_garbage() {
        let err = parse_movielens(Cursor::new("1\tnope\t5\t0\n")).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(1, _)));
    }

    #[test]
    fn yahoo_triples_without_timestamp() {
        let log = parse_yahoo_triples(Cursor::new("1\t1\t4\n2\t3\t1\n\n")).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.n_items(), 3);
    }

    #[test]
    fn coat_ascii_skips_zeros() {
        let data = "5 0 3\n0 0 1\n";
        let log = parse_coat_ascii(Cursor::new(data)).unwrap();
        assert_eq!(log.n_users(), 2);
        assert_eq!(log.n_items(), 3);
        assert_eq!(log.len(), 3);
        assert_eq!(log.interactions()[0], Interaction::new(0, 0, 5.0));
        assert_eq!(log.interactions()[2], Interaction::new(1, 2, 1.0));
    }

    #[test]
    fn coat_ascii_rejects_ragged_rows() {
        let err = parse_coat_ascii(Cursor::new("1 2 3\n1 2\n")).unwrap_err();
        assert!(matches!(err, ParseError::Malformed(2, _)));
    }

    #[test]
    fn empty_input_gives_empty_log() {
        let log = parse_coat_ascii(Cursor::new("")).unwrap();
        assert!(log.is_empty());
    }
}
