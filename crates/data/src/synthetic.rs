//! The three missing-data mechanisms (paper §III) as explicit generators.
//!
//! Each generator produces a full latent-factor preference surface, realizes
//! binary ratings, and then hides entries according to one of the causal
//! graphs in the paper's Figure 1:
//!
//! * **MCAR** — `P(o=1)` constant: neither features nor ratings affect
//!   observation.
//! * **MAR** — `P(o=1|x)` depends on the (fully observed) feature score
//!   only: the `x → o` edge.
//! * **MNAR** — `P(o=1|x,r)` additionally depends on the realized rating:
//!   the `r → o` edge, via the *separable logistic* form
//!   `σ(q(x) + g(r))` of the paper's Theorem 1.
//!
//! The oracle MAR and MNAR propensities are both recorded so that the bias
//! grid of Table I can be measured exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_stats::{expit, sample_bernoulli};
use dt_tensor::Tensor;

use crate::dataset::{Dataset, GroundTruth};
use crate::interactions::{Interaction, InteractionLog};

/// The missing-data mechanism of the paper's Figure 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mechanism {
    /// Missing completely at random: `o ⟂ (x, r)`.
    Mcar,
    /// Missing at random: `o ⟂ r | x`.
    Mar,
    /// Missing not at random: `o ⊥̸ r | x`.
    Mnar,
}

impl Mechanism {
    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Mechanism::Mcar => "MCAR",
            Mechanism::Mar => "MAR",
            Mechanism::Mnar => "MNAR",
        }
    }
}

/// Configuration for [`mechanism_dataset`].
#[derive(Clone, Copy, Debug)]
pub struct MechanismConfig {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Latent dimension of the preference model.
    pub latent_dim: usize,
    /// Target mean observation rate (calibrated by intercept search).
    pub target_density: f64,
    /// Strength of the `x → o` edge (ignored under MCAR).
    pub feature_effect: f64,
    /// Strength of the `r → o` edge (used only under MNAR).
    pub rating_effect: f64,
    /// Number of MCAR test ratings revealed per user.
    pub test_per_user: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MechanismConfig {
    fn default() -> Self {
        Self {
            n_users: 200,
            n_items: 300,
            latent_dim: 8,
            target_density: 0.05,
            feature_effect: 1.0,
            rating_effect: 2.0,
            test_per_user: 10,
            seed: 0,
        }
    }
}

/// Generates a dataset under the requested mechanism with full oracle
/// ground truth.
///
/// # Panics
/// Panics on degenerate configuration (empty space, density outside (0,1)).
#[must_use]
pub fn mechanism_dataset(mechanism: Mechanism, cfg: &MechanismConfig) -> Dataset {
    assert!(cfg.n_users > 0 && cfg.n_items > 0, "empty space");
    assert!(
        cfg.target_density > 0.0 && cfg.target_density < 1.0,
        "target_density must be in (0,1)"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (m, n, d) = (cfg.n_users, cfg.n_items, cfg.latent_dim);

    // Latent preference surface.
    let u = dt_tensor::normal(m, d, 0.0, 1.0 / (d as f64).sqrt(), &mut rng);
    let v = dt_tensor::normal(n, d, 0.0, 1.0, &mut rng);
    let user_bias = dt_tensor::normal(m, 1, 0.0, 0.3, &mut rng);
    let item_bias = dt_tensor::normal(1, n, 0.0, 0.3, &mut rng);
    let score = u
        .matmul_nt(&v)
        .add_col_broadcast(&user_bias)
        .add_row_broadcast(&item_bias);

    // Standardize the score so effect sizes are comparable across configs.
    let mean = score.mean();
    let std = (score.map(|s| (s - mean) * (s - mean)).mean())
        .sqrt()
        .max(1e-12);
    let z = score.map(|s| (s - mean) / std);

    let preference = z.map(expit);
    let ratings = Tensor::from_fn(m, n, |i, j| {
        f64::from(sample_bernoulli(preference.get(i, j), &mut rng))
    });

    // Observation logits, with the intercept calibrated by bisection to hit
    // the target density exactly in expectation.
    let logit_wo_intercept = |i: usize, j: usize| -> f64 {
        match mechanism {
            Mechanism::Mcar => 0.0,
            Mechanism::Mar => cfg.feature_effect * z.get(i, j),
            Mechanism::Mnar => {
                cfg.feature_effect * z.get(i, j)
                    + cfg.rating_effect * (2.0 * ratings.get(i, j) - 1.0)
            }
        }
    };
    let mean_prop = |a: f64| -> f64 {
        let mut s = 0.0;
        for i in 0..m {
            for j in 0..n {
                s += expit(a + logit_wo_intercept(i, j));
            }
        }
        s / (m * n) as f64
    };
    let intercept = bisect_intercept(cfg.target_density, mean_prop);

    let propensity_xr = Tensor::from_fn(m, n, |i, j| expit(intercept + logit_wo_intercept(i, j)));
    let propensity_x = match mechanism {
        Mechanism::Mcar | Mechanism::Mar => propensity_xr.clone(),
        Mechanism::Mnar => Tensor::from_fn(m, n, |i, j| {
            // Marginalise the rating out: P(o|x) = Σ_r P(o|x,r)·P(r|x).
            let eta = preference.get(i, j);
            let base = cfg.feature_effect * z.get(i, j);
            let p1 = expit(intercept + base + cfg.rating_effect);
            let p0 = expit(intercept + base - cfg.rating_effect);
            p1 * eta + p0 * (1.0 - eta)
        }),
    };

    // Realize the observation indicators and build the training log.
    let mut train = InteractionLog::new(m, n);
    for i in 0..m {
        for j in 0..n {
            if sample_bernoulli(propensity_xr.get(i, j), &mut rng) {
                train.push(Interaction::new(i as u32, j as u32, ratings.get(i, j)));
            }
        }
    }

    // MCAR test slice: uniformly chosen items per user, ratings revealed.
    let mut test = InteractionLog::new(m, n);
    for i in 0..m {
        let items = rand::seq::index::sample(&mut rng, n, cfg.test_per_user.min(n));
        for j in items {
            test.push(Interaction::new(i as u32, j as u32, ratings.get(i, j)));
        }
    }

    let ds = Dataset {
        name: format!("synthetic-{}", mechanism.label()),
        n_users: m,
        n_items: n,
        train,
        test,
        truth: Some(GroundTruth {
            preference,
            propensity_xr,
            propensity_x,
            ratings,
        }),
    };
    ds.validate();
    ds
}

/// Finds the intercept `a` such that `mean_prop(a) == target` by bisection
/// (the map is strictly increasing in `a`).
fn bisect_intercept(target: f64, mean_prop: impl Fn(f64) -> f64) -> f64 {
    let (mut lo, mut hi) = (-30.0, 30.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if mean_prop(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MechanismConfig {
        MechanismConfig {
            n_users: 80,
            n_items: 120,
            target_density: 0.08,
            seed: 7,
            ..MechanismConfig::default()
        }
    }

    #[test]
    fn density_is_calibrated_for_all_mechanisms() {
        for mech in [Mechanism::Mcar, Mechanism::Mar, Mechanism::Mnar] {
            let ds = mechanism_dataset(mech, &small_cfg());
            let truth = ds.truth.as_ref().unwrap();
            let mean_p = truth.propensity_xr.mean();
            assert!(
                (mean_p - 0.08).abs() < 1e-6,
                "{}: mean propensity {mean_p}",
                mech.label()
            );
            // Realized density within sampling noise of the target.
            assert!((ds.train.density() - 0.08).abs() < 0.02);
        }
    }

    #[test]
    fn mcar_propensity_is_constant() {
        let ds = mechanism_dataset(Mechanism::Mcar, &small_cfg());
        let t = ds.truth.unwrap();
        assert!((t.propensity_xr.max() - t.propensity_xr.min()).abs() < 1e-12);
        assert_eq!(t.propensity_xr, t.propensity_x);
    }

    #[test]
    fn mar_propensity_varies_with_x_but_equals_marginal() {
        let ds = mechanism_dataset(Mechanism::Mar, &small_cfg());
        let t = ds.truth.unwrap();
        assert!(t.propensity_xr.max() - t.propensity_xr.min() > 0.01);
        assert_eq!(t.propensity_xr, t.propensity_x);
    }

    #[test]
    fn mnar_rating_shifts_propensity() {
        let ds = mechanism_dataset(Mechanism::Mnar, &small_cfg());
        let t = ds.truth.unwrap();
        // Conditional on the realized rating, positive pairs must be far
        // more observable than negative ones (rating_effect = 2 → odds
        // ratio e⁴).
        let (mut p1, mut n1, mut p0, mut n0) = (0.0, 0, 0.0, 0);
        for i in 0..ds.n_users {
            for j in 0..ds.n_items {
                if t.ratings.get(i, j) > 0.5 {
                    p1 += t.propensity_xr.get(i, j);
                    n1 += 1;
                } else {
                    p0 += t.propensity_xr.get(i, j);
                    n0 += 1;
                }
            }
        }
        let (avg1, avg0) = (p1 / n1 as f64, p0 / n0 as f64);
        assert!(avg1 > 3.0 * avg0, "MNAR: avg p|r=1 {avg1} vs p|r=0 {avg0}");
        // And the marginal propensity differs from the realized-rating one.
        assert!(t.propensity_x != t.propensity_xr);
    }

    #[test]
    fn mnar_observed_ratings_are_biased_upward() {
        // The hallmark of MNAR selection bias: the observed mean rating
        // exceeds the population mean rating.
        let ds = mechanism_dataset(Mechanism::Mnar, &small_cfg());
        let t = ds.truth.as_ref().unwrap();
        let population_mean = t.ratings.mean();
        let observed_mean = ds.train.mean_rating();
        assert!(
            observed_mean > population_mean + 0.1,
            "observed {observed_mean} vs population {population_mean}"
        );
        // ...while MCAR data shows no such gap.
        let ds = mechanism_dataset(Mechanism::Mcar, &small_cfg());
        let t = ds.truth.as_ref().unwrap();
        let gap = (ds.train.mean_rating() - t.ratings.mean()).abs();
        assert!(gap < 0.05, "MCAR gap {gap}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = mechanism_dataset(Mechanism::Mnar, &small_cfg());
        let b = mechanism_dataset(Mechanism::Mnar, &small_cfg());
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(
            a.truth.unwrap().propensity_xr,
            b.truth.unwrap().propensity_xr
        );
    }

    #[test]
    fn test_slice_is_mcar_sized() {
        let ds = mechanism_dataset(Mechanism::Mnar, &small_cfg());
        assert_eq!(ds.test.len(), 80 * 10);
    }
}
