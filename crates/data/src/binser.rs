//! Compact binary serialisation of interaction logs.
//!
//! JSON is fine for experiment *results*; the KuaiRec-scale training logs
//! (10⁷ interactions) need something tighter. The format is a fixed
//! little-endian layout with a magic header and version byte:
//!
//! ```text
//! magic "DTLG" | version u8 | n_users u64 | n_items u64 | n u64
//! then n × (user u32 | item u32 | rating f64)
//! ```
//!
//! ≈ 16 bytes per interaction, streamable, and validated on load.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::interactions::{Interaction, InteractionLog};

const MAGIC: &[u8; 4] = b"DTLG";
const VERSION: u8 = 1;

/// Errors raised when decoding a binary log.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Not a `DTLG` payload.
    BadMagic,
    /// Unknown format version.
    UnsupportedVersion(u8),
    /// The payload ended early or the record count disagrees.
    Truncated,
    /// An interaction indexes outside the declared space.
    OutOfSpace {
        /// Offending user index.
        user: u32,
        /// Offending item index.
        item: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a DTLG payload"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported DTLG version {v}"),
            DecodeError::Truncated => write!(f, "truncated DTLG payload"),
            DecodeError::OutOfSpace { user, item } => {
                write!(f, "interaction ({user}, {item}) outside declared space")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a log into the `DTLG` binary format.
#[must_use]
pub fn encode_log(log: &InteractionLog) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 1 + 24 + 16 * log.len());
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(log.n_users() as u64);
    buf.put_u64_le(log.n_items() as u64);
    buf.put_u64_le(log.len() as u64);
    for it in log.interactions() {
        buf.put_u32_le(it.user);
        buf.put_u32_le(it.item);
        buf.put_f64_le(it.rating);
    }
    buf.freeze()
}

/// Decodes a `DTLG` payload.
///
/// # Errors
/// Returns a [`DecodeError`] on malformed input; never panics on
/// attacker-controlled bytes.
pub fn decode_log(mut data: &[u8]) -> Result<InteractionLog, DecodeError> {
    if data.len() < 4 + 1 + 24 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let n_users = data.get_u64_le() as usize;
    let n_items = data.get_u64_le() as usize;
    let n = data.get_u64_le() as usize;
    if data.remaining() != n.saturating_mul(16) {
        return Err(DecodeError::Truncated);
    }
    let mut log = InteractionLog::new(n_users, n_items);
    for _ in 0..n {
        let user = data.get_u32_le();
        let item = data.get_u32_le();
        let rating = data.get_f64_le();
        if (user as usize) >= n_users || (item as usize) >= n_items {
            return Err(DecodeError::OutOfSpace { user, item });
        }
        log.push(Interaction::new(user, item, rating));
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InteractionLog {
        let mut log = InteractionLog::new(100, 200);
        for k in 0..50u32 {
            log.push(Interaction::new(
                k % 100,
                (k * 3) % 200,
                f64::from(k) / 10.0,
            ));
        }
        log
    }

    #[test]
    fn roundtrip() {
        let log = sample();
        let bytes = encode_log(&log);
        let back = decode_log(&bytes).unwrap();
        assert_eq!(back.n_users(), 100);
        assert_eq!(back.n_items(), 200);
        assert_eq!(back.interactions(), log.interactions());
    }

    #[test]
    fn size_is_compact() {
        let log = sample();
        let bytes = encode_log(&log);
        assert_eq!(bytes.len(), 4 + 1 + 24 + 16 * 50);
    }

    #[test]
    fn empty_log_roundtrips() {
        let log = InteractionLog::new(5, 7);
        let back = decode_log(&encode_log(&log)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.n_users(), 5);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            decode_log(b"NOPE....................................."),
            Err(DecodeError::BadMagic)
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = encode_log(&sample()).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            decode_log(&bytes),
            Err(DecodeError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_log(&sample());
        assert!(matches!(
            decode_log(&bytes[..bytes.len() - 3]),
            Err(DecodeError::Truncated)
        ));
        assert!(matches!(
            decode_log(&bytes[..10]),
            Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn rejects_out_of_space_records() {
        // Handcraft a payload whose record exceeds the declared space.
        let mut log = InteractionLog::new(10, 10);
        log.push(Interaction::new(3, 4, 1.0));
        let mut bytes = encode_log(&log).to_vec();
        // Overwrite the user id with 999 (little-endian at the record start).
        let rec = 4 + 1 + 24;
        bytes[rec..rec + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(matches!(
            decode_log(&bytes),
            Err(DecodeError::OutOfSpace { user: 999, .. })
        ));
    }

    #[test]
    fn declared_count_must_match_payload() {
        let mut bytes = encode_log(&sample()).to_vec();
        // Claim one more record than present.
        let count_off = 4 + 1 + 16;
        bytes[count_off..count_off + 8].copy_from_slice(&51u64.to_le_bytes());
        assert!(matches!(decode_log(&bytes), Err(DecodeError::Truncated)));
    }
}
