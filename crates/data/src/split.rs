//! Train/validation splitting utilities.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::interactions::InteractionLog;

/// Random holdout split: returns `(train, holdout)` with `holdout_frac` of
/// the interactions held out.
///
/// # Panics
/// Panics when `holdout_frac` is outside `[0, 1)`.
#[must_use]
pub fn holdout_split(
    log: &InteractionLog,
    holdout_frac: f64,
    rng: &mut impl Rng,
) -> (InteractionLog, InteractionLog) {
    assert!(
        (0.0..1.0).contains(&holdout_frac),
        "holdout_split: frac must be in [0,1), got {holdout_frac}"
    );
    let mut order: Vec<usize> = (0..log.len()).collect();
    order.shuffle(rng);
    let n_holdout = (log.len() as f64 * holdout_frac).round() as usize;
    let (m, n) = (log.n_users(), log.n_items());
    let mut train = InteractionLog::new(m, n);
    let mut holdout = InteractionLog::new(m, n);
    for (k, &i) in order.iter().enumerate() {
        let it = log.interactions()[i];
        if k < n_holdout {
            holdout.push(it);
        } else {
            train.push(it);
        }
    }
    (train, holdout)
}

/// Leave-k-out per user: up to `k` interactions of every user are held out
/// (users with fewer than `k + 1` interactions keep everything in train).
#[must_use]
pub fn leave_k_out(
    log: &InteractionLog,
    k: usize,
    rng: &mut impl Rng,
) -> (InteractionLog, InteractionLog) {
    let (m, n) = (log.n_users(), log.n_items());
    let mut by_user: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (i, it) in log.interactions().iter().enumerate() {
        by_user[it.user as usize].push(i);
    }
    let mut train = InteractionLog::new(m, n);
    let mut holdout = InteractionLog::new(m, n);
    for idxs in &mut by_user {
        idxs.shuffle(rng);
        let n_out = if idxs.len() > k { k } else { 0 };
        for (pos, &i) in idxs.iter().enumerate() {
            let it = log.interactions()[i];
            if pos < n_out {
                holdout.push(it);
            } else {
                train.push(it);
            }
        }
    }
    (train, holdout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interactions::Interaction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn log() -> InteractionLog {
        let mut l = InteractionLog::new(4, 10);
        for u in 0..4u32 {
            for i in 0..10u32 {
                l.push(Interaction::new(u, i, f64::from(u * 10 + i)));
            }
        }
        l
    }

    #[test]
    fn holdout_sizes_add_up() {
        let l = log();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, hold) = holdout_split(&l, 0.25, &mut rng);
        assert_eq!(hold.len(), 10);
        assert_eq!(train.len(), 30);
        // No interaction lost or duplicated.
        let total: f64 = train
            .interactions()
            .iter()
            .chain(hold.interactions())
            .map(|i| i.rating)
            .sum();
        let expected: f64 = l.interactions().iter().map(|i| i.rating).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn leave_k_out_per_user() {
        let l = log();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, hold) = leave_k_out(&l, 2, &mut rng);
        assert_eq!(hold.len(), 8);
        assert_eq!(train.len(), 32);
        assert!(hold.user_counts().iter().all(|&c| c == 2));
    }

    #[test]
    fn leave_k_out_spares_small_users() {
        let mut l = InteractionLog::new(2, 5);
        l.push(Interaction::new(0, 0, 1.0));
        l.push(Interaction::new(0, 1, 1.0));
        l.push(Interaction::new(1, 0, 1.0)); // user 1 has only one rating
        let mut rng = StdRng::seed_from_u64(1);
        let (train, hold) = leave_k_out(&l, 1, &mut rng);
        assert_eq!(train.user_counts()[1], 1, "small user kept intact");
        assert_eq!(hold.user_counts()[1], 0);
        assert_eq!(hold.user_counts()[0], 1);
    }
}
