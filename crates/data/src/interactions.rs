//! Interaction logs: the sparse COO representation of observed feedback.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// A user–item pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Pair {
    /// User index in `0..n_users`.
    pub user: u32,
    /// Item index in `0..n_items`.
    pub item: u32,
}

impl Pair {
    /// Creates a pair.
    #[must_use]
    pub fn new(user: u32, item: u32) -> Self {
        Self { user, item }
    }
}

/// One observed interaction: a pair plus its rating / conversion label.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Interaction {
    /// User index.
    pub user: u32,
    /// Item index.
    pub item: u32,
    /// The feedback value (binary labels use 0.0 / 1.0; the semi-synthetic
    /// five-star source keeps 1.0–5.0).
    pub rating: f64,
}

impl Interaction {
    /// Creates an interaction.
    #[must_use]
    pub fn new(user: u32, item: u32, rating: f64) -> Self {
        Self { user, item, rating }
    }

    /// The pair without the rating.
    #[must_use]
    pub fn pair(&self) -> Pair {
        Pair::new(self.user, self.item)
    }
}

/// A sparse log of observed interactions over an `n_users × n_items` space.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InteractionLog {
    n_users: usize,
    n_items: usize,
    interactions: Vec<Interaction>,
}

impl InteractionLog {
    /// An empty log over the given space.
    #[must_use]
    pub fn new(n_users: usize, n_items: usize) -> Self {
        Self {
            n_users,
            n_items,
            interactions: Vec::new(),
        }
    }

    /// Builds a log from parts.
    ///
    /// # Panics
    /// Panics when an interaction indexes outside the space.
    #[must_use]
    pub fn from_interactions(
        n_users: usize,
        n_items: usize,
        interactions: Vec<Interaction>,
    ) -> Self {
        for it in &interactions {
            assert!(
                (it.user as usize) < n_users && (it.item as usize) < n_items,
                "interaction ({}, {}) outside {}x{} space",
                it.user,
                it.item,
                n_users,
                n_items
            );
        }
        Self {
            n_users,
            n_items,
            interactions,
        }
    }

    /// Appends one interaction.
    ///
    /// # Panics
    /// Panics when the pair indexes outside the space.
    pub fn push(&mut self, it: Interaction) {
        assert!(
            (it.user as usize) < self.n_users && (it.item as usize) < self.n_items,
            "interaction ({}, {}) outside {}x{} space",
            it.user,
            it.item,
            self.n_users,
            self.n_items
        );
        self.interactions.push(it);
    }

    /// Number of users in the space.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items in the space.
    #[must_use]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// `|D| = n_users · n_items`.
    #[must_use]
    pub fn n_pairs_total(&self) -> usize {
        self.n_users * self.n_items
    }

    /// Number of observed interactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.interactions.len()
    }

    /// Returns `true` when the log holds no interactions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.interactions.is_empty()
    }

    /// Fraction of the full space that is observed.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.len() as f64 / self.n_pairs_total() as f64
    }

    /// The interactions.
    #[must_use]
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    /// Mean rating of the log.
    ///
    /// # Panics
    /// Panics on an empty log.
    #[must_use]
    pub fn mean_rating(&self) -> f64 {
        assert!(!self.is_empty(), "mean_rating of empty log");
        self.interactions.iter().map(|i| i.rating).sum::<f64>() / self.len() as f64
    }

    /// Per-user interaction counts.
    #[must_use]
    pub fn user_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.n_users];
        for it in &self.interactions {
            c[it.user as usize] += 1;
        }
        c
    }

    /// Per-item interaction counts (popularity).
    #[must_use]
    pub fn item_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.n_items];
        for it in &self.interactions {
            c[it.item as usize] += 1;
        }
        c
    }

    /// Maps every rating through `f` (e.g. the paper's binarisation
    /// "ratings < 3 → 0, otherwise 1").
    #[must_use]
    pub fn map_ratings(&self, f: impl Fn(f64) -> f64) -> Self {
        Self {
            n_users: self.n_users,
            n_items: self.n_items,
            interactions: self
                .interactions
                .iter()
                .map(|it| Interaction::new(it.user, it.item, f(it.rating)))
                .collect(),
        }
    }

    /// Builds an O(1) membership set over the observed pairs.
    #[must_use]
    pub fn pair_set(&self) -> PairSet {
        PairSet {
            set: self.interactions.iter().map(Interaction::pair).collect(),
        }
    }
}

/// O(1) membership queries over a set of observed pairs (used by the
/// full-space losses to label sampled pairs with `o ∈ {0,1}`).
#[derive(Clone, Debug, Default)]
pub struct PairSet {
    set: HashSet<Pair>,
}

impl PairSet {
    /// Whether `(user, item)` was observed.
    #[must_use]
    pub fn contains(&self, user: u32, item: u32) -> bool {
        self.set.contains(&Pair::new(user, item))
    }

    /// Number of observed pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Returns `true` when no pairs are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> InteractionLog {
        InteractionLog::from_interactions(
            3,
            4,
            vec![
                Interaction::new(0, 0, 5.0),
                Interaction::new(0, 3, 1.0),
                Interaction::new(2, 1, 3.0),
            ],
        )
    }

    #[test]
    fn basic_stats() {
        let log = sample_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log.n_pairs_total(), 12);
        assert!((log.density() - 0.25).abs() < 1e-12);
        assert!((log.mean_rating() - 3.0).abs() < 1e-12);
        assert_eq!(log.user_counts(), vec![2, 0, 1]);
        assert_eq!(log.item_counts(), vec![1, 1, 0, 1]);
    }

    #[test]
    fn binarisation_matches_paper_rule() {
        let log = sample_log().map_ratings(|r| if r < 3.0 { 0.0 } else { 1.0 });
        let ratings: Vec<f64> = log.interactions().iter().map(|i| i.rating).collect();
        assert_eq!(ratings, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn pair_set_membership() {
        let ps = sample_log().pair_set();
        assert_eq!(ps.len(), 3);
        assert!(ps.contains(0, 0));
        assert!(ps.contains(2, 1));
        assert!(!ps.contains(1, 1));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_space_interaction_panics() {
        let mut log = InteractionLog::new(2, 2);
        log.push(Interaction::new(5, 0, 1.0));
    }
}
