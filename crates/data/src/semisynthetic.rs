//! The paper's semi-synthetic ML-100K pipeline (Section V, Steps 1–3).
//!
//! The original protocol seeds the pipeline with the real MovieLens-100K
//! log; offline we substitute [`ml100k_like`], a generator that matches its
//! shape (943 users × 1,682 items, ≈100k five-star MNAR ratings whose
//! observation probability increases with the rating). The substitution is
//! benign because Steps 1–3 only consume the *observed* log:
//!
//! 1. Fit matrix factorisation on the observed ratings, predict a rating
//!    for every pair, clip to `[0, 5]`, and standardise to a conversion
//!    probability `η` via eq. (11) with noise floor `ε`.
//! 2. Set the observation probability `p = (2^η − 1)^ρ`, coupling `o`
//!    to the conversion probability (the MNAR ingredient).
//! 3. Sample `r ~ Bern(η)` and `o ~ Bern(p)` for every pair.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use dt_stats::sample_bernoulli;
use dt_tensor::Tensor;

use crate::dataset::{Dataset, GroundTruth};
use crate::interactions::{Interaction, InteractionLog};

/// Configuration of the semi-synthetic pipeline.
#[derive(Clone, Copy, Debug)]
pub struct SemiSyntheticConfig {
    /// Noise floor `ε` of eq. (11).
    pub epsilon: f64,
    /// Sparsity/correlation exponent `ρ` of Step 2.
    pub rho: f64,
    /// Latent dimension of the completing MF model.
    pub mf_dim: usize,
    /// Training epochs of the completing MF model.
    pub mf_epochs: usize,
    /// RNG seed (drives both the source log and the resampling).
    pub seed: u64,
    /// Users in the source log (paper: 943).
    pub n_users: usize,
    /// Items in the source log (paper: 1,682).
    pub n_items: usize,
    /// Observed ratings in the source log (paper: 100,000).
    pub n_ratings: usize,
}

impl Default for SemiSyntheticConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.3,
            rho: 1.0,
            mf_dim: 12,
            mf_epochs: 20,
            seed: 0,
            n_users: 943,
            n_items: 1682,
            n_ratings: 100_000,
        }
    }
}

/// Generates an ML-100K-shaped five-star MNAR log: a latent-factor rating
/// surface discretised to 1–5 stars, with observation probability
/// increasing in the rating (users rate what they like).
///
/// # Panics
/// Panics when more ratings are requested than the space holds.
#[must_use]
pub fn ml100k_like(n_users: usize, n_items: usize, n_ratings: usize, seed: u64) -> InteractionLog {
    assert!(
        n_ratings <= n_users * n_items,
        "ml100k_like: {n_ratings} ratings in a {}-pair space",
        n_users * n_items
    );
    let mut rng = StdRng::seed_from_u64(seed ^ SEED_SOURCE);
    let d = 8;
    let u = dt_tensor::normal(n_users, d, 0.0, 0.6 / (d as f64).sqrt(), &mut rng);
    let v = dt_tensor::normal(n_items, d, 0.0, 0.6, &mut rng);
    let ub = dt_tensor::normal(n_users, 1, 0.0, 0.4, &mut rng);
    let ib = dt_tensor::normal(1, n_items, 0.0, 0.4, &mut rng);
    let score = u
        .matmul_nt(&v)
        .add_col_broadcast(&ub)
        .add_row_broadcast(&ib);

    // Stars: 3.6 + score + noise, rounded into 1..=5 (ML-100K's mean is 3.53).
    let stars = Tensor::from_fn(n_users, n_items, |i, j| {
        let raw = 3.6 + 1.1 * score.get(i, j) + 0.4 * rng.gen::<f64>();
        raw.round().clamp(1.0, 5.0)
    });

    // MNAR selection: weight ∝ base^stars (higher-rated pairs more likely
    // logged). Sample without replacement via exponential race.
    let base: f64 = 1.8;
    let mut keyed: Vec<(f64, u32, u32)> = Vec::with_capacity(n_users * n_items);
    for i in 0..n_users {
        for j in 0..n_items {
            let w = base.powf(stars.get(i, j));
            let key = -rng.gen::<f64>().ln() / w; // Exp(w): smallest keys win
            keyed.push((key, i as u32, j as u32));
        }
    }
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut log = InteractionLog::new(n_users, n_items);
    for &(_, i, j) in keyed.iter().take(n_ratings) {
        log.push(Interaction::new(i, j, stars.get(i as usize, j as usize)));
    }
    log
}

/// Seed-mixing constants keeping the three RNG streams of the pipeline
/// (source log, MF init, resampling) independent under a shared user seed.
const SEED_SOURCE: u64 = 0x5EED_0001;
const SEED_MF: u64 = 0x5EED_0002;
const SEED_RESAMPLE: u64 = 0x5EED_0003;

/// The matrix-factorisation completion used by Step 1: biases + latent
/// factors fitted by SGD on the observed five-star ratings.
#[derive(Debug)]
pub struct MfCompletion {
    user_f: Tensor,
    item_f: Tensor,
    user_b: Vec<f64>,
    item_b: Vec<f64>,
    mu: f64,
}

impl MfCompletion {
    /// Fits the completion model on a five-star log.
    ///
    /// # Panics
    /// Panics on an empty log.
    #[must_use]
    pub fn fit(log: &InteractionLog, dim: usize, epochs: usize, seed: u64) -> Self {
        assert!(!log.is_empty(), "MfCompletion: empty log");
        let mut rng = StdRng::seed_from_u64(seed);
        let (m, n) = (log.n_users(), log.n_items());
        let mut model = Self {
            user_f: dt_tensor::normal(m, dim, 0.0, 0.1, &mut rng),
            item_f: dt_tensor::normal(n, dim, 0.0, 0.1, &mut rng),
            user_b: vec![0.0; m],
            item_b: vec![0.0; n],
            mu: log.mean_rating(),
        };
        let lr = 0.01;
        let reg = 0.02;
        let mut order: Vec<usize> = (0..log.len()).collect();
        for _ in 0..epochs {
            rand::seq::SliceRandom::shuffle(&mut order[..], &mut rng);
            for &k in &order {
                let it = log.interactions()[k];
                let (ui, ii) = (it.user as usize, it.item as usize);
                let err = model.predict(ui, ii) - it.rating;
                model.user_b[ui] -= lr * (err + reg * model.user_b[ui]);
                model.item_b[ii] -= lr * (err + reg * model.item_b[ii]);
                for t in 0..dim {
                    let uf = model.user_f.get(ui, t);
                    let vf = model.item_f.get(ii, t);
                    model.user_f.set(ui, t, uf - lr * (err * vf + reg * uf));
                    model.item_f.set(ii, t, vf - lr * (err * uf + reg * vf));
                }
            }
        }
        model
    }

    /// Predicted rating (unclipped).
    #[must_use]
    pub fn predict(&self, user: usize, item: usize) -> f64 {
        self.mu
            + self.user_b[user]
            + self.item_b[item]
            + self
                .user_f
                .row(user)
                .iter()
                .zip(self.item_f.row(item))
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }

    /// The full completed matrix, clipped to `[0, 5]` per Step 1.
    #[must_use]
    pub fn completed_matrix(&self) -> Tensor {
        let m = self.user_b.len();
        let n = self.item_b.len();
        Tensor::from_fn(m, n, |i, j| self.predict(i, j).clamp(0.0, 5.0))
    }

    /// Root-mean-squared error on a log.
    #[must_use]
    pub fn rmse(&self, log: &InteractionLog) -> f64 {
        let se: f64 = log
            .interactions()
            .iter()
            .map(|it| {
                let e = self.predict(it.user as usize, it.item as usize) - it.rating;
                e * e
            })
            .sum();
        (se / log.len() as f64).sqrt()
    }
}

/// Runs the full semi-synthetic pipeline and returns a dataset whose ground
/// truth carries `η` (preference), `p` (propensity) and the realized binary
/// conversions.
#[must_use]
pub fn semi_synthetic(cfg: &SemiSyntheticConfig) -> Dataset {
    assert!(
        (0.0..=1.0).contains(&cfg.epsilon),
        "epsilon must be in [0,1]"
    );
    assert!(cfg.rho > 0.0, "rho must be positive");
    let source = ml100k_like(cfg.n_users, cfg.n_items, cfg.n_ratings, cfg.seed);

    // Step 1: complete with MF, clip, standardise to η via eq. (11).
    let mf = MfCompletion::fit(&source, cfg.mf_dim, cfg.mf_epochs, cfg.seed ^ SEED_MF);
    let gamma = mf.completed_matrix();
    let (g_min, g_max) = (gamma.min(), gamma.max());
    let span = (g_max - g_min).max(1e-12);
    let eta = gamma.map(|g| cfg.epsilon + (1.0 - cfg.epsilon) * (g - g_min) / span);

    // Step 2: observation probability coupled to η.
    let p = eta.map(|e| (2f64.powf(e) - 1.0).powf(cfg.rho));

    // Step 3: realize conversions and observations.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ SEED_RESAMPLE);
    let (m, n) = (cfg.n_users, cfg.n_items);
    let ratings = Tensor::from_fn(m, n, |i, j| {
        f64::from(sample_bernoulli(eta.get(i, j), &mut rng))
    });
    let mut train = InteractionLog::new(m, n);
    for i in 0..m {
        for j in 0..n {
            if sample_bernoulli(p.get(i, j), &mut rng) {
                train.push(Interaction::new(i as u32, j as u32, ratings.get(i, j)));
            }
        }
    }

    let ds = Dataset {
        name: format!("semi-synthetic(rho={}, eps={})", cfg.rho, cfg.epsilon),
        n_users: m,
        n_items: n,
        train,
        test: InteractionLog::new(m, n), // evaluation is against η directly
        truth: Some(GroundTruth {
            preference: eta,
            propensity_xr: p.clone(),
            // In this protocol p is a deterministic function of η = E[r|x],
            // i.e. a function of x alone — but because r ~ Bern(η) and p is
            // strongly coupled to η, observed conversions remain informative
            // about missingness. The MAR propensity equals p here.
            propensity_x: p,
            ratings,
        }),
    };
    ds.validate();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SemiSyntheticConfig {
        SemiSyntheticConfig {
            n_users: 60,
            n_items: 90,
            n_ratings: 700,
            mf_epochs: 10,
            seed: 5,
            ..SemiSyntheticConfig::default()
        }
    }

    #[test]
    fn source_log_shape_and_star_range() {
        let log = ml100k_like(50, 80, 400, 1);
        assert_eq!(log.len(), 400);
        for it in log.interactions() {
            assert!((1.0..=5.0).contains(&it.rating));
            assert_eq!(it.rating, it.rating.round());
        }
    }

    #[test]
    fn source_log_is_mnar_shaped() {
        // Observed mean stars should exceed ~the midpoint because selection
        // favours high ratings.
        let log = ml100k_like(100, 150, 1500, 2);
        assert!(log.mean_rating() > 3.4, "mean {}", log.mean_rating());
    }

    #[test]
    fn mf_completion_learns_the_log() {
        let log = ml100k_like(60, 90, 1200, 3);
        let untrained_rmse = {
            let m = MfCompletion::fit(&log, 8, 0, 3);
            m.rmse(&log)
        };
        let trained = MfCompletion::fit(&log, 8, 15, 3);
        assert!(trained.rmse(&log) < untrained_rmse * 0.9);
        let full = trained.completed_matrix();
        assert!(full.min() >= 0.0 && full.max() <= 5.0);
    }

    #[test]
    fn eta_respects_epsilon_floor() {
        let ds = semi_synthetic(&tiny_cfg());
        let t = ds.truth.unwrap();
        assert!(t.preference.min() >= 0.3 - 1e-12);
        assert!(t.preference.max() <= 1.0 + 1e-12);
    }

    #[test]
    fn step2_formula_is_applied() {
        let ds = semi_synthetic(&tiny_cfg());
        let t = ds.truth.unwrap();
        for idx in [(0usize, 0usize), (3, 7), (50, 80)] {
            let eta = t.preference.get(idx.0, idx.1);
            let expected = (2f64.powf(eta) - 1.0).powf(1.0);
            assert!((t.propensity_xr.get(idx.0, idx.1) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn larger_rho_means_sparser_observations() {
        let mut cfg = tiny_cfg();
        cfg.rho = 0.5;
        let dense = semi_synthetic(&cfg);
        cfg.rho = 1.5;
        let sparse = semi_synthetic(&cfg);
        assert!(sparse.train.density() < dense.train.density());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = semi_synthetic(&tiny_cfg());
        let b = semi_synthetic(&tiny_cfg());
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.truth.unwrap().ratings, b.truth.unwrap().ratings);
    }

    #[test]
    fn conversions_correlate_with_observations() {
        // The whole point of the protocol: r and o must be correlated.
        let ds = semi_synthetic(&tiny_cfg());
        let t = ds.truth.as_ref().unwrap();
        let pop_rate = t.ratings.mean();
        let obs_rate = ds.train.mean_rating();
        assert!(
            obs_rate > pop_rate,
            "observed conversion rate {obs_rate} should exceed population {pop_rate}"
        );
    }
}
