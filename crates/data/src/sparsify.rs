//! Training-set subsampling for the data-sparsity experiment (Figure 5).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::Dataset;
use crate::interactions::InteractionLog;

/// Returns a copy of `ds` whose training log is uniformly subsampled to
/// `keep_frac` of its interactions; the test set and ground truth are left
/// untouched. Used to sweep the sparsity axis of the paper's Figure 5.
///
/// # Panics
/// Panics when `keep_frac` is outside `(0, 1]`.
#[must_use]
pub fn sparsify(ds: &Dataset, keep_frac: f64, rng: &mut impl Rng) -> Dataset {
    assert!(
        keep_frac > 0.0 && keep_frac <= 1.0,
        "sparsify: keep_frac must be in (0,1], got {keep_frac}"
    );
    if (keep_frac - 1.0).abs() < f64::EPSILON {
        return ds.clone();
    }
    let keep = ((ds.train.len() as f64) * keep_frac).round().max(1.0) as usize;
    let mut order: Vec<usize> = (0..ds.train.len()).collect();
    order.shuffle(rng);
    let mut train = InteractionLog::new(ds.n_users, ds.n_items);
    for &i in order.iter().take(keep) {
        train.push(ds.train.interactions()[i]);
    }
    Dataset {
        name: format!("{}@{:.0}%", ds.name, keep_frac * 100.0),
        n_users: ds.n_users,
        n_items: ds.n_items,
        train,
        test: ds.test.clone(),
        truth: ds.truth.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interactions::Interaction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        let mut train = InteractionLog::new(10, 10);
        for u in 0..10u32 {
            for i in 0..10u32 {
                train.push(Interaction::new(u, i, 1.0));
            }
        }
        Dataset {
            name: "full".into(),
            n_users: 10,
            n_items: 10,
            train,
            test: InteractionLog::new(10, 10),
            truth: None,
        }
    }

    #[test]
    fn halving_halves_the_log() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let half = sparsify(&ds, 0.5, &mut rng);
        assert_eq!(half.train.len(), 50);
        assert_eq!(half.n_users, 10);
        assert!(half.name.contains("50%"));
    }

    #[test]
    fn full_fraction_is_identity() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let same = sparsify(&ds, 1.0, &mut rng);
        assert_eq!(same.train.len(), 100);
        assert_eq!(same.name, "full");
    }

    #[test]
    fn tiny_fraction_keeps_at_least_one() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let tiny = sparsify(&ds, 0.001, &mut rng);
        assert!(!tiny.train.is_empty());
    }

    #[test]
    #[should_panic(expected = "keep_frac")]
    fn zero_fraction_panics() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sparsify(&ds, 0.0, &mut rng);
    }
}
