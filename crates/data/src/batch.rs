//! Mini-batch iteration and full-space sampling.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::interactions::{Interaction, InteractionLog, Pair};

/// Shuffled mini-batches over an interaction log for one epoch.
pub struct BatchIter<'a> {
    log: &'a InteractionLog,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIter<'a> {
    /// A new shuffled epoch over `log`.
    ///
    /// # Panics
    /// Panics when `batch_size == 0`.
    #[must_use]
    pub fn new(log: &'a InteractionLog, batch_size: usize, rng: &mut impl Rng) -> Self {
        assert!(batch_size > 0, "BatchIter: zero batch size");
        let mut order: Vec<usize> = (0..log.len()).collect();
        order.shuffle(rng);
        Self {
            log,
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Number of batches in the epoch.
    #[must_use]
    pub fn n_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter<'_> {
    type Item = Vec<Interaction>;

    fn next(&mut self) -> Option<Vec<Interaction>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end]
            .iter()
            .map(|&i| self.log.interactions()[i])
            .collect();
        self.cursor = end;
        Some(batch)
    }
}

/// Draws `n` uniform pairs from the full space `D = U × I` (with
/// replacement) — the sampler behind every entire-space loss term.
///
/// # Panics
/// Panics on an empty space.
#[must_use]
pub fn uniform_pairs(n_users: usize, n_items: usize, n: usize, rng: &mut impl Rng) -> Vec<Pair> {
    assert!(n_users > 0 && n_items > 0, "uniform_pairs: empty space");
    (0..n)
        .map(|_| {
            Pair::new(
                rng.gen_range(0..n_users) as u32,
                rng.gen_range(0..n_items) as u32,
            )
        })
        .collect()
}

/// Epoch bookkeeping shared by the trainers: fixed batch size, a shuffled
/// pass over the observed log per epoch, plus a configurable ratio of
/// full-space samples per observed example.
#[derive(Debug, Clone, Copy)]
pub struct EpochPlan {
    /// Mini-batch size over the observed log.
    pub batch_size: usize,
    /// Uniform full-space pairs drawn per observed example in the batch
    /// (for propensity / entire-space losses).
    pub full_space_ratio: usize,
}

impl EpochPlan {
    /// A plan with the given batch size and one full-space sample per
    /// observed example.
    #[must_use]
    pub fn new(batch_size: usize) -> Self {
        Self {
            batch_size,
            full_space_ratio: 1,
        }
    }

    /// Sets the full-space sampling ratio.
    #[must_use]
    pub fn with_full_space_ratio(mut self, ratio: usize) -> Self {
        self.full_space_ratio = ratio;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn log(n: usize) -> InteractionLog {
        let mut l = InteractionLog::new(n, 1);
        for u in 0..n {
            l.push(Interaction::new(u as u32, 0, u as f64));
        }
        l
    }

    #[test]
    fn epoch_covers_every_example_once() {
        let l = log(10);
        let mut rng = StdRng::seed_from_u64(1);
        let it = BatchIter::new(&l, 3, &mut rng);
        assert_eq!(it.n_batches(), 4);
        let mut seen: Vec<f64> = it.flatten().map(|i| i.rating).collect();
        seen.sort_by(f64::total_cmp);
        assert_eq!(seen, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn batches_are_shuffled_between_epochs() {
        let l = log(100);
        let collect = |seed: u64| -> Vec<f64> {
            BatchIter::new(&l, 100, &mut StdRng::seed_from_u64(seed))
                .flatten()
                .map(|i| i.rating)
                .collect()
        };
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn last_batch_may_be_short() {
        let l = log(7);
        let mut rng = StdRng::seed_from_u64(1);
        let sizes: Vec<usize> = BatchIter::new(&l, 3, &mut rng).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn uniform_pairs_stay_in_space() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in uniform_pairs(5, 7, 1000, &mut rng) {
            assert!((p.user as usize) < 5 && (p.item as usize) < 7);
        }
    }

    #[test]
    fn uniform_pairs_cover_the_space() {
        let mut rng = StdRng::seed_from_u64(1);
        let pairs = uniform_pairs(3, 3, 2000, &mut rng);
        let distinct: std::collections::HashSet<_> =
            pairs.iter().map(|p| (p.user, p.item)).collect();
        assert_eq!(distinct.len(), 9, "all 9 cells should be hit");
    }
}
