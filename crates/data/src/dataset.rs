//! The dataset container shared by every experiment.

use dt_tensor::Tensor;

use crate::interactions::InteractionLog;

/// Oracle quantities known only because the data came from a generator.
///
/// All matrices are `n_users × n_items`. These fields are what make the
/// workspace's bias measurements *exact*: the paper can only argue about
/// bias theoretically, whereas the simulators expose the true propensities.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// `E[r | x]` — the true preference surface (η in the semi-synthetic
    /// pipeline).
    pub preference: Tensor,
    /// The MNAR propensity `P(o = 1 | x, r)` evaluated at the realized
    /// rating of each pair.
    pub propensity_xr: Tensor,
    /// The MAR propensity `P(o = 1 | x) = E_r[P(o = 1 | x, r) | x]`.
    /// Equal to `propensity_xr` under MCAR/MAR mechanisms.
    pub propensity_x: Tensor,
    /// The realized ratings of **all** pairs (observed or not).
    pub ratings: Tensor,
}

impl GroundTruth {
    /// Validates internal consistency (shapes, probability ranges).
    ///
    /// # Panics
    /// Panics when shapes disagree or a propensity leaves `[0, 1]`.
    pub fn validate(&self) {
        let s = self.preference.shape();
        assert_eq!(self.propensity_xr.shape(), s, "propensity_xr shape");
        assert_eq!(self.propensity_x.shape(), s, "propensity_x shape");
        assert_eq!(self.ratings.shape(), s, "ratings shape");
        assert!(
            self.propensity_xr.min() >= 0.0 && self.propensity_xr.max() <= 1.0,
            "propensity_xr outside [0,1]"
        );
        assert!(
            self.propensity_x.min() >= 0.0 && self.propensity_x.max() <= 1.0,
            "propensity_x outside [0,1]"
        );
    }
}

/// A dataset: an MNAR training log, an unbiased test log, and (for
/// generated data) the oracle ground truth.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name (shows up in experiment reports).
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// The biased (MNAR) training log.
    pub train: InteractionLog,
    /// The unbiased (MCAR/MAR) test log; may be empty when evaluation is
    /// done against [`GroundTruth::preference`] instead.
    pub test: InteractionLog,
    /// Oracle quantities, when the data came from a generator.
    pub truth: Option<GroundTruth>,
}

impl Dataset {
    /// Validates index spaces and ground-truth shapes.
    ///
    /// # Panics
    /// Panics on any inconsistency.
    pub fn validate(&self) {
        assert_eq!(self.train.n_users(), self.n_users, "train user space");
        assert_eq!(self.train.n_items(), self.n_items, "train item space");
        assert_eq!(self.test.n_users(), self.n_users, "test user space");
        assert_eq!(self.test.n_items(), self.n_items, "test item space");
        if let Some(t) = &self.truth {
            assert_eq!(t.preference.rows(), self.n_users, "truth rows");
            assert_eq!(t.preference.cols(), self.n_items, "truth cols");
            t.validate();
        }
    }

    /// One-line description used in logs and tables.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}: {}x{} space, {} train ({}%), {} test",
            self.name,
            self.n_users,
            self.n_items,
            self.train.len(),
            (self.train.density() * 100.0 * 100.0).round() / 100.0,
            self.test.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interactions::Interaction;

    #[test]
    fn validate_accepts_consistent_dataset() {
        let train = InteractionLog::from_interactions(2, 2, vec![Interaction::new(0, 0, 1.0)]);
        let ds = Dataset {
            name: "tiny".into(),
            n_users: 2,
            n_items: 2,
            train,
            test: InteractionLog::new(2, 2),
            truth: Some(GroundTruth {
                preference: Tensor::full(2, 2, 0.5),
                propensity_xr: Tensor::full(2, 2, 0.3),
                propensity_x: Tensor::full(2, 2, 0.3),
                ratings: Tensor::zeros(2, 2),
            }),
        };
        ds.validate();
        assert!(ds.summary().contains("tiny"));
    }

    #[test]
    #[should_panic(expected = "propensity_xr outside")]
    fn validate_rejects_bad_propensities() {
        let ds = Dataset {
            name: "bad".into(),
            n_users: 1,
            n_items: 1,
            train: InteractionLog::new(1, 1),
            test: InteractionLog::new(1, 1),
            truth: Some(GroundTruth {
                preference: Tensor::zeros(1, 1),
                propensity_xr: Tensor::full(1, 1, 1.5),
                propensity_x: Tensor::full(1, 1, 0.5),
                ratings: Tensor::zeros(1, 1),
            }),
        };
        ds.validate();
    }
}
