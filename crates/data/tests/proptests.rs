//! Property-based tests for the data substrate.

use dt_data::{
    holdout_split, sparsify, uniform_pairs, BatchIter, Dataset, Interaction, InteractionLog,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_log() -> impl Strategy<Value = InteractionLog> {
    (2usize..12, 2usize..12).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m as u32, 0..n as u32, 0.0f64..5.0), 1..40).prop_map(
            move |entries| {
                let mut log = InteractionLog::new(m, n);
                for (u, i, r) in entries {
                    log.push(Interaction::new(u, i, r));
                }
                log
            },
        )
    })
}

proptest! {
    #[test]
    fn batch_iter_partitions_the_epoch(log in arbitrary_log(), batch in 1usize..16, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let it = BatchIter::new(&log, batch, &mut rng);
        let n_batches = it.n_batches();
        let batches: Vec<_> = it.collect();
        prop_assert_eq!(batches.len(), n_batches);
        let total: usize = batches.iter().map(Vec::len).sum();
        prop_assert_eq!(total, log.len());
        // Every batch except possibly the last is full-size.
        for b in &batches[..batches.len().saturating_sub(1)] {
            prop_assert_eq!(b.len(), batch);
        }
        // Multiset of ratings preserved.
        let mut seen: Vec<f64> = batches.iter().flatten().map(|i| i.rating).collect();
        let mut orig: Vec<f64> = log.interactions().iter().map(|i| i.rating).collect();
        seen.sort_by(f64::total_cmp);
        orig.sort_by(f64::total_cmp);
        prop_assert_eq!(seen, orig);
    }

    #[test]
    fn holdout_split_partitions(log in arbitrary_log(), frac in 0.0f64..0.9, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, hold) = holdout_split(&log, frac, &mut rng);
        prop_assert_eq!(train.len() + hold.len(), log.len());
        let expected_holdout = (log.len() as f64 * frac).round() as usize;
        prop_assert_eq!(hold.len(), expected_holdout);
    }

    #[test]
    fn uniform_pairs_stay_in_bounds(m in 1usize..50, n in 1usize..50, k in 0usize..200, seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = uniform_pairs(m, n, k, &mut rng);
        prop_assert_eq!(pairs.len(), k);
        for p in pairs {
            prop_assert!((p.user as usize) < m && (p.item as usize) < n);
        }
    }

    #[test]
    fn sparsify_keeps_the_requested_fraction(log in arbitrary_log(), frac in 0.05f64..1.0, seed in 0u64..50) {
        let ds = Dataset {
            name: "prop".into(),
            n_users: log.n_users(),
            n_items: log.n_items(),
            train: log.clone(),
            test: InteractionLog::new(log.n_users(), log.n_items()),
            truth: None,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let sub = sparsify(&ds, frac, &mut rng);
        let expected = ((log.len() as f64 * frac).round().max(1.0)) as usize;
        prop_assert_eq!(sub.train.len(), expected);
        prop_assert_eq!(sub.n_users, ds.n_users);
        // Subsample is a subset: every kept interaction exists in the original.
        let orig = ds.train.pair_set();
        for it in sub.train.interactions() {
            prop_assert!(orig.contains(it.user, it.item));
        }
    }

    #[test]
    fn pair_set_agrees_with_membership(log in arbitrary_log()) {
        let set = log.pair_set();
        for it in log.interactions() {
            prop_assert!(set.contains(it.user, it.item));
        }
        // A pair outside the space is never contained.
        prop_assert!(!set.contains(log.n_users() as u32 + 5, 0));
    }

    #[test]
    fn density_is_consistent(log in arbitrary_log()) {
        // Logs may contain duplicate pairs (repeat events), so density is
        // only lower-bounded; the defining identity must hold exactly.
        let d = log.density();
        prop_assert!(d >= 0.0);
        prop_assert!((d * log.n_pairs_total() as f64 - log.len() as f64).abs() < 1e-9);
    }
}
