//! Property tests for the mixed-precision serving panels: the i8
//! quantize→dequantize round trip against its analytic error bound, and
//! the fused `scan_top_k` kernel against the score-then-sort oracle at
//! every dtype and thread width.
//!
//! Needs the `proptest` crate, so this file only compiles in the full
//! workspace; the offline shim covers the same ground with the
//! deterministic fixed-vector and randomized sweeps inside
//! `dt_tensor::quant`'s unit tests.

use proptest::prelude::*;

use dt_tensor::quant::{quantize_row_i8, scan_top_k, score_user_items_into, Panel, PanelDtype};
use dt_tensor::topk::{select_top_k, Ranked};
use dt_tensor::{reference, Tensor};

/// Strategy: one panel row with entries spanning several magnitudes,
/// including exact zeros so the degenerate all-zero row keeps coming up.
fn row_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            3 => -100.0f64..100.0,
            1 => -0.001f64..0.001,
            1 => Just(0.0),
        ],
        1..48,
    )
}

/// Strategy: a (user panel, item panel) pair sharing one width, sized to
/// cross the chunked-parallel thresholds now and then.
fn panel_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..=4, 1usize..=8, 1usize..=80).prop_flat_map(|(users, dim, items)| {
        let p = prop::collection::vec(-2.0f64..2.0, users * dim);
        let q = prop::collection::vec(-2.0f64..2.0, items * dim);
        (p, q).prop_map(move |(p, q)| {
            (
                Tensor::from_vec(users, dim, p),
                Tensor::from_vec(items, dim, q),
            )
        })
    })
}

proptest! {
    /// The i8 round trip obeys the symmetric-quantizer contract: codes
    /// never exceed ±127, the largest-magnitude entry maps to ±127
    /// exactly, and every reconstruction lands within half a step.
    #[test]
    fn i8_round_trip_is_within_half_a_step(row in row_strategy()) {
        let mut q = vec![0i8; row.len()];
        let scale = quantize_row_i8(&row, &mut q);
        let amax = row.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if amax == 0.0 {
            prop_assert_eq!(scale, 0.0);
            prop_assert!(q.iter().all(|&c| c == 0));
        } else {
            prop_assert!(scale > 0.0);
            prop_assert!(q.iter().all(|&c| c.unsigned_abs() <= 127));
            prop_assert!(q.iter().any(|&c| c.unsigned_abs() == 127));
            for (&v, &c) in row.iter().zip(&q) {
                let err = (v - f64::from(c) * scale).abs();
                prop_assert!(
                    err <= scale / 2.0 + 1e-12 * amax,
                    "err {err} vs half-step {}", scale / 2.0
                );
            }
        }
    }

    /// Negating a row negates every code bit-exactly and keeps the scale:
    /// `f64::round` is symmetric, so the quantizer commutes with sign.
    #[test]
    fn i8_quantizer_commutes_with_negation(row in row_strategy()) {
        let neg: Vec<f64> = row.iter().map(|v| -v).collect();
        let (mut qa, mut qb) = (vec![0i8; row.len()], vec![0i8; row.len()]);
        let sa = quantize_row_i8(&row, &mut qa);
        let sb = quantize_row_i8(&neg, &mut qb);
        prop_assert_eq!(sa.to_bits(), sb.to_bits());
        for (&a, &b) in qa.iter().zip(&qb) {
            prop_assert_eq!(a, -b);
        }
    }

    /// The fused scan matches score-then-select bit-for-bit at every
    /// dtype — same retained set, same order, same score bits.
    #[test]
    fn fused_scan_matches_the_sort_oracle_at_every_dtype(
        (p, q) in panel_pair(),
        k in 0usize..12,
        user_pick in 0usize..4,
        mut exclude in prop::collection::vec(0u32..90, 0..12),
    ) {
        exclude.sort_unstable();
        exclude.dedup();
        let user = user_pick % p.rows();
        for dtype in [PanelDtype::F64, PanelDtype::F32, PanelDtype::ScaledI8] {
            let pp = Panel::quantize(&p, dtype);
            let qp = Panel::quantize(&q, dtype);
            let items: Vec<usize> = (0..q.rows()).collect();
            let mut scores = Vec::new();
            score_user_items_into(&pp, &qp, user, &items, None, &mut scores);
            let want = reference::top_k_by_sort(&scores, k, &exclude);
            let mut got = vec![Ranked::TOMBSTONE; k];
            let n = scan_top_k(&pp, &qp, user, 0..q.rows(), &exclude, None, &mut got);
            prop_assert_eq!(n, want.len(), "dtype {:?}", dtype);
            got.truncate(n);
            prop_assert_eq!(got, want, "dtype {:?}", dtype);
        }
    }

    /// Chunk geometry is fixed by shape constants, so both quant kernels
    /// return bit-identical results at pool widths 1, 2, and 8.
    #[test]
    fn quant_kernels_are_bit_identical_across_widths(
        (p, q) in panel_pair(),
        k in 1usize..8,
    ) {
        for dtype in [PanelDtype::F64, PanelDtype::F32, PanelDtype::ScaledI8] {
            let pp = Panel::quantize(&p, dtype);
            let qp = Panel::quantize(&q, dtype);
            let items: Vec<usize> = (0..q.rows()).collect();
            let run = || {
                let mut scores = Vec::new();
                score_user_items_into(&pp, &qp, 0, &items, None, &mut scores);
                let mut sel = vec![Ranked::TOMBSTONE; k];
                let n = select_top_k(&scores, &[], &mut sel);
                sel.truncate(n);
                (scores, sel)
            };
            let base = dt_parallel::with_thread_limit(1, run);
            for width in [2usize, 8] {
                let other = dt_parallel::with_thread_limit(width, run);
                let same_bits = base.0.iter().zip(&other.0)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                prop_assert!(same_bits, "dtype {:?} width {}", dtype, width);
                prop_assert_eq!(&base.1, &other.1, "dtype {:?} width {}", dtype, width);
            }
        }
    }
}
