//! Randomized equivalence and determinism tests for the blocked/parallel
//! kernels.
//!
//! Every assertion here is **exact** (`f64::to_bits`), not approximate:
//! the production kernels promise byte-identical results to the naive
//! oracles in `dt_tensor::reference` and across thread counts. The tests
//! sweep partition widths 1/2/8 via `dt_parallel::with_thread_limit`, and
//! `ci.sh` re-runs the whole suite under `DT_NUM_THREADS=1,2,8` so the
//! real pool width is covered as well.
//!
//! (Deliberately std-only — no proptest — so the offline verification shim
//! can execute this file; the proptest shape sweeps live in `proptests.rs`.)

use dt_tensor::{reference, Tensor};

/// Minimal xorshift64* generator: deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish in [-1, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }

    fn tensor(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|_| self.next_f64()).collect(),
        )
    }
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: byte mismatch at flat index {i}: {x} vs {y}"
        );
    }
}

/// (m, k, n) triples: micro-tile edges (1, 4±1), degenerate axes (0, 1),
/// and sizes that cross the parallel flop threshold and the `matmul_tn`
/// reduction-chunk boundary.
fn shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (0, 3, 2),
        (3, 0, 2),
        (3, 2, 0),
        (0, 0, 0),
        (1, 1, 1),
        (1, 7, 5),
        (5, 1, 7),
        (7, 5, 1),
        (3, 3, 3),
        (4, 4, 4),
        (5, 3, 9),
        (8, 8, 8),
        (13, 17, 11),
        (33, 9, 47),
        // Crosses PAR_MIN_FLOPS (2^17): parallel row-partition path.
        (96, 40, 96),
        (160, 64, 130),
    ]
}

#[test]
fn matmul_matches_naive_reference_exactly_at_every_width() {
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    for &(m, k, n) in &shapes() {
        let a = rng.tensor(m, k);
        let b = rng.tensor(k, n);
        let want = reference::matmul(&a, &b);
        for limit in [1, 2, 8] {
            let got = dt_parallel::with_thread_limit(limit, || a.matmul(&b));
            assert_bits_eq(&got, &want, &format!("matmul {m}x{k}x{n} @{limit}"));
        }
        let got_seq = dt_parallel::run_sequential(|| a.matmul(&b));
        assert_bits_eq(&got_seq, &want, &format!("matmul {m}x{k}x{n} sequential"));
    }
}

#[test]
fn matmul_nt_matches_naive_reference_exactly_at_every_width() {
    let mut rng = XorShift(0xDEAD_BEEF_CAFE_F00D);
    for &(m, k, n) in &shapes() {
        let a = rng.tensor(m, k);
        let b = rng.tensor(n, k);
        let want = reference::matmul_nt(&a, &b);
        for limit in [1, 2, 8] {
            let got = dt_parallel::with_thread_limit(limit, || a.matmul_nt(&b));
            assert_bits_eq(&got, &want, &format!("matmul_nt {m}x{k}x{n} @{limit}"));
        }
    }
}

#[test]
fn matmul_tn_matches_chunked_oracle_exactly_at_every_width() {
    let chunk = reference::tn_reduction_chunk();
    let mut rng = XorShift(0x1234_5678_9ABC_DEF1);
    // Input heights straddling the reduction-chunk boundary, including
    // several chunks and a ragged tail.
    let heights = [0, 1, 7, chunk - 1, chunk, chunk + 1, 3 * chunk - 5];
    for &r in &heights {
        for &(k1, k2) in &[(1, 1), (1, 6), (5, 1), (8, 8), (24, 32)] {
            let a = rng.tensor(r, k1);
            let b = rng.tensor(r, k2);
            let want = reference::matmul_tn_chunked(&a, &b, chunk);
            for limit in [1, 2, 8] {
                let got = dt_parallel::with_thread_limit(limit, || a.matmul_tn(&b));
                assert_bits_eq(&got, &want, &format!("matmul_tn {r}x{k1}/{k2} @{limit}"));
            }
            let got_seq = dt_parallel::run_sequential(|| a.matmul_tn(&b));
            assert_bits_eq(
                &got_seq,
                &want,
                &format!("matmul_tn {r}x{k1}/{k2} sequential"),
            );
        }
    }
}

#[test]
fn gram_is_exactly_symmetric_under_parallel_execution() {
    let mut rng = XorShift(42);
    let a = rng.tensor(1100, 16);
    for limit in [1, 2, 8] {
        let g = dt_parallel::with_thread_limit(limit, || a.gram());
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(g[(i, j)].to_bits(), g[(j, i)].to_bits());
            }
        }
    }
}

#[test]
fn elementwise_kernels_are_width_independent() {
    let mut rng = XorShift(7);
    // Crosses the element-wise parallel threshold (2^15 elements).
    let a = rng.tensor(260, 150);
    let b = rng.tensor(260, 150);
    let alpha = 0.37;
    let run = |limit: usize| {
        dt_parallel::with_thread_limit(limit, || {
            let mut acc = a.add(&b).mul(&a).sub(&b);
            acc.axpy(alpha, &b);
            acc.add_assign(&a);
            acc.scale_inplace(1.25);
            (
                acc.clone(),
                a.div(&b),
                a.scale(alpha),
                a.neg(),
                a.add_scalar(2.5),
            )
        })
    };
    let base = run(1);
    for limit in [2, 8] {
        let got = run(limit);
        assert_bits_eq(&got.0, &base.0, "chained elementwise");
        assert_bits_eq(&got.1, &base.1, "div");
        assert_bits_eq(&got.2, &base.2, "scale");
        assert_bits_eq(&got.3, &base.3, "neg");
        assert_bits_eq(&got.4, &base.4, "add_scalar");
    }
}

#[test]
fn trace_product_matches_explicit_product_trace() {
    let mut rng = XorShift(0xABCD);
    for &(m, k) in &[(1, 1), (3, 5), (17, 4), (40, 40)] {
        let a = rng.tensor(m, k);
        let b = rng.tensor(k, m);
        let prod = reference::matmul(&a, &b);
        let explicit: f64 = (0..m).map(|i| prod[(i, i)]).sum();
        let got = a.trace_product(&b);
        assert!(
            (got - explicit).abs() <= 1e-12 * explicit.abs().max(1.0),
            "trace_product {m}x{k}: {got} vs {explicit}"
        );
    }
}
