//! Property-based tests for the tensor kernels.

use dt_tensor::{reference, Tensor};
use proptest::prelude::*;

/// Strategy: a tensor with dims in 1..=6 and entries in [-10, 10].
fn tensor_strategy() -> impl Strategy<Value = Tensor> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(r, c, data))
    })
}

/// Strategy: a pair of tensors with identical shapes.
fn same_shape_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(r, c)| {
        let v = proptest::collection::vec(-10.0f64..10.0, r * c);
        (v.clone(), v)
            .prop_map(move |(a, b)| (Tensor::from_vec(r, c, a), Tensor::from_vec(r, c, b)))
    })
}

/// Strategy: matmul-compatible pair (m×k, k×n).
fn matmul_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..=5, 1usize..=5, 1usize..=5).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f64..5.0, m * k);
        let b = proptest::collection::vec(-5.0f64..5.0, k * n);
        (a, b).prop_map(move |(a, b)| (Tensor::from_vec(m, k, a), Tensor::from_vec(k, n, b)))
    })
}

/// Strategy: matmul-compatible pair with dims large enough to exercise the
/// micro-tile remainders and (occasionally) the parallel row partition.
fn wide_matmul_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..=40, 1usize..=20, 1usize..=40).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f64..5.0, m * k);
        let b = proptest::collection::vec(-5.0f64..5.0, k * n);
        (a, b).prop_map(move |(a, b)| (Tensor::from_vec(m, k, a), Tensor::from_vec(k, n, b)))
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in same_shape_pair()) {
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-12));
    }

    #[test]
    fn sub_then_add_roundtrips((a, b) in same_shape_pair()) {
        prop_assert!(a.sub(&b).add(&b).approx_eq(&a, 1e-10));
    }

    #[test]
    fn transpose_is_involution(a in tensor_strategy()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_preserves_frobenius(a in tensor_strategy()) {
        prop_assert!((a.frob_sq() - a.transpose().frob_sq()).abs() < 1e-9);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matmul_pair()) {
        // (AB)ᵀ == Bᵀ Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn matmul_tn_matches_transpose(a in tensor_strategy()) {
        let at = a.transpose();
        let lhs = at.matmul_tn(&at); // (Aᵀ)ᵀ(Aᵀ) = A Aᵀ
        let rhs = a.matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn matmul_nt_matches_transpose((a, b) in matmul_pair()) {
        let bt = b.transpose();
        prop_assert!(a.matmul_nt(&bt).approx_eq(&a.matmul(&b), 1e-9));
    }

    #[test]
    fn row_dot_diag_of_product((a, b) in same_shape_pair()) {
        let rd = a.row_dot(&b);
        let full = a.matmul_nt(&b);
        for i in 0..a.rows() {
            prop_assert!((rd.get(i, 0) - full.get(i, i)).abs() < 1e-9);
        }
    }

    #[test]
    fn frobenius_gram_identity((a, b) in matmul_pair()) {
        // ‖A Bᵀ‖²_F == trace((AᵀA)(BᵀB)) with B reshaped to share a's cols.
        let bt = b.transpose(); // n × k where k = a.cols()
        let direct = a.matmul_nt(&bt).frob_sq();
        let via_gram = a.gram().trace_product(&bt.gram());
        let scale = direct.abs().max(1.0);
        prop_assert!((direct - via_gram).abs() < 1e-8 * scale);
    }

    #[test]
    fn gather_then_scatter_is_row_count(a in tensor_strategy()) {
        // Gathering every row once and scattering back doubles the matrix.
        let idx: Vec<usize> = (0..a.rows()).collect();
        let g = a.gather_rows(&idx);
        let mut acc = a.clone();
        acc.scatter_add_rows(&idx, &g);
        prop_assert!(acc.approx_eq(&a.scale(2.0), 1e-12));
    }

    #[test]
    fn concat_slice_roundtrip((a, b) in same_shape_pair()) {
        let c = a.concat_cols(&b);
        prop_assert_eq!(c.slice_cols(0, a.cols()), a.clone());
        prop_assert_eq!(c.slice_cols(a.cols(), a.cols() + b.cols()), b);
        let r = a.concat_rows(&a);
        prop_assert_eq!(r.slice_rows(a.rows(), 2 * a.rows()), a);
    }

    #[test]
    fn row_col_sums_agree_with_total(a in tensor_strategy()) {
        let total = a.sum();
        prop_assert!((a.row_sums().sum() - total).abs() < 1e-9);
        prop_assert!((a.col_sums().sum() - total).abs() < 1e-9);
    }

    #[test]
    fn clamp_bounds_hold(a in tensor_strategy()) {
        let c = a.clamp(-1.0, 1.0);
        prop_assert!(c.min() >= -1.0 && c.max() <= 1.0);
    }

    // --- Blocked/parallel kernels vs naive reference: EXACT equality ---
    // The blocked kernels accumulate each output element in the same
    // ascending-k order as the naive triple loop, so the match is
    // bit-for-bit, not approximate; `prop_assert_eq!` is intentional.

    #[test]
    fn blocked_matmul_equals_naive_reference((a, b) in wide_matmul_pair()) {
        prop_assert_eq!(a.matmul(&b), reference::matmul(&a, &b));
    }

    #[test]
    fn blocked_matmul_nt_equals_naive_reference((a, b) in wide_matmul_pair()) {
        let bt = b.transpose(); // n × k
        prop_assert_eq!(a.matmul_nt(&bt), reference::matmul_nt(&a, &bt));
    }

    #[test]
    fn blocked_matmul_tn_equals_chunked_reference((a, b) in wide_matmul_pair()) {
        // matmul_tn's operands share their row count, so pair `a` (m×k)
        // with `a·b` (m×n) to vary both inner dimensions.
        let chunk = reference::tn_reduction_chunk();
        let other = a.matmul(&b);
        prop_assert_eq!(
            a.matmul_tn(&other),
            reference::matmul_tn_chunked(&a, &other, chunk)
        );
    }

    #[test]
    fn kernels_are_thread_count_independent((a, b) in wide_matmul_pair()) {
        let one = dt_parallel::with_thread_limit(1, || a.matmul(&b));
        let eight = dt_parallel::with_thread_limit(8, || a.matmul(&b));
        prop_assert_eq!(one, eight);
        let bt = b.transpose();
        let one = dt_parallel::with_thread_limit(1, || a.matmul_nt(&bt));
        let eight = dt_parallel::with_thread_limit(8, || a.matmul_nt(&bt));
        prop_assert_eq!(one, eight);
    }
}

/// Strategy: a `(weights, logits, targets)` triple sharing one shape —
/// positive IPS-style weights, logits wide enough to stress the stable BCE
/// form, targets in `[0, 1]`.
fn bce_triple() -> impl Strategy<Value = (Tensor, Tensor, Tensor)> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(r, c)| {
        let w = proptest::collection::vec(0.05f64..20.0, r * c);
        let x = proptest::collection::vec(-30.0f64..30.0, r * c);
        let t = proptest::collection::vec(0.0f64..=1.0, r * c);
        (w, x, t).prop_map(move |(w, x, t)| {
            (
                Tensor::from_vec(r, c, w),
                Tensor::from_vec(r, c, x),
                Tensor::from_vec(r, c, t),
            )
        })
    })
}

proptest! {
    #[test]
    fn fused_sigmoid_bce_is_bit_identical_to_reference((_w, x, t) in bce_triple()) {
        let (loss_f, res_f) = dt_tensor::fused::sigmoid_bce(&x, &t);
        let (loss_r, res_r) = dt_tensor::fused::sigmoid_bce_reference(&x, &t);
        prop_assert_eq!(loss_f.to_bits(), loss_r.to_bits());
        prop_assert_eq!(res_f, res_r);
    }

    #[test]
    fn fused_ips_weighted_bce_is_bit_identical_to_reference((w, x, t) in bce_triple()) {
        let (loss_f, res_f) = dt_tensor::fused::ips_weighted_bce(&w, &x, &t);
        let (loss_r, res_r) = dt_tensor::fused::ips_weighted_bce_reference(&w, &x, &t);
        prop_assert_eq!(loss_f.to_bits(), loss_r.to_bits());
        prop_assert_eq!(res_f, res_r);
    }

    #[test]
    fn fused_backwards_match_composed_products((w, x, t) in bce_triple()) {
        let scale = 1.0 / x.len() as f64;
        let (_, res) = dt_tensor::fused::sigmoid_bce(&x, &t);
        let dx = dt_tensor::fused::sigmoid_bce_backward(&res, scale);
        prop_assert_eq!(dx, res.map(|r| r * scale));
        let dxw = dt_tensor::fused::ips_weighted_bce_backward(&res, &w, scale);
        prop_assert_eq!(dxw, res.zip_map(&w, |r, wv| r * (scale * wv)));
    }

    #[test]
    fn pooled_and_fresh_kernels_are_bit_identical((a, b) in wide_matmul_pair()) {
        // The pool changes where bytes live, never what is computed: the
        // same kernel run with the pool bypassed must match bit-for-bit.
        let pooled = (a.matmul(&b), dt_tensor::fused::sigmoid_bce(&a, &a.map(|v| v.abs().fract())));
        let fresh = dt_tensor::pool::with_disabled(|| {
            (a.matmul(&b), dt_tensor::fused::sigmoid_bce(&a, &a.map(|v| v.abs().fract())))
        });
        prop_assert_eq!(pooled.0, fresh.0);
        prop_assert_eq!(pooled.1.0.to_bits(), fresh.1.0.to_bits());
        prop_assert_eq!(pooled.1.1, fresh.1.1);
    }
}
