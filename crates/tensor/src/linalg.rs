//! Small dense linear algebra: Cholesky factorisation and solves.
//!
//! Used by the IRLS (Newton) fitting path of the logistic-regression
//! propensity model: each iteration solves `(XᵀWX + λI) δ = XᵀWz` with a
//! symmetric positive-definite left-hand side of feature dimension `d`
//! (small — the feature maps here are low-dimensional), for which Cholesky
//! is the right tool.

use crate::Tensor;

/// Error raised when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// The pivot index where factorisation failed.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Tensor {
    /// Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix; returns the lower-triangular `L`.
    ///
    /// # Errors
    /// Returns [`NotPositiveDefinite`] when a pivot is non-positive.
    ///
    /// # Panics
    /// Panics when the matrix is not square.
    pub fn cholesky(&self) -> Result<Tensor, NotPositiveDefinite> {
        assert_eq!(self.rows(), self.cols(), "cholesky: matrix must be square");
        let n = self.rows();
        let mut l = Tensor::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(NotPositiveDefinite { pivot: i });
                    }
                    l.set(i, j, s.sqrt());
                } else {
                    l.set(i, j, s / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Solves `A·x = b` for symmetric positive-definite `A` via Cholesky
    /// (`b` is `n × 1`).
    ///
    /// # Errors
    /// Returns [`NotPositiveDefinite`] when `A` is not SPD.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn solve_spd(&self, b: &Tensor) -> Result<Tensor, NotPositiveDefinite> {
        assert_eq!(b.rows(), self.rows(), "solve_spd: rhs length mismatch");
        assert_eq!(b.cols(), 1, "solve_spd: rhs must be a column vector");
        let l = self.cholesky()?;
        let n = self.rows();
        // Forward substitution: L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b.get(i, 0);
            for k in 0..i {
                s -= l.get(i, k) * y[k];
            }
            y[i] = s / l.get(i, i);
        }
        // Back substitution: Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= l.get(k, i) * x[k];
            }
            x[i] = s / l.get(i, i);
        }
        Ok(Tensor::col_vec(&x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Tensor {
        // A·Aᵀ + I is SPD for any A.
        let a = Tensor::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.3, 1.0]]);
        let mut g = a.matmul_nt(&a);
        for i in 0..3 {
            g.set(i, i, g.get(i, i) + 1.0);
        }
        g
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd();
        let l = a.cholesky().unwrap();
        let back = l.matmul_nt(&l);
        assert!(back.approx_eq(&a, 1e-10), "{back:?} vs {a:?}");
        // L is lower triangular.
        for i in 0..3 {
            for j in i + 1..3 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn solve_spd_solves() {
        let a = spd();
        let x_true = Tensor::col_vec(&[1.0, -2.0, 0.5]);
        let b = a.matmul(&x_true);
        let x = a.solve_spd(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-9));
    }

    #[test]
    fn identity_solves_trivially() {
        let i3 = Tensor::eye(3);
        let b = Tensor::col_vec(&[4.0, 5.0, 6.0]);
        assert!(i3.solve_spd(&b).unwrap().approx_eq(&b, 1e-12));
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(a.cholesky(), Err(NotPositiveDefinite { pivot: 1 }));
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Tensor::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(a.cholesky().is_err());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let _ = Tensor::zeros(2, 3).cholesky();
    }
}
