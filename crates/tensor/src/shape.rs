//! Rank-2 shape type.

use std::fmt;

/// The shape of a rank-2 tensor: `rows × cols`.
///
/// Scalars are represented as `1 × 1`, row vectors as `1 × n` and column
/// vectors as `n × 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape {
    /// Creates a new shape.
    #[must_use]
    pub const fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// Total number of elements (`rows * cols`).
    #[must_use]
    pub const fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns `true` when the shape holds no elements.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` for the `1 × 1` shape.
    #[must_use]
    pub const fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// The transposed shape (`cols × rows`).
    #[must_use]
    pub const fn t(&self) -> Self {
        Self::new(self.cols, self.rows)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl From<(usize, usize)> for Shape {
    fn from((rows, cols): (usize, usize)) -> Self {
        Self::new(rows, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let s = Shape::new(3, 4);
        assert_eq!(s.len(), 12);
        assert!(!s.is_empty());
        assert!(!s.is_scalar());
        assert_eq!(s.t(), Shape::new(4, 3));
        assert_eq!(format!("{s}"), "3x4");
    }

    #[test]
    fn scalar_and_empty() {
        assert!(Shape::new(1, 1).is_scalar());
        assert!(Shape::new(0, 5).is_empty());
        assert!(Shape::new(5, 0).is_empty());
    }

    #[test]
    fn from_tuple() {
        let s: Shape = (2, 7).into();
        assert_eq!(s, Shape::new(2, 7));
    }
}
