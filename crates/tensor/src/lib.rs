//! # dt-tensor
//!
//! Dense, row-major, rank-2 `f64` tensors used as the numeric substrate of
//! the `disrec` workspace (the Rust reproduction of *"Uncovering the
//! Propensity Identification Problem in Debiased Recommendations"*,
//! ICDE 2024).
//!
//! Everything in the paper is a matrix: user/item embedding tables
//! (`users × dim`), mini-batches (`batch × dim`), Gram matrices
//! (`dim × dim`) and scalars (`1 × 1`). Restricting the library to rank-2
//! keeps every kernel small enough to be exhaustively tested (including
//! property-based tests) while still covering the whole workload.
//!
//! Shape mismatches are programmer errors and panic with a precise message,
//! mirroring the convention of `ndarray` and of the `Vec` indexing the
//! standard library uses. All random initialisation takes an explicit
//! [`rand::Rng`] so experiments stay deterministic under a fixed seed.
//!
//! The GEMM and large element-wise kernels run multi-threaded on the
//! workspace-shared `dt-parallel` pool (sized by `DT_NUM_THREADS`, default
//! all cores) and are **bit-for-bit deterministic for every thread count**
//! — see the `gemm` module docs for the contract and [`reference`] for the
//! naive oracles it is tested against.
//!
//! ## Example
//!
//! ```
//! use dt_tensor::Tensor;
//!
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! assert_eq!(a.frob_sq(), 1.0 + 4.0 + 9.0 + 16.0);
//! ```

// `unsafe` here is audited (lint R1): every block carries a SAFETY comment,
// and code inside `unsafe fn` still has to spell out its unsafe operations.
#![deny(unsafe_op_in_unsafe_fn)]

mod checked;
pub mod cluster;
mod elementwise;
pub mod fused;
mod gemm;
mod init;
mod linalg;
pub mod pool;
pub mod quant;
pub mod reference;
mod rowsparse;
pub mod scoring;
mod serdes;
mod shape;
mod tensor;
pub mod topk;

pub use gemm::TN_REDUCTION_CHUNK;
pub use init::{he_normal, normal, uniform, xavier_normal, xavier_uniform};
pub use linalg::NotPositiveDefinite;
pub use rowsparse::{Grad, RowSparse};
pub use shape::Shape;
pub use tensor::Tensor;

/// Absolute tolerance used by the crate's approximate comparisons.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most `tol` in absolute value
/// or by `tol` relative to the larger magnitude (handles both tiny and large
/// values sensibly).
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-12), 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(approx_eq(0.0, 0.0, 0.0));
    }
}
