//! Fused sigmoid→BCE kernels: loss + cached backward residual in one pass.
//!
//! Every method in the paper runs two of these chains per mini-batch — the
//! propensity head's plain BCE and the rating head's IPS-weighted BCE.
//! Composed from primitive ops, each chain materialises three intermediate
//! tensors (the element-wise BCE, the weighted product, the backward
//! residual) plus the reduction. The fused kernels here compute the scalar
//! mean loss and the backward residual `σ(x) − t` in a single pass over
//! the logits, touching **one** (pooled) buffer.
//!
//! ## Bit-identity contract
//!
//! Each fused kernel is *bit-identical* to its composed-op reference
//! ([`sigmoid_bce_reference`] / [`ips_weighted_bce_reference`], which spell
//! out the exact primitive chain used by `dt-autograd` before fusion):
//!
//! * the per-element BCE term is the same stable expression
//!   `max(x,0) − x·t + ln1p(e^{−|x|})`;
//! * for the IPS variant the weight folds in as `w · bce` *after* the BCE
//!   term is rounded, exactly like the composed `mul` node;
//! * the mean reduction is the same sequential Kahan sum over the same
//!   value sequence as [`crate::Tensor::sum`], divided by the length;
//! * the backward products associate the same way the composed sweep
//!   does: `r · c` for the plain kernel and `r · (c · w)` for the IPS
//!   kernel (the composed sweep scales the upstream gradient by `w`
//!   first).
//!
//! The equivalence is pinned by exhaustive sweeps in this module and by
//! proptests in `dt-autograd` that run whole training steps both ways.

use crate::checked::Check;
use crate::Tensor;

/// Overflow-free logistic sigmoid (shared with `dt-autograd`).
#[must_use]
pub fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// The numerically stable element-wise BCE-with-logits term
/// `max(x,0) − x·t + ln(1 + e^{−|x|})`.
#[must_use]
pub fn bce_term(x: f64, t: f64) -> f64 {
    x.max(0.0) - x * t + (-x.abs()).exp().ln_1p()
}

/// Kahan accumulator matching [`crate::Tensor::sum`] term for term.
struct Kahan {
    s: f64,
    c: f64,
}

impl Kahan {
    fn new() -> Self {
        Self { s: 0.0, c: 0.0 }
    }

    #[inline]
    fn add(&mut self, v: f64) {
        let y = v - self.c;
        let t = self.s + y;
        self.c = (t - self.s) - y;
        self.s = t;
    }
}

fn assert_same_shape(op: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "{op}: shape mismatch {} vs {}",
        a.shape(),
        b.shape()
    );
}

/// Fused `mean(bce_with_logits(logits, targets))`.
///
/// Returns the scalar mean loss together with the backward residual
/// `σ(x) − t` (one pooled buffer, the only allocation). Bit-identical to
/// [`sigmoid_bce_reference`].
///
/// # Panics
/// Panics on a shape mismatch or empty input (mean of nothing).
#[must_use]
pub fn sigmoid_bce(logits: &Tensor, targets: &Tensor) -> (f64, Tensor) {
    assert_same_shape("sigmoid_bce", logits, targets);
    assert!(!logits.is_empty(), "sigmoid_bce: mean of empty tensor");
    let mut residual = Tensor::pooled_scratch(logits.rows(), logits.cols());
    let mut acc = Kahan::new();
    for ((r, &x), &t) in residual
        .data_mut()
        .iter_mut()
        .zip(logits.data())
        .zip(targets.data())
    {
        acc.add(bce_term(x, t));
        *r = stable_sigmoid(x) - t;
    }
    let loss = acc.s / logits.len() as f64;
    Check::Finite.run("sigmoid_bce", residual.data());
    (loss, residual)
}

/// Fused `mean(weights ⊙ bce_with_logits(logits, targets))` — the
/// IPS-weighted rating loss with the weights folded into the same pass.
///
/// Returns the scalar mean loss and the backward residual `σ(x) − t`
/// (weights are *not* folded into the residual: the backward scale differs
/// per consumer). Bit-identical to [`ips_weighted_bce_reference`].
///
/// # Panics
/// Panics on a shape mismatch or empty input.
#[must_use]
pub fn ips_weighted_bce(weights: &Tensor, logits: &Tensor, targets: &Tensor) -> (f64, Tensor) {
    assert_same_shape("ips_weighted_bce", logits, targets);
    assert_same_shape("ips_weighted_bce", weights, logits);
    assert!(!logits.is_empty(), "ips_weighted_bce: mean of empty tensor");
    let mut residual = Tensor::pooled_scratch(logits.rows(), logits.cols());
    let mut acc = Kahan::new();
    for (((r, &x), &t), &w) in residual
        .data_mut()
        .iter_mut()
        .zip(logits.data())
        .zip(targets.data())
        .zip(weights.data())
    {
        // `w * bce` matches the composed `mul(w, bce)` node exactly.
        acc.add(w * bce_term(x, t));
        *r = stable_sigmoid(x) - t;
    }
    let loss = acc.s / logits.len() as f64;
    Check::Finite.run("ips_weighted_bce", residual.data());
    (loss, residual)
}

/// Backward of [`sigmoid_bce`] w.r.t. the logits: `dx_i = r_i · scale`
/// with `scale = ∂L/∂loss / n`. Output draws from the pool.
#[must_use]
pub fn sigmoid_bce_backward(residual: &Tensor, scale: f64) -> Tensor {
    let mut dx = Tensor::pooled_scratch(residual.rows(), residual.cols());
    for (d, &r) in dx.data_mut().iter_mut().zip(residual.data()) {
        *d = r * scale;
    }
    Check::Finite.run("sigmoid_bce_backward", dx.data());
    dx
}

/// Backward of [`ips_weighted_bce`] w.r.t. the logits:
/// `dx_i = r_i · (scale · w_i)` — the inner product associates exactly
/// like the composed sweep, which scales the upstream gradient by `w`
/// before it reaches the BCE node.
///
/// # Panics
/// Panics on a shape mismatch.
#[must_use]
pub fn ips_weighted_bce_backward(residual: &Tensor, weights: &Tensor, scale: f64) -> Tensor {
    assert_same_shape("ips_weighted_bce_backward", residual, weights);
    let mut dx = Tensor::pooled_scratch(residual.rows(), residual.cols());
    for ((d, &r), &w) in dx
        .data_mut()
        .iter_mut()
        .zip(residual.data())
        .zip(weights.data())
    {
        *d = r * (scale * w);
    }
    Check::Finite.run("ips_weighted_bce_backward", dx.data());
    dx
}

// ---------------------------------------------------------------------------
// Composed-op reference oracles
// ---------------------------------------------------------------------------

/// Composed-op reference for [`sigmoid_bce`]: the exact primitive chain
/// (`zip_map` BCE, then [`crate::Tensor::mean`]) the fused kernel replaces.
#[must_use]
pub fn sigmoid_bce_reference(logits: &Tensor, targets: &Tensor) -> (f64, Tensor) {
    let bce = logits.zip_map(targets, bce_term);
    let residual = logits.zip_map(targets, |x, t| stable_sigmoid(x) - t);
    (bce.mean(), residual)
}

/// Composed-op reference for [`ips_weighted_bce`]: element-wise BCE, a
/// `mul` with the weights, then the mean.
#[must_use]
pub fn ips_weighted_bce_reference(
    weights: &Tensor,
    logits: &Tensor,
    targets: &Tensor,
) -> (f64, Tensor) {
    let bce = logits.zip_map(targets, bce_term);
    let weighted = weights.mul(&bce);
    let residual = logits.zip_map(targets, |x, t| stable_sigmoid(x) - t);
    (weighted.mean(), residual)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — deterministic fill without the (offline-unavailable)
    /// rand crate, mirroring the harness used by `kernel_equivalence.rs`.
    struct XorShift(u64);

    impl XorShift {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            let v = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn batch(seed: u64, rows: usize, cols: usize) -> (Tensor, Tensor, Tensor) {
        let mut rng = XorShift(seed | 1);
        let logits = Tensor::from_fn(rows, cols, |_, _| (rng.next_f64() - 0.5) * 12.0);
        let targets = Tensor::from_fn(rows, cols, |_, _| f64::from(rng.next_f64() > 0.5));
        let weights = Tensor::from_fn(rows, cols, |_, _| 1.0 / rng.next_f64().max(0.05));
        (logits, targets, weights)
    }

    #[test]
    fn sigmoid_bce_matches_reference_bits() {
        for seed in 0..32u64 {
            let (x, t, _) = batch(seed, 17 + seed as usize, 3);
            let (fl, fr) = sigmoid_bce(&x, &t);
            let (rl, rr) = sigmoid_bce_reference(&x, &t);
            assert_eq!(fl.to_bits(), rl.to_bits(), "loss bits, seed {seed}");
            assert_eq!(fr, rr, "residual bits, seed {seed}");
        }
    }

    #[test]
    fn ips_weighted_bce_matches_reference_bits() {
        for seed in 0..32u64 {
            let (x, t, w) = batch(seed, 23 + seed as usize, 2);
            let (fl, fr) = ips_weighted_bce(&w, &x, &t);
            let (rl, rr) = ips_weighted_bce_reference(&w, &x, &t);
            assert_eq!(fl.to_bits(), rl.to_bits(), "loss bits, seed {seed}");
            assert_eq!(fr, rr, "residual bits, seed {seed}");
        }
    }

    #[test]
    fn backward_matches_composed_products_bits() {
        let (x, t, w) = batch(7, 64, 1);
        let (_, r) = sigmoid_bce(&x, &t);
        let scale = 1.0 / x.len() as f64;
        // Composed sweep: mean backward emits a full tensor of `scale`,
        // then the BCE node multiplies residual · upstream.
        let upstream = Tensor::full(x.rows(), x.cols(), scale);
        let composed = r.mul(&upstream);
        assert_eq!(sigmoid_bce_backward(&r, scale), composed);

        // IPS: upstream through the mul node is `scale · w` per element.
        let scaled_w = upstream.mul(&w);
        let composed_ips = r.mul(&scaled_w);
        assert_eq!(ips_weighted_bce_backward(&r, &w, scale), composed_ips);
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let x = Tensor::row_vec(&[500.0, -500.0, 0.0, 36.7, -36.7]);
        let t = Tensor::row_vec(&[0.0, 1.0, 0.5, 1.0, 0.0]);
        let (loss, r) = sigmoid_bce(&x, &t);
        assert!(loss.is_finite());
        assert!(r.all_finite());
        // σ(500) = 1, target 0 ⇒ loss term ≈ 500 dominates the mean.
        assert!(loss > 150.0);
    }

    #[test]
    fn single_element_is_the_plain_term() {
        let x = Tensor::scalar(0.75);
        let t = Tensor::scalar(1.0);
        let (loss, r) = sigmoid_bce(&x, &t);
        assert_eq!(loss.to_bits(), bce_term(0.75, 1.0).to_bits());
        assert_eq!(r.item().to_bits(), (stable_sigmoid(0.75) - 1.0).to_bits());
    }

    #[test]
    #[should_panic(expected = "sigmoid_bce: shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = sigmoid_bce(&Tensor::zeros(2, 2), &Tensor::zeros(2, 3));
    }

    #[test]
    fn weighted_kernel_with_unit_weights_matches_loss_of_plain() {
        let (x, t, _) = batch(3, 31, 1);
        let ones = Tensor::ones(x.rows(), x.cols());
        let (wl, _) = ips_weighted_bce(&ones, &x, &t);
        // `1.0 * bce` is bit-exact `bce`, so the Kahan streams coincide.
        let (pl, _) = sigmoid_bce(&x, &t);
        assert_eq!(wl.to_bits(), pl.to_bits());
    }
}
