//! The dense rank-2 tensor type and its element-wise / structural kernels.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::Shape;

/// A dense, row-major, rank-2 `f64` tensor.
///
/// See the crate-level docs for the design rationale. The invariant
/// `data.len() == rows * cols` holds at all times.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f64>,
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

impl Tensor {
    /// A tensor of zeros with the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            shape: Shape::new(rows, cols),
            data: vec![0.0; rows * cols],
        }
    }

    /// A tensor of ones with the given shape.
    #[must_use]
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// A tensor filled with `value`.
    #[must_use]
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            shape: Shape::new(rows, cols),
            data: vec![value; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A `1 × 1` tensor holding `value`.
    #[must_use]
    pub fn scalar(value: f64) -> Self {
        Self {
            shape: Shape::new(1, 1),
            // alloc-ok: 1×1 scalar — below any pooling granularity
            data: vec![value],
        }
    }

    /// Builds a tensor from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self {
            shape: Shape::new(rows, cols),
            data,
        }
    }

    /// Builds a tensor from row slices; all rows must have equal length.
    ///
    /// # Panics
    /// Panics on ragged input or when `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has ragged length");
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// A `1 × n` row vector.
    #[must_use]
    pub fn row_vec(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// An `n × 1` column vector.
    #[must_use]
    pub fn col_vec(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// A zero tensor whose backing buffer is drawn from the thread-local
    /// [`crate::pool`] (falls back to a fresh allocation on a miss or when
    /// the pool is disabled). Bit-identical to [`Tensor::zeros`].
    #[must_use]
    pub fn pooled_zeros(rows: usize, cols: usize) -> Self {
        Self {
            shape: Shape::new(rows, cols),
            data: crate::pool::take_zeroed(rows * cols),
        }
    }

    /// A pooled tensor with **unspecified contents** — stale data from a
    /// previous user on a pool hit. Strictly for kernels that overwrite
    /// every element before the tensor escapes; never read before write.
    #[must_use]
    pub fn pooled_scratch(rows: usize, cols: usize) -> Self {
        Self {
            shape: Shape::new(rows, cols),
            data: crate::pool::take(rows * cols),
        }
    }

    /// A pooled tensor filled with `value`; bit-identical to
    /// [`Tensor::full`].
    #[must_use]
    pub fn pooled_full(rows: usize, cols: usize, value: f64) -> Self {
        let mut out = Self::pooled_scratch(rows, cols);
        out.data.fill(value);
        out
    }

    /// A pooled copy of `self` (same shape and contents).
    #[must_use]
    pub fn pooled_clone(&self) -> Self {
        let mut out = Self::pooled_scratch(self.rows(), self.cols());
        out.data.copy_from_slice(&self.data);
        out
    }

    /// Consumes the tensor and parks its buffer on the thread-local
    /// [`crate::pool`] free list for reuse.
    pub fn recycle(self) {
        crate::pool::recycle(self.data);
    }

    /// Builds a tensor by evaluating `f(row, col)` for every element.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self::from_vec(rows, cols, data)
    }
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

impl Tensor {
    /// The shape of the tensor.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.shape.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.shape.cols
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major backing slice.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor and returns its row-major data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self[(row, col)]
    }

    /// Sets the element at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] = value;
    }

    /// The single value of a `1 × 1` tensor.
    ///
    /// # Panics
    /// Panics when the tensor is not scalar-shaped.
    #[must_use]
    pub fn item(&self) -> f64 {
        assert!(
            self.shape.is_scalar(),
            "item: tensor has shape {}, expected 1x1",
            self.shape
        );
        self.data[0]
    }

    /// Slice view of row `i`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        let c = self.cols();
        assert!(
            i < self.rows(),
            "row index {i} out of bounds for {}",
            self.shape
        );
        &self.data[i * c..(i + 1) * c]
    }

    /// Mutable slice view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let c = self.cols();
        assert!(
            i < self.rows(),
            "row index {i} out of bounds for {}",
            self.shape
        );
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Returns `true` when every element is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Approximate equality with per-element tolerance.
    #[must_use]
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| crate::approx_eq(*a, *b, tol))
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows() && col < self.cols(),
            "index ({row},{col}) out of bounds for {}",
            self.shape
        );
        &self.data[row * self.cols() + col]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows() && col < self.cols(),
            "index ({row},{col}) out of bounds for {}",
            self.shape
        );
        let c = self.cols();
        &mut self.data[row * c + col]
    }
}

// ---------------------------------------------------------------------------
// Broadcasts
//
// (The flat element-wise kernels — add/sub/mul/div, axpy, scale, map — live
// in `elementwise.rs`, where the large-tensor paths run on the shared
// `dt-parallel` pool.)
// ---------------------------------------------------------------------------

macro_rules! assert_same_shape {
    ($op:literal, $a:expr, $b:expr) => {
        assert_eq!(
            $a.shape, $b.shape,
            concat!($op, ": shape mismatch {} vs {}"),
            $a.shape, $b.shape
        );
    };
}

impl Tensor {
    /// Adds the `1 × cols` row vector `bias` to every row.
    #[must_use]
    pub fn add_row_broadcast(&self, bias: &Self) -> Self {
        assert_eq!(
            bias.shape,
            Shape::new(1, self.cols()),
            "add_row_broadcast: bias shape {} incompatible with {}",
            bias.shape,
            self.shape
        );
        let mut out = self.pooled_clone();
        for i in 0..out.rows() {
            for (o, b) in out.row_mut(i).iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
        out
    }

    /// Adds the `rows × 1` column vector `bias` to every column.
    #[must_use]
    pub fn add_col_broadcast(&self, bias: &Self) -> Self {
        assert_eq!(
            bias.shape,
            Shape::new(self.rows(), 1),
            "add_col_broadcast: bias shape {} incompatible with {}",
            bias.shape,
            self.shape
        );
        let mut out = self.pooled_clone();
        for i in 0..out.rows() {
            let b = bias.data[i];
            for o in out.row_mut(i) {
                *o += b;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

impl Tensor {
    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        // Kahan summation keeps estimator-bias measurements precise when
        // reducing millions of near-cancelling IPS terms.
        let mut s = 0.0;
        let mut c = 0.0;
        for &v in &self.data {
            let y = v - c;
            let t = s + y;
            c = (t - s) - y;
            s = t;
        }
        s
    }

    /// Mean of all elements.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    #[must_use]
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of empty tensor");
        self.sum() / self.len() as f64
    }

    /// Squared Frobenius norm `Σ v²`.
    #[must_use]
    pub fn frob_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Largest element (`-inf` for empty tensors is not allowed).
    #[must_use]
    pub fn max(&self) -> f64 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element.
    #[must_use]
    pub fn min(&self) -> f64 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Per-row sums as an `rows × 1` column vector.
    #[must_use]
    pub fn row_sums(&self) -> Self {
        let mut out = Tensor::pooled_scratch(self.rows(), 1);
        for i in 0..self.rows() {
            out.data[i] = self.row(i).iter().sum();
        }
        out
    }

    /// Per-column sums as a `1 × cols` row vector.
    #[must_use]
    pub fn col_sums(&self) -> Self {
        // Accumulates row by row, so the buffer must start zeroed.
        let mut out = Tensor::pooled_zeros(1, self.cols());
        for i in 0..self.rows() {
            for (o, v) in out.data.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        out
    }

    /// Dot product of two same-shaped tensors viewed as flat vectors.
    #[must_use]
    pub fn dot(&self, other: &Self) -> f64 {
        assert_same_shape!("dot", self, other);
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }
}

// ---------------------------------------------------------------------------
// Structural ops
// ---------------------------------------------------------------------------

impl Tensor {
    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut out = Tensor::pooled_scratch(self.cols(), self.rows());
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                out.data[j * self.rows() + i] = self.data[i * self.cols() + j];
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]` (same row count).
    #[must_use]
    pub fn concat_cols(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows(),
            other.rows(),
            "concat_cols: row mismatch {} vs {}",
            self.shape,
            other.shape
        );
        let mut out = Tensor::pooled_scratch(self.rows(), self.cols() + other.cols());
        for i in 0..self.rows() {
            let dst = out.row_mut(i);
            dst[..self.cols()].copy_from_slice(self.row(i));
            dst[self.cols()..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Vertical concatenation (same column count).
    #[must_use]
    pub fn concat_rows(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols(),
            other.cols(),
            "concat_rows: col mismatch {} vs {}",
            self.shape,
            other.shape
        );
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Self::from_vec(self.rows() + other.rows(), self.cols(), data)
    }

    /// Copy of columns `lo..hi`.
    #[must_use]
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Self {
        assert!(
            lo <= hi && hi <= self.cols(),
            "slice_cols: range {lo}..{hi} out of bounds for {}",
            self.shape
        );
        let mut out = Tensor::pooled_scratch(self.rows(), hi - lo);
        for i in 0..self.rows() {
            out.row_mut(i).copy_from_slice(&self.row(i)[lo..hi]);
        }
        out
    }

    /// Copy of rows `lo..hi`.
    #[must_use]
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Self {
        assert!(
            lo <= hi && hi <= self.rows(),
            "slice_rows: range {lo}..{hi} out of bounds for {}",
            self.shape
        );
        Self::from_vec(
            hi - lo,
            self.cols(),
            self.data[lo * self.cols()..hi * self.cols()].to_vec(),
        )
    }

    /// Gathers the listed rows into a `indices.len() × cols` tensor
    /// (the embedding-lookup kernel). Indices may repeat.
    #[must_use]
    pub fn gather_rows(&self, indices: &[usize]) -> Self {
        let mut out = Tensor::pooled_scratch(indices.len(), self.cols());
        for (k, &i) in indices.iter().enumerate() {
            assert!(
                i < self.rows(),
                "gather_rows: index {i} out of bounds for {}",
                self.shape
            );
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Scatter-adds the rows of `src` into `self` at the listed indices
    /// (the backward of [`Tensor::gather_rows`]). Repeated indices
    /// accumulate.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Self) {
        assert_eq!(
            src.rows(),
            indices.len(),
            "scatter_add_rows: {} rows vs {} indices",
            src.rows(),
            indices.len()
        );
        assert_eq!(
            src.cols(),
            self.cols(),
            "scatter_add_rows: col mismatch {} vs {}",
            src.shape,
            self.shape
        );
        for (k, &i) in indices.iter().enumerate() {
            assert!(
                i < self.rows(),
                "scatter_add_rows: index {i} out of bounds for {}",
                self.shape
            );
            for (d, s) in self.row_mut(i).iter_mut().zip(src.row(k)) {
                *d += s;
            }
        }
    }

    /// Row-wise dot product of two `n × k` tensors, producing `n × 1`
    /// (the fused matrix-factorisation prediction kernel `Σ_k a[i,k]·b[i,k]`).
    #[must_use]
    pub fn row_dot(&self, other: &Self) -> Self {
        assert_same_shape!("row_dot", self, other);
        let mut out = Tensor::pooled_scratch(self.rows(), 1);
        for i in 0..self.rows() {
            out.data[i] = self
                .row(i)
                .iter()
                .zip(other.row(i))
                .map(|(a, b)| a * b)
                .sum();
        }
        out
    }

    /// Reshape into `rows × cols` (element count must match).
    #[must_use]
    pub fn reshape(&self, rows: usize, cols: usize) -> Self {
        assert_eq!(
            self.len(),
            rows * cols,
            "reshape: cannot view {} as {rows}x{cols}",
            self.shape
        );
        Self::from_vec(rows, cols, self.data.clone())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {} [", self.shape)?;
        const MAX_ROWS: usize = 8;
        const MAX_COLS: usize = 8;
        for i in 0..self.rows().min(MAX_ROWS) {
            write!(f, "  [")?;
            for j in 0..self.cols().min(MAX_COLS) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols() > MAX_COLS {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows() > MAX_ROWS {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(2, 3).sum(), 0.0);
        assert_eq!(Tensor::ones(2, 3).sum(), 6.0);
        assert_eq!(Tensor::full(2, 2, 0.5).sum(), 2.0);
        assert_eq!(Tensor::eye(3).sum(), 3.0);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
        let t = Tensor::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing_and_rows() {
        let mut t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t[(1, 0)], 3.0);
        t[(0, 1)] = 9.0;
        assert_eq!(t.row(0), &[1.0, 9.0]);
        t.row_mut(1)[1] = -1.0;
        assert_eq!(t.get(1, 1), -1.0);
    }

    #[test]
    fn broadcasts() {
        let a = Tensor::zeros(2, 3);
        let row = Tensor::row_vec(&[1.0, 2.0, 3.0]);
        let col = Tensor::col_vec(&[10.0, 20.0]);
        assert_eq!(
            a.add_row_broadcast(&row).data(),
            &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
        );
        assert_eq!(
            a.add_col_broadcast(&col).data(),
            &[10.0, 10.0, 10.0, 20.0, 20.0, 20.0]
        );
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 1.5);
        assert_eq!(a.frob_sq(), 1.0 + 4.0 + 9.0 + 16.0);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.row_sums().data(), &[-1.0, 7.0]);
        assert_eq!(a.col_sums().data(), &[4.0, 2.0]);
        assert_eq!(a.dot(&a), a.frob_sq());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), Shape::new(3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn concat_and_slice() {
        let a = Tensor::from_rows(&[&[1.0], &[2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
        assert_eq!(c.slice_cols(0, 1), a);
        assert_eq!(c.slice_cols(1, 3), b);
        let d = a.concat_rows(&Tensor::from_rows(&[&[9.0]]));
        assert_eq!(d.data(), &[1.0, 2.0, 9.0]);
        assert_eq!(d.slice_rows(2, 3).data(), &[9.0]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let table = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = table.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);

        let mut acc = Tensor::zeros(3, 2);
        acc.scatter_add_rows(&[2, 0, 2], &g);
        // Row 2 received itself twice.
        assert_eq!(acc.row(2), &[10.0, 12.0]);
        assert_eq!(acc.row(0), &[1.0, 2.0]);
        assert_eq!(acc.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn row_dot_matches_manual() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.row_dot(&b).data(), &[17.0, 53.0]);
    }

    #[test]
    fn reshape() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let b = a.reshape(2, 2);
        assert_eq!(b[(1, 0)], 3.0);
    }

    #[test]
    fn kahan_sum_is_accurate() {
        // 1 + 1e-16 repeated: naive summation loses the small terms.
        let mut data = vec![1.0];
        data.extend(std::iter::repeat_n(1e-16, 10_000));
        let t = Tensor::from_vec(1, data.len(), data);
        let expected = 1.0 + 1e-12;
        assert!((t.sum() - expected).abs() < 1e-15);
    }

    #[test]
    fn debug_format_truncates() {
        let t = Tensor::zeros(20, 20);
        let s = format!("{t:?}");
        assert!(s.contains("…"));
        assert!(s.contains("20x20"));
    }
}

// Serde impls for this type live in `serdes.rs`, so this file stays
// dependency-free for the offline verification harness.
