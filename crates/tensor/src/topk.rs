//! Deterministic partial top-K selection: the serving-side ranking kernel.
//!
//! Full-catalog retrieval ranks every item for a user but only keeps the
//! best K of them. Sorting all `M` scores costs `O(M log M)` and an index
//! permutation per user; this module keeps a K-element bounded heap *inside
//! the caller's output slice* instead, so selection is allocation-free and
//! costs one comparison per rejected candidate — `O(M + K log K)` on
//! typical score distributions, `O(M log K)` worst case.
//!
//! ## Ordering contract
//!
//! Results are ordered best-first by **(score descending, item id
//! ascending)** under [`f64::total_cmp`]. The item-id tie-break makes the
//! output a pure function of the scores — independent of heap internals,
//! thread count or buffer reuse — and matches the stable descending sort
//! `dt-metrics` has always used (a stable sort keeps equal-scored items in
//! ascending index order). [`crate::reference::top_k_by_sort`] is the
//! oracle form of the same contract.

use std::cmp::Ordering;

/// One retrieved item: a catalog id and its raw ranking score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ranked {
    /// Catalog item id (a row index of the item panel).
    pub item: u32,
    /// Raw ranking score (higher is better).
    pub score: f64,
}

impl Ranked {
    /// Filler for unused output slots when fewer than K candidates exist:
    /// ranks after every real candidate and uses an id no catalog can
    /// reach (catalogs are bounded to `u32::MAX - 1` items).
    pub const TOMBSTONE: Self = Self {
        item: u32::MAX,
        score: f64::NEG_INFINITY,
    };

    /// Returns `true` for the unused-slot filler.
    #[must_use]
    pub fn is_tombstone(&self) -> bool {
        self.item == u32::MAX && self.score == f64::NEG_INFINITY
    }
}

/// The serving rank order: best first, i.e. score descending under
/// [`f64::total_cmp`] with ascending item id breaking ties. Usable
/// directly as a `sort_by` comparator.
#[must_use]
pub fn rank_cmp(a: &Ranked, b: &Ranked) -> Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.item.cmp(&b.item))
}

/// `a` ranks strictly after `b` (the heap's "worse" relation).
#[inline]
fn worse(a: Ranked, b: Ranked) -> bool {
    rank_cmp(&a, &b) == Ordering::Greater
}

/// Restores the worst-at-root heap property downward from slot `i`.
fn sift_down(heap: &mut [Ranked], mut i: usize) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut w = i;
        if l < heap.len() && worse(heap[l], heap[w]) {
            w = l;
        }
        if r < heap.len() && worse(heap[r], heap[w]) {
            w = r;
        }
        if w == i {
            return;
        }
        heap.swap(i, w);
        i = w;
    }
}

/// Restores the worst-at-root heap property upward from slot `i`.
fn sift_up(heap: &mut [Ranked], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if worse(heap[i], heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            return;
        }
    }
}

/// The incremental form of [`select_top_k`]: a bounded worst-at-root heap
/// living in a caller slice, fed candidate by candidate.
///
/// Callers that produce candidates in streams — dtype-specialized panel
/// scans, or merges of per-shard partial results — push each survivor and
/// call [`BoundedRank::finish`] once to heapsort the slice best-first per
/// [`rank_cmp`]. Because the rank order is a strict total order, the
/// retained set (and the sorted output) is a pure function of the pushed
/// candidate *set*, independent of push order — which is what makes
/// sharded partial selection plus merge bit-identical to one full pass.
pub struct BoundedRank<'a> {
    out: &'a mut [Ranked],
    len: usize,
}

impl<'a> BoundedRank<'a> {
    /// Starts a selection of the best `out.len()` candidates into `out`.
    pub fn new(out: &'a mut [Ranked]) -> Self {
        Self { out, len: 0 }
    }

    /// Offers one candidate; keeps it iff it ranks among the best seen.
    #[inline]
    pub fn push(&mut self, cand: Ranked) {
        if self.len < self.out.len() {
            self.out[self.len] = cand;
            self.len += 1;
            sift_up(&mut self.out[..self.len], self.len - 1);
        } else if self.len > 0 && worse(self.out[0], cand) {
            // The root is the worst kept candidate; replace and re-sink.
            self.out[0] = cand;
            sift_down(&mut self.out[..self.len], 0);
        }
    }

    /// Heapsorts the survivors best-first, tombstones the unused tail,
    /// and returns the number of slots filled.
    pub fn finish(self) -> usize {
        // In-place heapsort: repeatedly move the worst survivor to the
        // back, leaving the filled prefix in best-first order.
        let mut n = self.len;
        while n > 1 {
            self.out.swap(0, n - 1);
            n -= 1;
            sift_down(&mut self.out[..n], 0);
        }
        for slot in &mut self.out[self.len..] {
            *slot = Ranked::TOMBSTONE;
        }
        self.len
    }
}

/// Selects the top `out.len()` items of `scores` into `out`, best first
/// per [`rank_cmp`], skipping the item ids listed in `exclude`.
/// Returns the number of slots filled; the rest are set to
/// [`Ranked::TOMBSTONE`].
///
/// The bounded heap lives directly in `out`, so the kernel allocates
/// nothing. `exclude` must be sorted ascending (duplicates and ids beyond
/// the catalog are tolerated); candidates are scanned in ascending item
/// order with a single merge pointer into it. Scores compare under
/// [`f64::total_cmp`], so even NaNs rank deterministically.
///
/// # Panics
/// Panics when `scores` has `u32::MAX` or more entries (item ids must fit
/// a `u32` with the tombstone id left over).
pub fn select_top_k(scores: &[f64], exclude: &[u32], out: &mut [Ranked]) -> usize {
    assert!(
        (scores.len() as u64) < u64::from(u32::MAX),
        "select_top_k: catalog of {} items overflows u32 ids",
        scores.len()
    );
    debug_assert!(
        exclude.windows(2).all(|w| w[0] <= w[1]),
        "select_top_k: exclude list must be sorted ascending"
    );
    if out.is_empty() {
        return 0;
    }
    let mut rank = BoundedRank::new(out);
    let mut e = 0usize;
    for (i, &score) in scores.iter().enumerate() {
        let item = i as u32;
        while e < exclude.len() && exclude[e] < item {
            e += 1;
        }
        if e < exclude.len() && exclude[e] == item {
            continue;
        }
        rank.push(Ranked { item, score });
    }
    rank.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(scores: &[f64], k: usize, exclude: &[u32]) -> Vec<Ranked> {
        let mut out = vec![Ranked::TOMBSTONE; k];
        let n = select_top_k(scores, exclude, &mut out);
        assert!(out[n..].iter().all(Ranked::is_tombstone));
        out.truncate(n);
        out
    }

    #[test]
    fn picks_best_in_order() {
        let got = select(&[0.1, 0.9, 0.5, 0.7], 2, &[]);
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].item, got[0].score), (1, 0.9));
        assert_eq!((got[1].item, got[1].score), (3, 0.7));
    }

    #[test]
    fn ties_break_by_ascending_item_id() {
        let got = select(&[0.5, 0.5, 0.5, 0.5], 3, &[]);
        let items: Vec<u32> = got.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![0, 1, 2]);
    }

    #[test]
    fn k_larger_than_catalog_fills_tombstones() {
        let mut out = vec![Ranked::TOMBSTONE; 5];
        let n = select_top_k(&[1.0, 2.0], &[], &mut out);
        assert_eq!(n, 2);
        assert_eq!(out[0].item, 1);
        assert_eq!(out[1].item, 0);
        assert!(out[2..].iter().all(Ranked::is_tombstone));
    }

    #[test]
    fn exclusion_skips_seen_items() {
        let got = select(&[0.9, 0.8, 0.7, 0.6], 2, &[0, 2]);
        let items: Vec<u32> = got.iter().map(|r| r.item).collect();
        assert_eq!(items, vec![1, 3]);
    }

    #[test]
    fn excluding_everything_yields_empty() {
        let got = select(&[1.0, 2.0], 2, &[0, 1]);
        assert!(got.is_empty());
    }

    #[test]
    fn exclude_ids_beyond_catalog_are_ignored() {
        let got = select(&[1.0, 2.0], 2, &[5, 9]);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn zero_k_selects_nothing() {
        assert_eq!(select_top_k(&[1.0, 2.0], &[], &mut []), 0);
    }

    #[test]
    fn empty_scores_select_nothing() {
        let got = select(&[], 3, &[]);
        assert!(got.is_empty());
    }

    #[test]
    fn matches_sort_oracle_on_adversarial_duplicates() {
        // Many duplicate blocks so the heap sees constant tie pressure.
        let scores: Vec<f64> = (0..257).map(|i| f64::from(i % 7) * 0.25).collect();
        for k in [1, 3, 7, 50, 257, 300] {
            let got = select(&scores, k, &[3, 4, 100]);
            let want = crate::reference::top_k_by_sort(&scores, k, &[3, 4, 100]);
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn bounded_rank_is_push_order_independent() {
        let scores: Vec<f64> = (0..97).map(|i| f64::from((i * 31) % 13) * 0.5).collect();
        let forward = select(&scores, 10, &[]);
        let mut out = vec![Ranked::TOMBSTONE; 10];
        let mut rank = BoundedRank::new(&mut out);
        for (i, &score) in scores.iter().enumerate().rev() {
            rank.push(Ranked {
                item: i as u32,
                score,
            });
        }
        let n = rank.finish();
        assert_eq!(&out[..n], &forward[..]);
    }

    #[test]
    fn bounded_rank_zero_capacity_keeps_nothing() {
        let mut rank = BoundedRank::new(&mut []);
        rank.push(Ranked {
            item: 0,
            score: 1.0,
        });
        assert_eq!(rank.finish(), 0);
    }

    #[test]
    fn nan_scores_rank_deterministically() {
        let scores = [0.5, f64::NAN, 0.7, f64::NAN];
        let a = select(&scores, 4, &[]);
        let b = select(&scores, 4, &[]);
        let ids = |v: &[Ranked]| v.iter().map(|r| r.item).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        // total_cmp ranks +NaN above every finite score.
        assert_eq!(ids(&a), vec![1, 3, 2, 0]);
    }
}
