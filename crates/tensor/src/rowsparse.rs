//! Row-sparse gradients and the dense/sparse gradient enum.
//!
//! A mini-batch of `B` interactions touches at most `B` rows of an `M × K`
//! embedding table, yet a dense gradient pays `O(M·K)` to represent, merge
//! and consume those `B` rows. [`RowSparse`] stores only the touched rows —
//! sorted unique row indices plus a dense `nnz × K` block — so the whole
//! backward + optimizer path runs in `O(B·K)` per table.
//!
//! Every kernel here is **accumulation-order faithful** to its dense
//! counterpart: [`RowSparse::from_scatter`] adds duplicate indices in the
//! original batch order exactly like [`Tensor::scatter_add_rows`], and
//! [`RowSparse::merge`] reproduces `dense_a.add_assign(&dense_b)` per
//! element (including the `x + 0.0` IEEE normalisation for rows present on
//! only one side). Densifying any chain of sparse accumulations therefore
//! yields the same bits as running the chain densely, which is what the
//! `DenseEquivalent` optimizer tests in `dt-optim` assert.
//!
//! Merge and scale kernels fan out to the shared `dt-parallel` pool for
//! large blocks (the same element-per-thread determinism contract as
//! `elementwise.rs`); the scatter construction and dense fold-in are
//! single-pass and stay sequential.

use crate::checked::Check;
use crate::Tensor;

/// Minimum block elements before the merge kernel fans out to the pool.
const PAR_MIN_ELEMS: usize = 1 << 15;

/// A row-sparse view of an `rows × cols` gradient: `indices` are sorted and
/// unique, `block` holds one dense row per index.
#[derive(Clone, Debug, PartialEq)]
pub struct RowSparse {
    rows: usize,
    cols: usize,
    indices: Vec<usize>,
    block: Tensor,
}

impl RowSparse {
    /// An all-zero gradient for an `rows × cols` table (no rows touched).
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indices: Vec::new(),
            block: Tensor::zeros(0, cols),
        }
    }

    /// Builds the gradient of a row-gather: `src.row(k)` is scatter-added at
    /// `indices[k]`. Duplicate indices accumulate in batch (`k`) order, so
    /// the result densifies to exactly [`Tensor::scatter_add_rows`] on a
    /// zero table.
    ///
    /// # Panics
    /// Panics when `src.rows() != indices.len()`, on a column mismatch, or
    /// on an out-of-bounds index.
    #[must_use]
    pub fn from_scatter(rows: usize, cols: usize, indices: &[usize], src: &Tensor) -> Self {
        assert_eq!(
            src.rows(),
            indices.len(),
            "from_scatter: {} rows vs {} indices",
            src.rows(),
            indices.len()
        );
        assert_eq!(
            src.cols(),
            cols,
            "from_scatter: col mismatch {} vs {cols}",
            src.cols()
        );
        for &i in indices {
            assert!(
                i < rows,
                "from_scatter: index {i} out of bounds for {rows} rows"
            );
        }
        // Stable sort keeps duplicates in ascending k, preserving the dense
        // scatter's per-row accumulation order.
        let mut order: Vec<usize> = (0..indices.len()).collect();
        order.sort_by_key(|&k| indices[k]);
        // alloc-ok: row-index bookkeeping (usize), outside the f64 step pool's domain
        let mut uniq: Vec<usize> = Vec::with_capacity(order.len());
        for &k in &order {
            if uniq.last() != Some(&indices[k]) {
                uniq.push(indices[k]);
            }
        }
        let mut block = Tensor::pooled_zeros(uniq.len(), cols);
        let mut at = 0usize;
        for &k in &order {
            if uniq[at] != indices[k] {
                at += 1;
            }
            for (d, s) in block.row_mut(at).iter_mut().zip(src.row(k)) {
                *d += s;
            }
        }
        Check::Finite.run("from_scatter", block.data());
        Self {
            rows,
            cols,
            indices: uniq,
            block,
        }
    }

    /// Rebuilds a value from raw parts, validating every invariant (the
    /// deserialisation path).
    ///
    /// # Errors
    /// Returns a message when the indices are unsorted/duplicated/out of
    /// bounds or the block shape disagrees with `indices.len() × cols`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indices: Vec<usize>,
        block: Tensor,
    ) -> Result<Self, String> {
        if block.rows() != indices.len() || block.cols() != cols {
            return Err(format!(
                "RowSparse: block {} for {} indices × {cols} cols",
                block.shape(),
                indices.len()
            ));
        }
        if !indices.windows(2).all(|w| w[0] < w[1]) {
            return Err("RowSparse: indices must be sorted and unique".into());
        }
        if indices.last().is_some_and(|&i| i >= rows) {
            return Err(format!("RowSparse: index out of bounds for {rows} rows"));
        }
        Ok(Self {
            rows,
            cols,
            indices,
            block,
        })
    }

    /// Logical number of rows of the (mostly zero) gradient.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of touched rows.
    #[must_use]
    pub fn nnz_rows(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` when no rows are touched.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.indices.is_empty()
    }

    /// The sorted unique touched-row indices.
    #[must_use]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The dense `nnz × cols` block, row `k` belonging to `indices[k]`.
    #[must_use]
    pub fn block(&self) -> &Tensor {
        &self.block
    }

    /// Mutable access to the dense block (indices are fixed).
    pub fn block_mut(&mut self) -> &mut Tensor {
        &mut self.block
    }

    /// Iterates `(row_index, row_values)` over the touched rows in
    /// ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.indices
            .iter()
            .enumerate()
            .map(|(k, &i)| (i, self.block.row(k)))
    }

    /// Merges `other` into `self` (row union; shared rows add element-wise).
    ///
    /// Per element this computes exactly what the dense accumulation
    /// `dense(self).add_assign(&dense(other))` computes: shared rows are
    /// `a + b`, rows only in `self` are `a + 0.0`, rows only in `other` are
    /// `0.0 + b`. Large results fan out to the `dt-parallel` pool with one
    /// writer per element, so the merge is bit-identical for any thread
    /// count.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn merge(&mut self, other: &RowSparse) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "merge: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        if other.is_zero() {
            // Dense equivalence still demands the `a + 0.0` normalisation,
            // which only matters for the sign of zero; adding an all-zero
            // block is skipped as the one documented deviation.
            return;
        }
        if self.is_zero() {
            self.indices = other.indices.clone();
            // `map` draws from the pool; the replaced block is empty.
            self.block = other.block.map(|x| 0.0 + x);
            return;
        }
        // Two-pointer union: for every output row, where it comes from.
        // alloc-ok: row-index union bookkeeping (usize), not poolable f64 scratch
        let mut idx = Vec::with_capacity(self.indices.len() + other.indices.len());
        // alloc-ok: merge plan (one entry per union row), freed with the merge
        let mut plan: Vec<(Option<usize>, Option<usize>)> = Vec::with_capacity(idx.capacity());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.indices.len() || b < other.indices.len() {
            let ai = self.indices.get(a).copied();
            let bi = other.indices.get(b).copied();
            match (ai, bi) {
                (Some(x), Some(y)) if x == y => {
                    idx.push(x);
                    plan.push((Some(a), Some(b)));
                    a += 1;
                    b += 1;
                }
                (Some(x), Some(y)) if x < y => {
                    idx.push(x);
                    plan.push((Some(a), None));
                    a += 1;
                }
                (Some(_) | None, Some(y)) => {
                    idx.push(y);
                    plan.push((None, Some(b)));
                    b += 1;
                }
                (Some(x), None) => {
                    idx.push(x);
                    plan.push((Some(a), None));
                    a += 1;
                }
                (None, None) => break,
            }
        }
        let cols = self.cols;
        // Every element of every union row is written by `fill_row`, so
        // pooled scratch (stale contents) is safe here.
        let mut block = Tensor::pooled_scratch(idx.len(), cols);
        let (ab, bb) = (&self.block, &other.block);
        let fill_row = |r: usize, out: &mut [f64]| match plan[r] {
            (Some(ak), Some(bk)) => {
                for ((o, &x), &y) in out.iter_mut().zip(ab.row(ak)).zip(bb.row(bk)) {
                    *o = x + y;
                }
            }
            (Some(ak), None) => {
                for (o, &x) in out.iter_mut().zip(ab.row(ak)) {
                    *o = x + 0.0;
                }
            }
            (None, Some(bk)) => {
                for (o, &y) in out.iter_mut().zip(bb.row(bk)) {
                    *o = 0.0 + y;
                }
            }
            (None, None) => {}
        };
        let len = block.len();
        if len >= PAR_MIN_ELEMS && dt_parallel::effective_threads() > 1 && cols > 0 {
            let rows_per = idx.len().div_ceil(dt_parallel::effective_threads()).max(1);
            dt_parallel::for_each_chunk(block.data_mut(), rows_per * cols, |ci, chunk| {
                for (j, out) in chunk.chunks_mut(cols).enumerate() {
                    fill_row(ci * rows_per + j, out);
                }
            });
        } else {
            for r in 0..idx.len() {
                fill_row(r, &mut block.data_mut()[r * cols..(r + 1) * cols]);
            }
        }
        Check::Finite.run("rowsparse_merge", block.data());
        self.indices = idx;
        std::mem::replace(&mut self.block, block).recycle();
    }

    /// Adds the touched rows into the dense table `dst` (`dst[i] += row`).
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn add_to_dense(&self, dst: &mut Tensor) {
        self.axpy_to_dense(1.0, dst);
    }

    /// `dst[i] += alpha · row` for every touched row — the sparse optimizer
    /// update kernel. One pass over `nnz × cols` elements.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn axpy_to_dense(&self, alpha: f64, dst: &mut Tensor) {
        assert_eq!(
            (dst.rows(), dst.cols()),
            (self.rows, self.cols),
            "axpy_to_dense: dense {} vs sparse {}x{}",
            dst.shape(),
            self.rows,
            self.cols
        );
        for (k, &i) in self.indices.iter().enumerate() {
            for (d, &s) in dst.row_mut(i).iter_mut().zip(self.block.row(k)) {
                *d += alpha * s;
            }
        }
    }

    /// Densifies into a fresh `rows × cols` tensor — the bit-for-bit image
    /// of scatter-adding the block into zeros.
    #[must_use]
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::pooled_zeros(self.rows, self.cols);
        self.add_to_dense(&mut out);
        out
    }

    /// Consumes the gradient and parks its block buffer on the thread-local
    /// buffer pool (see [`crate::pool`]).
    pub fn recycle(self) {
        self.block.recycle();
    }

    /// Multiplies the block by `alpha` in place (pool-parallel when large,
    /// via the `dt-tensor` element-wise kernels).
    pub fn scale_inplace(&mut self, alpha: f64) {
        self.block.scale_inplace(alpha);
    }

    /// Squared Frobenius norm (zero rows contribute nothing).
    #[must_use]
    pub fn frob_sq(&self) -> f64 {
        self.block.frob_sq()
    }

    /// Returns `true` when every stored element is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.block.all_finite()
    }
}

/// A gradient that is either dense or row-sparse.
///
/// `Params` in `dt-autograd` accumulates one `Grad` per parameter: gather
/// backward emits [`Grad::RowSparse`], full-table ops (the Gram losses,
/// bias broadcasts over mounted tables, …) emit [`Grad::Dense`], and
/// [`Grad::accumulate`] merges any mix while preserving dense accumulation
/// order. An accumulator only densifies when a dense delta actually
/// arrives.
#[derive(Clone, Debug, PartialEq)]
pub enum Grad {
    /// A dense gradient tensor.
    Dense(Tensor),
    /// A row-sparse gradient (embedding-style).
    RowSparse(RowSparse),
}

impl Grad {
    /// The all-zero gradient for an `rows × cols` parameter (row-sparse
    /// with no touched rows — `O(1)` in the table size).
    #[must_use]
    pub fn empty(rows: usize, cols: usize) -> Self {
        Grad::RowSparse(RowSparse::zeros(rows, cols))
    }

    /// Logical number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        match self {
            Grad::Dense(t) => t.rows(),
            Grad::RowSparse(s) => s.rows(),
        }
    }

    /// Logical number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        match self {
            Grad::Dense(t) => t.cols(),
            Grad::RowSparse(s) => s.cols(),
        }
    }

    /// Returns `true` for the dense representation.
    #[must_use]
    pub fn is_dense(&self) -> bool {
        matches!(self, Grad::Dense(_))
    }

    /// The dense tensor, when dense.
    #[must_use]
    pub fn as_dense(&self) -> Option<&Tensor> {
        match self {
            Grad::Dense(t) => Some(t),
            Grad::RowSparse(_) => None,
        }
    }

    /// The row-sparse representation, when sparse.
    #[must_use]
    pub fn as_row_sparse(&self) -> Option<&RowSparse> {
        match self {
            Grad::Dense(_) => None,
            Grad::RowSparse(s) => Some(s),
        }
    }

    /// Densified copy.
    #[must_use]
    pub fn to_dense(&self) -> Tensor {
        match self {
            Grad::Dense(t) => t.clone(),
            Grad::RowSparse(s) => s.to_dense(),
        }
    }

    /// Densifies by value (free for the dense variant).
    #[must_use]
    pub fn into_dense(self) -> Tensor {
        match self {
            Grad::Dense(t) => t,
            Grad::RowSparse(s) => s.to_dense(),
        }
    }

    /// The scalar value of a `1 × 1` gradient.
    ///
    /// # Panics
    /// Panics when the gradient is not scalar-shaped.
    #[must_use]
    pub fn item(&self) -> f64 {
        assert_eq!(
            (self.rows(), self.cols()),
            (1, 1),
            "item: gradient has shape {}x{}, expected 1x1",
            self.rows(),
            self.cols()
        );
        match self {
            Grad::Dense(t) => t.item(),
            Grad::RowSparse(s) => s.iter().next().map_or(0.0, |(_, row)| row[0]),
        }
    }

    /// Accumulates `delta` into `self`, staying sparse whenever possible:
    ///
    /// * sparse + sparse → sparse row-union merge ([`RowSparse::merge`]),
    /// * dense + sparse → the sparse rows fold into the dense accumulator,
    /// * sparse + dense → densify once, then add (the mixed DT-loss shape),
    /// * dense + dense → element-wise `add_assign`.
    ///
    /// The per-element operation sequence matches dense accumulation
    /// exactly, so densifying afterwards reproduces the dense bits.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn accumulate(&mut self, delta: Grad) {
        assert_eq!(
            (self.rows(), self.cols()),
            (delta.rows(), delta.cols()),
            "accumulate: shape mismatch {}x{} vs {}x{}",
            self.rows(),
            self.cols(),
            delta.rows(),
            delta.cols()
        );
        // Consumed deltas hand their buffers back to the pool: `delta` is
        // owned (never aliased), so once its values are folded in, the
        // backing storage is free to be reused by the next node.
        match (&mut *self, delta) {
            (Grad::Dense(a), Grad::Dense(b)) => {
                a.add_assign(&b);
                b.recycle();
            }
            (Grad::Dense(a), Grad::RowSparse(s)) => {
                s.add_to_dense(a);
                s.recycle();
            }
            (Grad::RowSparse(a), Grad::RowSparse(b)) => {
                a.merge(&b);
                b.recycle();
            }
            (Grad::RowSparse(a), Grad::Dense(b)) => {
                if a.is_zero() {
                    // First (and so far only) contribution: adopt the dense
                    // delta without paying an extra full-table pass.
                    *self = Grad::Dense(b);
                } else {
                    let mut d = a.to_dense();
                    d.add_assign(&b);
                    b.recycle();
                    if let Grad::RowSparse(old) = std::mem::replace(self, Grad::Dense(d)) {
                        old.recycle();
                    }
                }
            }
        }
    }

    /// Resets to the all-zero sparse gradient — `O(1)` in the table size.
    /// The previous storage (dense tensor or sparse block) is handed back
    /// to the thread-local buffer pool instead of the global allocator.
    pub fn clear(&mut self) {
        match std::mem::replace(self, Grad::empty(self.rows(), self.cols())) {
            Grad::Dense(t) => t.recycle(),
            Grad::RowSparse(s) => s.recycle(),
        }
    }

    /// Multiplies the stored values by `alpha` in place (gradient clipping).
    pub fn scale_inplace(&mut self, alpha: f64) {
        match self {
            Grad::Dense(t) => t.scale_inplace(alpha),
            Grad::RowSparse(s) => s.scale_inplace(alpha),
        }
    }

    /// Squared Frobenius norm.
    #[must_use]
    pub fn frob_sq(&self) -> f64 {
        match self {
            Grad::Dense(t) => t.frob_sq(),
            Grad::RowSparse(s) => s.frob_sq(),
        }
    }

    /// Returns `true` when every stored element is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        match self {
            Grad::Dense(t) => t.all_finite(),
            Grad::RowSparse(s) => s.all_finite(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_scatter(rows: usize, cols: usize, indices: &[usize], src: &Tensor) -> Tensor {
        let mut d = Tensor::zeros(rows, cols);
        d.scatter_add_rows(indices, src);
        d
    }

    #[test]
    fn from_scatter_matches_dense_scatter_bits() {
        let src = Tensor::from_rows(&[
            &[0.1, -0.2],
            &[1e-17, 2.0],
            &[0.3, 0.4],
            &[-0.1, 1e-17],
            &[5.0, -6.0],
        ]);
        let idx = [3usize, 1, 3, 3, 0];
        let rs = RowSparse::from_scatter(6, 2, &idx, &src);
        assert_eq!(rs.nnz_rows(), 3);
        assert_eq!(rs.indices(), &[0, 1, 3]);
        assert_eq!(rs.to_dense(), dense_scatter(6, 2, &idx, &src));
    }

    #[test]
    fn merge_matches_dense_accumulation_bits() {
        let s1 = Tensor::from_rows(&[&[1.0, 2.0], &[0.25, -0.5]]);
        let s2 = Tensor::from_rows(&[&[1e-16, 7.0], &[3.0, 4.0], &[0.5, 0.5]]);
        let mut a = RowSparse::from_scatter(8, 2, &[5, 2], &s1);
        let b = RowSparse::from_scatter(8, 2, &[2, 6, 2], &s2);
        let mut dense = a.to_dense();
        dense.add_assign(&b.to_dense());
        a.merge(&b);
        assert_eq!(a.indices(), &[2, 5, 6]);
        assert_eq!(a.to_dense(), dense);
    }

    #[test]
    fn merge_into_empty_lhs_copies_rhs() {
        let src = Tensor::from_rows(&[&[1.5, -2.0], &[0.0, 4.0]]);
        let b = RowSparse::from_scatter(6, 2, &[1, 4], &src);
        let mut a = RowSparse::zeros(6, 2);
        a.merge(&b);
        assert_eq!(a.indices(), &[1, 4]);
        assert_eq!(a.to_dense(), b.to_dense());
    }

    #[test]
    fn merge_of_empty_rhs_is_a_noop() {
        let src = Tensor::from_rows(&[&[1.5, -2.0]]);
        let mut a = RowSparse::from_scatter(6, 2, &[3], &src);
        let before = a.clone();
        a.merge(&RowSparse::zeros(6, 2));
        assert_eq!(a, before);
    }

    #[test]
    fn merge_of_two_empties_stays_empty() {
        let mut a = RowSparse::zeros(5, 3);
        a.merge(&RowSparse::zeros(5, 3));
        assert!(a.is_zero());
        assert_eq!((a.rows(), a.cols()), (5, 3));
    }

    #[test]
    fn merge_fully_overlapping_row_sets_adds_elementwise() {
        let s1 = Tensor::from_rows(&[&[1.0, 1e-16], &[-2.0, 3.0]]);
        let s2 = Tensor::from_rows(&[&[0.5, 1e-16], &[2.0, -3.0]]);
        let mut a = RowSparse::from_scatter(9, 2, &[2, 7], &s1);
        let b = RowSparse::from_scatter(9, 2, &[2, 7], &s2);
        let mut dense = a.to_dense();
        dense.add_assign(&b.to_dense());
        a.merge(&b);
        // Same row set: the union must not grow, and bits must match the
        // dense accumulation (including the 1e-16 + 1e-16 rounding).
        assert_eq!(a.indices(), &[2, 7]);
        assert_eq!(a.to_dense(), dense);
    }

    #[test]
    fn merge_on_single_row_tables() {
        // 1-row logical table: both operands can only touch row 0.
        let mut a = RowSparse::from_scatter(1, 3, &[0], &Tensor::from_rows(&[&[1.0, 2.0, 3.0]]));
        let b = RowSparse::from_scatter(1, 3, &[0], &Tensor::from_rows(&[&[0.5, -2.0, 4.0]]));
        a.merge(&b);
        assert_eq!(a.indices(), &[0]);
        assert_eq!(a.block().row(0), &[1.5, 0.0, 7.0]);
        // Single touched row merging into a disjoint single touched row.
        let mut c = RowSparse::from_scatter(10, 1, &[9], &Tensor::scalar(2.0));
        c.merge(&RowSparse::from_scatter(10, 1, &[0], &Tensor::scalar(-1.0)));
        assert_eq!(c.indices(), &[0, 9]);
        assert_eq!(c.block().data(), &[-1.0, 2.0]);
    }

    #[test]
    fn merge_large_blocks_is_thread_count_invariant() {
        let cols = 16;
        let idx_a: Vec<usize> = (0..2048).map(|i| 2 * i).collect();
        let idx_b: Vec<usize> = (0..2048).map(|i| 3 * i).collect();
        let src_a = Tensor::from_fn(idx_a.len(), cols, |i, j| ((i * 31 + j) as f64).sin());
        let src_b = Tensor::from_fn(idx_b.len(), cols, |i, j| ((i * 17 + j) as f64).cos());
        let make = || {
            let mut a = RowSparse::from_scatter(8192, cols, &idx_a, &src_a);
            a.merge(&RowSparse::from_scatter(8192, cols, &idx_b, &src_b));
            a
        };
        let par = make();
        let seq = dt_parallel::run_sequential(make);
        assert_eq!(par, seq);
    }

    #[test]
    fn axpy_to_dense_updates_only_touched_rows() {
        let src = Tensor::from_rows(&[&[1.0, 1.0]]);
        let rs = RowSparse::from_scatter(3, 2, &[1], &src);
        let mut w = Tensor::ones(3, 2);
        rs.axpy_to_dense(-0.5, &mut w);
        assert_eq!(w.row(0), &[1.0, 1.0]);
        assert_eq!(w.row(1), &[0.5, 0.5]);
        assert_eq!(w.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn grad_mixed_accumulation() {
        // sparse, then dense, then sparse — the DT loss shape.
        let mut g = Grad::empty(4, 2);
        let s1 = RowSparse::from_scatter(4, 2, &[1, 3], &Tensor::ones(2, 2));
        g.accumulate(Grad::RowSparse(s1.clone()));
        assert!(!g.is_dense());
        let full = Tensor::full(4, 2, 0.25);
        g.accumulate(Grad::Dense(full.clone()));
        assert!(g.is_dense());
        g.accumulate(Grad::RowSparse(s1.clone()));

        let mut dense = Tensor::zeros(4, 2);
        dense.add_assign(&s1.to_dense());
        dense.add_assign(&full);
        dense.add_assign(&s1.to_dense());
        assert_eq!(g.to_dense(), dense);
    }

    #[test]
    fn grad_empty_adopts_dense_delta() {
        let mut g = Grad::empty(2, 2);
        g.accumulate(Grad::Dense(Tensor::ones(2, 2)));
        assert_eq!(g.to_dense(), Tensor::ones(2, 2));
    }

    #[test]
    fn grad_clear_is_sparse_and_norms_work() {
        let mut g = Grad::Dense(Tensor::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(g.frob_sq(), 25.0);
        assert!(g.all_finite());
        g.scale_inplace(0.5);
        assert_eq!(g.frob_sq(), 6.25);
        g.clear();
        assert!(!g.is_dense());
        assert_eq!(g.frob_sq(), 0.0);
        assert_eq!((g.rows(), g.cols()), (1, 2));
    }

    #[test]
    fn grad_item_on_sparse_scalar() {
        let mut g = Grad::empty(1, 1);
        assert_eq!(g.item(), 0.0);
        let s = RowSparse::from_scatter(1, 1, &[0], &Tensor::scalar(4.0));
        g.accumulate(Grad::RowSparse(s));
        assert_eq!(g.item(), 4.0);
    }

    #[test]
    #[should_panic(expected = "from_scatter: index 7 out of bounds")]
    fn out_of_bounds_scatter_panics() {
        let _ = RowSparse::from_scatter(4, 1, &[7], &Tensor::ones(1, 1));
    }

    #[test]
    #[should_panic(expected = "accumulate: shape mismatch")]
    fn grad_shape_mismatch_panics() {
        let mut g = Grad::empty(2, 2);
        g.accumulate(Grad::Dense(Tensor::ones(3, 2)));
    }

    #[test]
    fn iter_yields_sorted_rows() {
        let src = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let rs = RowSparse::from_scatter(9, 1, &[8, 0, 4], &src);
        let seen: Vec<(usize, f64)> = rs.iter().map(|(i, r)| (i, r[0])).collect();
        assert_eq!(seen, vec![(0, 2.0), (4, 3.0), (8, 1.0)]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(RowSparse::from_parts(4, 2, vec![0, 2], Tensor::zeros(2, 2)).is_ok());
        assert!(RowSparse::from_parts(4, 2, vec![2, 0], Tensor::zeros(2, 2)).is_err());
        assert!(RowSparse::from_parts(4, 2, vec![0, 0], Tensor::zeros(2, 2)).is_err());
        assert!(RowSparse::from_parts(4, 2, vec![0, 9], Tensor::zeros(2, 2)).is_err());
        assert!(RowSparse::from_parts(4, 2, vec![0], Tensor::zeros(2, 2)).is_err());
    }
}
