//! Serde implementations for the tensor types.
//!
//! Kept in their own module so the core types (`tensor.rs`, `shape.rs`,
//! `rowsparse.rs`) stay dependency-free: the offline verification harness
//! compiles those files against a stub crate graph that has no `serde`.
//! Deserialisation re-validates every structural invariant.

use crate::{RowSparse, Tensor};

impl serde::Serialize for Tensor {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = s.serialize_struct("Tensor", 3)?;
        st.serialize_field("rows", &self.rows())?;
        st.serialize_field("cols", &self.cols())?;
        st.serialize_field("data", &self.data())?;
        st.end()
    }
}

impl<'de> serde::Deserialize<'de> for Tensor {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Raw {
            rows: usize,
            cols: usize,
            data: Vec<f64>,
        }
        let raw = Raw::deserialize(d)?;
        if raw.data.len() != raw.rows * raw.cols {
            return Err(serde::de::Error::custom(format!(
                "Tensor: {} values for a {}x{} shape",
                raw.data.len(),
                raw.rows,
                raw.cols
            )));
        }
        Ok(Tensor::from_vec(raw.rows, raw.cols, raw.data))
    }
}

impl serde::Serialize for RowSparse {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = s.serialize_struct("RowSparse", 4)?;
        st.serialize_field("rows", &self.rows())?;
        st.serialize_field("cols", &self.cols())?;
        st.serialize_field("indices", &self.indices())?;
        st.serialize_field("block", self.block())?;
        st.end()
    }
}

impl<'de> serde::Deserialize<'de> for RowSparse {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        #[derive(serde::Deserialize)]
        struct Raw {
            rows: usize,
            cols: usize,
            indices: Vec<usize>,
            block: Tensor,
        }
        let raw = Raw::deserialize(d)?;
        RowSparse::from_parts(raw.rows, raw.cols, raw.indices, raw.block)
            .map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let t = Tensor::from_rows(&[&[1.0, 2.5], &[-3.0, 0.0]]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let bad = r#"{"rows":2,"cols":2,"data":[1.0,2.0,3.0]}"#;
        assert!(serde_json::from_str::<Tensor>(bad).is_err());
    }

    #[test]
    fn row_sparse_roundtrip() {
        let src = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let rs = RowSparse::from_scatter(5, 2, &[4, 1], &src);
        let json = serde_json::to_string(&rs).unwrap();
        let back: RowSparse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rs);
    }

    #[test]
    fn row_sparse_unsorted_indices_rejected() {
        let bad =
            r#"{"rows":5,"cols":1,"indices":[3,1],"block":{"rows":2,"cols":1,"data":[1.0,2.0]}}"#;
        assert!(serde_json::from_str::<RowSparse>(bad).is_err());
    }
}
