//! Element-wise and axpy-style kernels.
//!
//! These are the flat-loop workhorses of the backward sweep (gradient
//! accumulation is `add_assign`/`axpy`, optimiser updates are `scale` +
//! `axpy`). Each concrete operation has a slice-based sequential loop and,
//! above [`PAR_MIN_ELEMS`] elements, a chunk-parallel path on the shared
//! `dt-parallel` pool. Every element is computed by exactly one thread from
//! the same pure expression, so results are bit-identical for any
//! `DT_NUM_THREADS`.
//!
//! The generic combinators ([`Tensor::map`], [`Tensor::zip_map`], …) stay
//! sequential: their closures are not required to be `Sync`, and keeping
//! that flexibility for callers matters more than parallelising the rare
//! large `map`.

use crate::checked::Check;
use crate::Tensor;

/// Minimum elements before an element-wise kernel fans out to the pool;
/// these kernels are memory-bound, so the bar is higher than for GEMM.
const PAR_MIN_ELEMS: usize = 1 << 15;

/// Near-equal chunk length for `len` elements over the current partition
/// width. Element-wise results are independent per element, so (unlike the
/// GEMM reduction chunks) this geometry is free to vary with the thread
/// count.
fn chunk_len(len: usize) -> usize {
    len.div_ceil(dt_parallel::effective_threads()).max(1)
}

fn parallel_worthwhile(len: usize) -> bool {
    len >= PAR_MIN_ELEMS && dt_parallel::effective_threads() > 1
}

/// `out[i] = f(a[i], b[i])`, parallel when large.
fn binary(
    a: &Tensor,
    b: &Tensor,
    op: &str,
    check: Check,
    f: impl Fn(f64, f64) -> f64 + Sync,
) -> Tensor {
    assert_eq!(
        a.shape(),
        b.shape(),
        "{op}: shape mismatch {} vs {}",
        a.shape(),
        b.shape()
    );
    let len = a.len();
    // Every element is written below, so the stale pooled contents never
    // escape. The buffer is taken on the calling thread; workers only see
    // disjoint `&mut` chunks (the pool-aware handoff).
    let mut out = Tensor::pooled_scratch(a.rows(), a.cols());
    if parallel_worthwhile(len) {
        let (ad, bd) = (a.data(), b.data());
        let cl = chunk_len(len);
        dt_parallel::for_each_chunk(out.data_mut(), cl, |ci, chunk| {
            let o = ci * cl;
            let (xs, ys) = (&ad[o..o + chunk.len()], &bd[o..o + chunk.len()]);
            for ((v, &x), &y) in chunk.iter_mut().zip(xs).zip(ys) {
                *v = f(x, y);
            }
        });
    } else {
        for ((v, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
            *v = f(x, y);
        }
    }
    check.run(op, out.data());
    out
}

/// `dst[i] = f(dst[i], src[i])` in place, parallel when large.
fn binary_inplace(
    dst: &mut Tensor,
    src: &Tensor,
    op: &str,
    check: Check,
    f: impl Fn(f64, f64) -> f64 + Sync,
) {
    assert_eq!(
        dst.shape(),
        src.shape(),
        "{op}: shape mismatch {} vs {}",
        dst.shape(),
        src.shape()
    );
    let len = dst.len();
    let sd = src.data();
    if parallel_worthwhile(len) {
        let cl = chunk_len(len);
        dt_parallel::for_each_chunk(dst.data_mut(), cl, |ci, chunk| {
            let src_chunk = &sd[ci * cl..ci * cl + chunk.len()];
            for (d, &s) in chunk.iter_mut().zip(src_chunk) {
                *d = f(*d, s);
            }
        });
    } else {
        for (d, &s) in dst.data_mut().iter_mut().zip(sd) {
            *d = f(*d, s);
        }
    }
    check.run(op, dst.data());
}

/// `out[i] = f(a[i])`, parallel when large.
fn unary(a: &Tensor, op: &str, check: Check, f: impl Fn(f64) -> f64 + Sync) -> Tensor {
    let len = a.len();
    // Fully overwritten before escaping; see `binary` for the pool contract.
    let mut out = Tensor::pooled_scratch(a.rows(), a.cols());
    if parallel_worthwhile(len) {
        let ad = a.data();
        let cl = chunk_len(len);
        dt_parallel::for_each_chunk(out.data_mut(), cl, |ci, chunk| {
            let src_chunk = &ad[ci * cl..ci * cl + chunk.len()];
            for (v, &x) in chunk.iter_mut().zip(src_chunk) {
                *v = f(x);
            }
        });
    } else {
        for (v, &x) in out.data_mut().iter_mut().zip(a.data()) {
            *v = f(x);
        }
    }
    check.run(op, out.data());
    out
}

/// `dst[i] = f(dst[i])` in place, parallel when large.
fn unary_inplace(dst: &mut Tensor, op: &str, check: Check, f: impl Fn(f64) -> f64 + Sync) {
    let len = dst.len();
    if parallel_worthwhile(len) {
        let cl = chunk_len(len);
        dt_parallel::for_each_chunk(dst.data_mut(), cl, |_, chunk| {
            for d in chunk {
                *d = f(*d);
            }
        });
    } else {
        for d in dst.data_mut() {
            *d = f(*d);
        }
    }
    check.run(op, dst.data());
}

impl Tensor {
    /// Applies `f` to every element, producing a new tensor.
    ///
    /// Sequential by design — `f` need not be `Sync`. The concrete
    /// operations below parallelise instead.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        let mut out = Self::pooled_scratch(self.rows(), self.cols());
        for (o, &v) in out.data_mut().iter_mut().zip(self.data()) {
            *o = f(v);
        }
        out
    }

    /// Applies `f` to every element in place (sequential; see [`Tensor::map`]).
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors element-wise (sequential; see
    /// [`Tensor::map`]).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn zip_map(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        assert_eq!(
            self.shape(),
            other.shape(),
            "zip_map: shape mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = Self::pooled_scratch(self.rows(), self.cols());
        for ((o, &a), &b) in out.data_mut().iter_mut().zip(self.data()).zip(other.data()) {
            *o = f(a, b);
        }
        out
    }

    /// Element-wise sum.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        binary(self, other, "add", Check::Finite, |a, b| a + b)
    }

    /// Element-wise difference.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        binary(self, other, "sub", Check::Finite, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        binary(self, other, "mul", Check::Finite, |a, b| a * b)
    }

    /// Element-wise quotient. `±inf` from division by zero is allowed
    /// through the debug guard; NaN (`0/0`) is not.
    #[must_use]
    pub fn div(&self, other: &Self) -> Self {
        binary(self, other, "div", Check::NoNan, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    pub fn add_assign(&mut self, other: &Self) {
        binary_inplace(self, other, "add_assign", Check::Finite, |a, b| a + b);
    }

    /// `self += alpha * other` (the BLAS `axpy` kernel).
    pub fn axpy(&mut self, alpha: f64, other: &Self) {
        binary_inplace(self, other, "axpy", Check::Finite, move |a, b| {
            a + alpha * b
        });
    }

    /// Multiplies every element by `alpha`.
    #[must_use]
    pub fn scale(&self, alpha: f64) -> Self {
        unary(self, "scale", Check::Finite, move |v| v * alpha)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        unary_inplace(self, "scale_inplace", Check::Finite, move |v| v * alpha);
    }

    /// Adds `alpha` to every element.
    #[must_use]
    pub fn add_scalar(&self, alpha: f64) -> Self {
        unary(self, "add_scalar", Check::Finite, move |v| v + alpha)
    }

    /// Negates every element.
    #[must_use]
    pub fn neg(&self) -> Self {
        unary(self, "neg", Check::Finite, |v| -v)
    }

    /// Clamps every element to `[lo, hi]`.
    ///
    /// # Panics
    /// Panics when `lo > hi`.
    #[must_use]
    pub fn clamp(&self, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
        // Infinite bounds pass ±inf through, so only NaN is rejected.
        unary(self, "clamp", Check::NoNan, move |v| v.clamp(lo, hi))
    }

    /// Resets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data_mut().fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::full(2, 2, 2.0);
        assert_eq!(a.add(&b).data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).data(), &[-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.mul(&b).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.div(&b).data(), &[0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.scale(2.0), a.mul(&b));
        assert_eq!(a.neg().data(), &[-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.clamp(2.0, 3.0).data(), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn axpy_and_inplace() {
        let mut a = Tensor::ones(1, 3);
        let b = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[4.0, 7.0, 10.0]);
        a.scale_inplace(0.5);
        assert_eq!(a.data(), &[2.0, 3.5, 5.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn map_and_zip_map_stay_available() {
        let a = Tensor::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.map(f64::abs).data(), &[1.0, 2.0]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.zip_map(&b, f64::max).data(), &[3.0, 4.0]);
    }

    #[test]
    fn large_tensors_cross_the_parallel_threshold_identically() {
        // Big enough to take the chunked path; values chosen so sequential
        // and parallel must agree bit-for-bit.
        let n = super::PAR_MIN_ELEMS + 77;
        let a = Tensor::from_fn(1, n, |_, j| (j as f64).sin());
        let b = Tensor::from_fn(1, n, |_, j| 1.0 + (j % 97) as f64);
        let par = a.add(&b);
        let seq = dt_parallel::run_sequential(|| a.add(&b));
        assert_eq!(par, seq);

        let mut pa = a.clone();
        pa.axpy(0.5, &b);
        let mut sa = a.clone();
        dt_parallel::run_sequential(|| sa.axpy(0.5, &b));
        assert_eq!(pa, sa);
    }

    #[test]
    #[should_panic(expected = "add_assign")]
    fn inplace_shape_mismatch_panics() {
        let mut a = Tensor::zeros(2, 2);
        a.add_assign(&Tensor::zeros(2, 3));
    }
}
