//! Naive reference kernels: the oracles for the blocked/parallel GEMM.
//!
//! Each function is the textbook triple loop with the same per-element
//! accumulation order the production kernels guarantee (ascending along the
//! reduced axis), so tests and benches can assert **exact** `==` equality —
//! not approximate closeness — against [`Tensor::matmul`] and friends, and
//! measure the speedup of the blocked kernels over the unblocked baseline.
//!
//! These implementations are deliberately slow; nothing outside tests and
//! benches should call them.

use crate::gemm::TN_REDUCTION_CHUNK;
use crate::Tensor;

/// Naive `a · b` via the unblocked `i-k-j` triple loop.
///
/// # Panics
/// Panics when the inner dimensions disagree.
#[must_use]
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.cols(),
        b.rows(),
        "reference::matmul: inner dimension mismatch"
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(m, n);
    let (ad, bd) = (a.data(), b.data());
    let c = out.data_mut();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            for j in 0..n {
                c[i * n + j] += av * bd[p * n + j];
            }
        }
    }
    out
}

/// Naive `a · bᵀ`: one ascending-`p` dot product per output element.
///
/// # Panics
/// Panics when the column counts disagree.
#[must_use]
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.cols(), "reference::matmul_nt: col mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Tensor::zeros(m, n);
    let (ad, bd) = (a.data(), b.data());
    let c = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for p in 0..k {
                s += ad[i * k + p] * bd[j * k + p];
            }
            c[i * n + j] = s;
        }
    }
    out
}

/// Naive `aᵀ · b` accumulating input rows in one ascending sweep.
///
/// Matches [`Tensor::matmul_tn`] exactly when `a.rows()` fits in a single
/// reduction chunk; for taller inputs the production kernel's float
/// grouping is chunked, which [`matmul_tn_chunked`] mirrors.
///
/// # Panics
/// Panics when the row counts disagree.
#[must_use]
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows(), "reference::matmul_tn: row mismatch");
    let (n, k1, k2) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(k1, k2);
    let (ad, bd) = (a.data(), b.data());
    let c = out.data_mut();
    for r in 0..n {
        for i in 0..k1 {
            let av = ad[r * k1 + i];
            for j in 0..k2 {
                c[i * k2 + j] += av * bd[r * k2 + j];
            }
        }
    }
    out
}

/// Naive `aᵀ · b` with the production reduction grouping: input rows are
/// summed into per-chunk partials (`chunk_rows` high, ascending within the
/// chunk) that are merged in ascending chunk order. With
/// `chunk_rows ==` [`TN_REDUCTION_CHUNK`] this is the byte-exact oracle
/// for [`Tensor::matmul_tn`] at every input height and thread count.
///
/// # Panics
/// Panics when the row counts disagree or `chunk_rows == 0`.
#[must_use]
pub fn matmul_tn_chunked(a: &Tensor, b: &Tensor, chunk_rows: usize) -> Tensor {
    assert_eq!(
        a.rows(),
        b.rows(),
        "reference::matmul_tn_chunked: row mismatch"
    );
    assert!(
        chunk_rows > 0,
        "reference::matmul_tn_chunked: chunk_rows must be positive"
    );
    let n = a.rows();
    if n <= chunk_rows {
        return matmul_tn(a, b);
    }
    let mut out = Tensor::zeros(a.cols(), b.cols());
    let mut r0 = 0;
    while r0 < n {
        let r1 = (r0 + chunk_rows).min(n);
        let partial = matmul_tn(&a.slice_rows(r0, r1), &b.slice_rows(r0, r1));
        for (cv, &pv) in out.data_mut().iter_mut().zip(partial.data()) {
            *cv += pv;
        }
        r0 = r1;
    }
    out
}

/// The production chunk height, re-exported so external tests can build
/// byte-exact oracles without hard-coding the constant.
#[must_use]
pub fn tn_reduction_chunk() -> usize {
    TN_REDUCTION_CHUNK
}

/// Sort-based top-K oracle for [`crate::topk::select_top_k`]: ranks every
/// non-excluded item with a full stable sort under
/// [`crate::topk::rank_cmp`] (score descending, item id ascending) and
/// truncates to `k`. `exclude` must be sorted ascending.
#[must_use]
pub fn top_k_by_sort(scores: &[f64], k: usize, exclude: &[u32]) -> Vec<crate::topk::Ranked> {
    let mut all = Vec::with_capacity(scores.len());
    let mut e = 0usize;
    for (i, &score) in scores.iter().enumerate() {
        let item = i as u32;
        while e < exclude.len() && exclude[e] < item {
            e += 1;
        }
        if e < exclude.len() && exclude[e] == item {
            continue;
        }
        all.push(crate::topk::Ranked { item, score });
    }
    all.sort_by(crate::topk::rank_cmp);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_agree_with_each_other() {
        let a = Tensor::from_fn(3, 4, |i, j| (i * 4 + j) as f64 - 5.0);
        let b = Tensor::from_fn(4, 2, |i, j| (i * 2 + j) as f64 * 0.25);
        let direct = matmul(&a, &b);
        assert!(matmul_nt(&a, &b.transpose()).approx_eq(&direct, 1e-12));
        assert!(matmul_tn(&a.transpose(), &b).approx_eq(&direct, 1e-12));
    }

    #[test]
    fn chunked_tn_matches_plain_tn_approximately() {
        let a = Tensor::from_fn(37, 3, |i, j| ((i * 7 + j) % 11) as f64 - 5.0);
        let b = Tensor::from_fn(37, 2, |i, j| ((i * 5 + j) % 13) as f64 * 0.5);
        let chunked = matmul_tn_chunked(&a, &b, 8);
        assert!(chunked.approx_eq(&matmul_tn(&a, &b), 1e-9));
    }

    #[test]
    fn chunked_tn_single_chunk_is_exact() {
        let a = Tensor::from_fn(5, 2, |i, j| (i + j) as f64);
        let b = Tensor::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(matmul_tn_chunked(&a, &b, 100), matmul_tn(&a, &b));
    }
}
