//! Fused gather + dot scoring kernels for MF-family inference.
//!
//! The seed inference path scored one `(user, item)` pair at a time: a
//! function call, four table lookups and a bounds check per pair. These
//! kernels hoist the table pointers once and score whole batches — either
//! a list of pairs (evaluation) or a block of users against the entire
//! item catalog (serving) — on the `dt-parallel` pool.
//!
//! ## Determinism
//!
//! Every kernel is bit-identical for any `DT_NUM_THREADS`:
//!
//! * pair scoring writes each output element independently, with chunk
//!   geometry fixed by [`PAIR_CHUNK`] (never by the thread count);
//! * [`score_user_block`] composes [`Tensor::gather_rows`] and
//!   [`Tensor::matmul_nt`] (deterministic per the `gemm` module contract)
//!   with a per-row bias pass whose association order
//!   `((dot + bᵤ) + bᵢ) + µ` exactly matches the pair kernels, so block
//!   scores are bit-identical to pair scores for the same `(u, i)`.
//!
//! All buffers are pooled ([`crate::pool`]) and per-call scratch is
//! recycled before returning, so steady-state serving allocates nothing.

use std::ops::Range;

use crate::Tensor;

/// Minimum multiply-adds before a scoring kernel fans out to the pool
/// (same scale as the GEMM threshold: below this the task hand-off costs
/// more than the arithmetic).
pub const PAR_MIN_WORK: usize = 1 << 17;

/// Pair-kernel chunk length: output elements per parallel task unit.
/// A shape constant, not a thread-count function — see module docs.
const PAIR_CHUNK: usize = 1024;

/// The affine part of an MF-family scorer:
/// `score(u, i) = pᵤ·qᵢ + user[u] + item[i] + global`.
#[derive(Clone, Copy, Debug)]
pub struct Biases<'a> {
    /// Per-user bias, one entry per row of the user panel.
    pub user: &'a [f64],
    /// Per-item bias, one entry per row of the item panel.
    pub item: &'a [f64],
    /// Global offset `µ`.
    pub global: f64,
}

fn check_biases(p: &Tensor, q: &Tensor, biases: Option<&Biases<'_>>) {
    if let Some(b) = biases {
        assert_eq!(
            b.user.len(),
            p.rows(),
            "scoring: user bias length {} vs {} user rows",
            b.user.len(),
            p.rows()
        );
        assert_eq!(
            b.item.len(),
            q.rows(),
            "scoring: item bias length {} vs {} item rows",
            b.item.len(),
            q.rows()
        );
    }
}

/// Shared pair kernel over an index function `j ↦ (u, i)`.
fn score_indexed(
    p: &Tensor,
    q: &Tensor,
    cols: Range<usize>,
    n: usize,
    pair_at: &(impl Fn(usize) -> (usize, usize) + Sync),
    biases: Option<Biases<'_>>,
    out: &mut Vec<f64>,
) {
    let (lo, hi) = (cols.start, cols.end);
    assert!(
        lo <= hi && hi <= p.cols() && hi <= q.cols(),
        "scoring: column range {lo}..{hi} out of bounds for {}x{} panels",
        p.cols(),
        q.cols()
    );
    check_biases(p, q, biases.as_ref());
    out.clear();
    out.resize(n, 0.0);
    let (pd, qd) = (p.data(), q.data());
    let (pc, qc) = (p.cols(), q.cols());
    let (p_rows, q_rows) = (p.rows(), q.rows());
    let kernel = |base: usize, chunk: &mut [f64]| {
        for (off, o) in chunk.iter_mut().enumerate() {
            let (u, i) = pair_at(base + off);
            assert!(
                u < p_rows && i < q_rows,
                "scoring: pair ({u}, {i}) out of bounds for {p_rows} users x {q_rows} items"
            );
            let pu = &pd[u * pc + lo..u * pc + hi];
            let qi = &qd[i * qc + lo..i * qc + hi];
            let mut dot = 0.0;
            for (a, b) in pu.iter().zip(qi) {
                dot += a * b;
            }
            *o = match biases {
                Some(bs) => ((dot + bs.user[u]) + bs.item[i]) + bs.global,
                None => dot,
            };
        }
    };
    if n * (hi - lo).max(1) >= PAR_MIN_WORK {
        dt_parallel::for_each_chunk(&mut out[..], PAIR_CHUNK, |ci, chunk| {
            kernel(ci * PAIR_CHUNK, chunk);
        });
    } else {
        kernel(0, &mut out[..]);
    }
}

/// Scores parallel `users`/`items` index lists over the panel column
/// range `cols`, reusing `out` (cleared and resized; the only
/// allocation is `out`'s own growth).
///
/// # Panics
/// Panics on mismatched list lengths, an out-of-bounds column range,
/// bias vectors not matching the panel heights, or an out-of-bounds index.
pub fn score_pairs_into(
    p: &Tensor,
    q: &Tensor,
    cols: Range<usize>,
    users: &[usize],
    items: &[usize],
    biases: Option<Biases<'_>>,
    out: &mut Vec<f64>,
) {
    assert_eq!(
        users.len(),
        items.len(),
        "score_pairs: {} users vs {} items",
        users.len(),
        items.len()
    );
    score_indexed(
        p,
        q,
        cols,
        users.len(),
        &|j| (users[j], items[j]),
        biases,
        out,
    );
}

/// [`score_pairs_into`] returning a fresh vector.
#[must_use]
pub fn score_pairs(
    p: &Tensor,
    q: &Tensor,
    cols: Range<usize>,
    users: &[usize],
    items: &[usize],
    biases: Option<Biases<'_>>,
) -> Vec<f64> {
    let mut out = Vec::new();
    score_pairs_into(p, q, cols, users, items, biases, &mut out);
    out
}

/// Scores a `(user, item)` tuple list over the panel column range
/// `cols` — the shape of [`Recommender::predict`]-style batches.
///
/// # Panics
/// Same contract as [`score_pairs_into`].
#[must_use]
pub fn score_pair_tuples(
    p: &Tensor,
    q: &Tensor,
    cols: Range<usize>,
    pairs: &[(usize, usize)],
    biases: Option<Biases<'_>>,
) -> Vec<f64> {
    let mut out = Vec::new();
    score_indexed(p, q, cols, pairs.len(), &|j| pairs[j], biases, &mut out);
    out
}

/// Scores one user against an explicit item-id list over the panel
/// column range `cols`, reusing `out` (cleared and resized) — the
/// candidate-rerank shape of the IVF retrieval path, where every user
/// probes a different item subset. Bit-identical to [`score_pairs`] (and
/// therefore to [`score_user_block`]) element-for-element, at any thread
/// count.
///
/// # Panics
/// Same contract as [`score_pairs_into`].
pub fn score_user_items_into(
    p: &Tensor,
    q: &Tensor,
    cols: Range<usize>,
    user: usize,
    items: &[usize],
    biases: Option<Biases<'_>>,
    out: &mut Vec<f64>,
) {
    score_indexed(p, q, cols, items.len(), &|j| (user, items[j]), biases, out);
}

/// Scores a block of users against the **entire** item catalog:
/// `out[j, i] = p[users[j]]·q[i] + biases` as a pooled `B × N` tensor
/// (gather-GEMM, row-parallel). The caller should [`Tensor::recycle`] the
/// block when done so serving stays allocation-free.
///
/// Bit-identical to [`score_pairs`] element-for-element, at any thread
/// count (see module docs).
///
/// # Panics
/// Panics when the panels' widths disagree, a user index is out of
/// bounds, or bias vectors do not match the panel heights.
#[must_use]
pub fn score_user_block(
    p: &Tensor,
    q: &Tensor,
    users: &[usize],
    biases: Option<Biases<'_>>,
) -> Tensor {
    assert_eq!(
        p.cols(),
        q.cols(),
        "score_user_block: panel width mismatch {} vs {}",
        p.cols(),
        q.cols()
    );
    check_biases(p, q, biases.as_ref());
    let gathered = p.gather_rows(users); // pooled B×D scratch
    let mut block = gathered.matmul_nt(q); // pooled B×N scores
    gathered.recycle();
    let n_items = q.rows();
    if let Some(bs) = biases {
        if !block.is_empty() {
            let add_row = |row: usize, chunk: &mut [f64]| {
                let bu = bs.user[users[row]];
                for (v, &bi) in chunk.iter_mut().zip(bs.item) {
                    // Same association order as the pair kernels so block
                    // and pair scores agree bit-for-bit.
                    *v = ((*v + bu) + bi) + bs.global;
                }
            };
            if block.len() >= PAR_MIN_WORK {
                dt_parallel::for_each_chunk(block.data_mut(), n_items, add_row);
            } else {
                for row in 0..users.len() {
                    add_row(row, block.row_mut(row));
                }
            }
        }
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed | 1;
        Tensor::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    fn naive(p: &Tensor, q: &Tensor, u: usize, i: usize, b: Option<Biases<'_>>) -> f64 {
        let dot: f64 = p.row(u).iter().zip(q.row(i)).map(|(a, b)| a * b).sum();
        match b {
            Some(bs) => ((dot + bs.user[u]) + bs.item[i]) + bs.global,
            None => dot,
        }
    }

    #[test]
    fn pairs_match_naive_per_pair_loop() {
        let p = panel(7, 5, 11);
        let q = panel(9, 5, 23);
        let bu: Vec<f64> = (0..7).map(|i| i as f64 * 0.1).collect();
        let bi: Vec<f64> = (0..9).map(|i| i as f64 * -0.05).collect();
        let bs = Biases {
            user: &bu,
            item: &bi,
            global: 0.3,
        };
        let users = [0usize, 3, 6, 3];
        let items = [8usize, 0, 4, 4];
        let got = score_pairs(&p, &q, 0..5, &users, &items, Some(bs));
        for (j, &g) in got.iter().enumerate() {
            let want = naive(&p, &q, users[j], items[j], Some(bs));
            assert!((g - want).abs() == 0.0, "pair {j}: {g} vs {want}");
        }
        // No-bias variant too.
        let raw = score_pairs(&p, &q, 0..5, &users, &items, None);
        assert!((raw[1] - naive(&p, &q, 3, 0, None)).abs() == 0.0);
    }

    #[test]
    fn column_range_restricts_the_dot() {
        let p = panel(4, 6, 3);
        let q = panel(4, 6, 5);
        let got = score_pairs(&p, &q, 0..2, &[1], &[2], None);
        let want: f64 = p.row(1)[..2]
            .iter()
            .zip(&q.row(2)[..2])
            .map(|(a, b)| a * b)
            .sum();
        assert_eq!(got[0], want);
    }

    #[test]
    fn tuple_form_matches_slice_form() {
        let p = panel(5, 3, 7);
        let q = panel(6, 3, 9);
        let pairs = [(0usize, 5usize), (4, 0), (2, 2)];
        let users: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let items: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        assert_eq!(
            score_pair_tuples(&p, &q, 0..3, &pairs, None),
            score_pairs(&p, &q, 0..3, &users, &items, None)
        );
    }

    #[test]
    fn user_items_form_matches_pair_form() {
        let p = panel(6, 4, 13);
        let q = panel(11, 4, 17);
        let bu: Vec<f64> = (0..6).map(|i| i as f64 * 0.2).collect();
        let bi: Vec<f64> = (0..11).map(|i| i as f64 * -0.1).collect();
        let bs = Biases {
            user: &bu,
            item: &bi,
            global: 0.4,
        };
        let items = [9usize, 0, 4, 4, 10];
        let mut got = Vec::new();
        score_user_items_into(&p, &q, 0..4, 3, &items, Some(bs), &mut got);
        let want = score_pairs(&p, &q, 0..4, &[3; 5], &items, Some(bs));
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        // Reuse keeps contents correct after a resize.
        score_user_items_into(&p, &q, 0..4, 1, &items[..2], None, &mut got);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], score_pairs(&p, &q, 0..4, &[1], &[9], None)[0]);
    }

    #[test]
    fn block_scores_are_bit_identical_to_pair_scores() {
        let p = panel(10, 8, 41);
        let q = panel(17, 8, 43);
        let bu: Vec<f64> = (0..10).map(|i| (i as f64).sin()).collect();
        let bi: Vec<f64> = (0..17).map(|i| (i as f64).cos()).collect();
        let bs = Biases {
            user: &bu,
            item: &bi,
            global: -0.7,
        };
        let users = [2usize, 9, 0];
        let block = score_user_block(&p, &q, &users, Some(bs));
        for (j, &u) in users.iter().enumerate() {
            let items: Vec<usize> = (0..17).collect();
            let pair_scores = score_pairs(&p, &q, 0..8, &[u; 17], &items, Some(bs));
            for (i, ps) in pair_scores.iter().enumerate() {
                assert_eq!(block.get(j, i).to_bits(), ps.to_bits(), "user {u} item {i}");
            }
        }
        block.recycle();
    }

    #[test]
    fn large_batches_are_bit_identical_across_widths() {
        let p = panel(64, 48, 77);
        let q = panel(80, 48, 79);
        let users: Vec<usize> = (0..4096).map(|j| (j * 31) % 64).collect();
        let items: Vec<usize> = (0..4096).map(|j| (j * 17) % 80).collect();
        let baseline =
            dt_parallel::with_thread_limit(1, || score_pairs(&p, &q, 0..48, &users, &items, None));
        for width in [2, 8] {
            let wide = dt_parallel::with_thread_limit(width, || {
                score_pairs(&p, &q, 0..48, &users, &items, None)
            });
            for (a, b) in baseline.iter().zip(&wide) {
                assert_eq!(a.to_bits(), b.to_bits(), "width {width}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_pair_panics() {
        let p = panel(2, 2, 1);
        let q = panel(2, 2, 2);
        let _ = score_pairs(&p, &q, 0..2, &[2], &[0], None);
    }

    #[test]
    #[should_panic(expected = "user bias length")]
    fn short_bias_vector_panics() {
        let p = panel(3, 2, 1);
        let q = panel(3, 2, 2);
        let bs = Biases {
            user: &[0.0],
            item: &[0.0, 0.0, 0.0],
            global: 0.0,
        };
        let _ = score_pairs(&p, &q, 0..2, &[0], &[0], Some(bs));
    }
}
