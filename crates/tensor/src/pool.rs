//! Step-scoped tensor buffer pool: a free-list arena keyed by element count.
//!
//! Every training step rebuilds the autograd tape, which — before this
//! module — allocated a fresh `Vec<f64>` for every forward node and every
//! backward delta. For the paper's table shapes the hot buffers are large
//! (a 512×64 batch of `f64` is 256 KiB), which on glibc means an
//! `mmap`/`munmap` pair *per allocation*: the page-fault churn dominates
//! the step once gradients are row-sparse (PR 3). The pool turns that
//! into a pointer swap.
//!
//! ## Design
//!
//! * **Free lists are thread-local** (`RefCell<HashMap<len, Vec<Vec<f64>>>>`),
//!   so `take`/`recycle` are lock-free and the pool needs no `Sync` story.
//! * **Keyed by exact element count.** Training steps run the same shapes
//!   every iteration, so exact-size reuse hits ~100% after the first step
//!   and never wastes capacity on near-miss sizes.
//! * **Thread-confined with a pool-aware handoff**: `dt-parallel` workers
//!   never allocate tensor buffers — every parallel kernel allocates its
//!   output on the calling thread and hands workers disjoint `&mut` chunks
//!   (see `elementwise.rs` / `gemm.rs`). A buffer recycled on the thread
//!   that took it always lands back on the free list it came from.
//! * **Step-scoped lifetime**: buffers are recycled when the tape drops
//!   (`dt-autograd`'s `Graph::drop` returns every uniquely-owned node
//!   buffer), so the pool's working set is exactly one step's tape.
//! * **Bounded**: at most [`MAX_PER_CLASS`] free buffers per size class;
//!   extra recycles fall through to the global allocator.
//!
//! Pooled buffers hand back their *stale previous contents*. That is safe
//! (only `f64`s) but means callers must either overwrite every element
//! ([`crate::Tensor::pooled_scratch`]) or ask for an explicit wipe
//! ([`crate::Tensor::pooled_zeros`]).
//!
//! The pool is on by default and can be disabled for A/B tests with the
//! `DT_POOL=0` environment variable or, in-process and per-thread, with
//! [`with_disabled`]. Results are bit-identical either way — the pool
//! changes *where bytes live*, never *what is computed* — which is pinned
//! by the pooled-vs-fresh proptests in `dt-autograd`.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Maximum free buffers retained per size class; extras are released to
/// the global allocator. Training tapes need well under this many live
/// buffers of any single shape.
pub const MAX_PER_CLASS: usize = 32;

// -- statistics (global atomics so they aggregate across threads) -----------

static FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static RECYCLES: AtomicU64 = AtomicU64::new(0);
static DISCARDS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the pool's allocation counters (monotonic since process
/// start or the last [`reset_stats`]). Std-only; used by `dt-bench` to
/// report `allocs_per_step`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Stats {
    /// Buffers obtained from the global allocator (pool misses + pool-off
    /// allocations routed through the pooled constructors).
    pub fresh_allocs: u64,
    /// Buffers served from a free list.
    pub pool_hits: u64,
    /// Buffers handed back to a free list.
    pub recycles: u64,
    /// Recycles dropped because the size class was full or the pool is off.
    pub discards: u64,
}

/// Reads the global counters.
#[must_use]
pub fn stats() -> Stats {
    Stats {
        fresh_allocs: FRESH_ALLOCS.load(Ordering::Relaxed),
        pool_hits: POOL_HITS.load(Ordering::Relaxed),
        recycles: RECYCLES.load(Ordering::Relaxed),
        discards: DISCARDS.load(Ordering::Relaxed),
    }
}

/// Resets the global counters to zero (bench harness bookkeeping).
pub fn reset_stats() {
    FRESH_ALLOCS.store(0, Ordering::Relaxed);
    POOL_HITS.store(0, Ordering::Relaxed);
    RECYCLES.store(0, Ordering::Relaxed);
    DISCARDS.store(0, Ordering::Relaxed);
}

// -- enable / disable --------------------------------------------------------

fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("DT_POOL") {
        Ok(v) => !matches!(v.as_str(), "0" | "off" | "false"),
        Err(_) => true,
    })
}

thread_local! {
    static DISABLE_DEPTH: Cell<u32> = const { Cell::new(0) };
    static FREE: RefCell<HashMap<usize, Vec<Vec<f64>>>> = RefCell::new(HashMap::new());
}

/// Returns `true` when `take`/`recycle` on this thread use the free lists.
#[must_use]
pub fn enabled() -> bool {
    env_enabled() && DISABLE_DEPTH.with(|d| d.get()) == 0
}

/// Runs `f` with the pool disabled on the current thread (nestable).
///
/// The A/B switch for the pooled-vs-fresh equivalence tests: inside the
/// closure every pooled constructor falls through to the global allocator
/// and every recycle is a plain drop.
pub fn with_disabled<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            DISABLE_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    DISABLE_DEPTH.with(|d| d.set(d.get() + 1));
    let _g = Guard;
    f()
}

// -- take / recycle ----------------------------------------------------------

/// `true` in the second slot when the buffer came off a free list (and so
/// holds stale contents).
fn take_inner(len: usize) -> (Vec<f64>, bool) {
    if enabled() {
        let hit = FREE.with(|f| f.borrow_mut().get_mut(&len).and_then(std::vec::Vec::pop));
        if let Some(buf) = hit {
            debug_assert_eq!(buf.len(), len);
            POOL_HITS.fetch_add(1, Ordering::Relaxed);
            return (buf, true);
        }
    }
    FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // alloc-ok: the pool's own refill — the one place fresh backing buffers are minted
    (vec![0.0; len], false)
}

/// Takes a buffer of exactly `len` elements with **unspecified contents**
/// (stale data from a previous user on a hit, zeros on a miss).
#[must_use]
pub fn take(len: usize) -> Vec<f64> {
    take_inner(len).0
}

/// Takes a buffer of exactly `len` elements, zero-filled. A miss is
/// already zeroed by the allocator; only hits pay for the wipe.
#[must_use]
pub fn take_zeroed(len: usize) -> Vec<f64> {
    let (mut buf, stale) = take_inner(len);
    if stale {
        buf.fill(0.0);
    }
    buf
}

/// Hands `buf` back to the current thread's free list. Zero-length
/// buffers are dropped (nothing to reuse).
pub fn recycle(buf: Vec<f64>) {
    let len = buf.len();
    if len == 0 || !enabled() {
        DISCARDS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    FREE.with(|f| {
        let mut map = f.borrow_mut();
        let class = map.entry(len).or_default();
        if class.len() < MAX_PER_CLASS {
            class.push(buf);
            RECYCLES.fetch_add(1, Ordering::Relaxed);
        } else {
            DISCARDS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Releases every free buffer on the current thread back to the global
/// allocator.
pub fn clear() {
    FREE.with(|f| f.borrow_mut().clear());
}

/// Number of free buffers currently parked on this thread (tests).
#[must_use]
pub fn free_buffers() -> usize {
    FREE.with(|f| f.borrow().values().map(std::vec::Vec::len).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The free lists are thread-local but the stats are global, so tests
    // that assert on counter deltas must not race each other. Serialize
    // them on one mutex.
    use std::sync::Mutex;
    static STATS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn take_recycle_roundtrip_reuses_buffer() {
        let _guard = STATS_LOCK.lock().unwrap();
        clear();
        let before = stats();
        let mut a = take(64);
        a[0] = 42.0;
        recycle(a);
        let b = take(64);
        assert_eq!(b.len(), 64);
        assert_eq!(b[0], 42.0, "hit hands back stale contents");
        let after = stats();
        assert_eq!(after.pool_hits - before.pool_hits, 1);
        assert_eq!(after.fresh_allocs - before.fresh_allocs, 1);
        assert_eq!(after.recycles - before.recycles, 1);
        recycle(b);
        clear();
    }

    #[test]
    fn take_zeroed_wipes_stale_contents() {
        let _guard = STATS_LOCK.lock().unwrap();
        clear();
        let mut a = take(8);
        a.fill(7.0);
        recycle(a);
        let b = take_zeroed(8);
        assert!(b.iter().all(|&v| v == 0.0));
        recycle(b);
        clear();
    }

    #[test]
    fn size_classes_do_not_cross() {
        let _guard = STATS_LOCK.lock().unwrap();
        clear();
        recycle(vec![1.0; 4]);
        let b = take(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&v| v == 0.0), "miss must be fresh zeros");
        clear();
    }

    #[test]
    fn class_cap_discards_extras() {
        let _guard = STATS_LOCK.lock().unwrap();
        clear();
        let before = stats();
        for _ in 0..MAX_PER_CLASS + 3 {
            recycle(vec![0.0; 16]);
        }
        let after = stats();
        assert_eq!(after.recycles - before.recycles, MAX_PER_CLASS as u64);
        assert_eq!(after.discards - before.discards, 3);
        assert_eq!(free_buffers(), MAX_PER_CLASS);
        clear();
    }

    #[test]
    fn with_disabled_bypasses_free_lists() {
        let _guard = STATS_LOCK.lock().unwrap();
        clear();
        let mut a = take(32);
        a.fill(9.0);
        recycle(a);
        with_disabled(|| {
            assert!(!enabled());
            let b = take(32);
            assert!(b.iter().all(|&v| v == 0.0), "disabled take is fresh");
            recycle(b); // discarded, not parked
                        // Nesting keeps it disabled until the outermost scope ends.
            with_disabled(|| assert!(!enabled()));
            assert!(!enabled());
        });
        assert!(enabled());
        let c = take(32);
        assert_eq!(c[0], 9.0, "pre-scope buffer still parked");
        recycle(c);
        clear();
    }

    #[test]
    fn zero_length_recycle_is_a_noop() {
        let _guard = STATS_LOCK.lock().unwrap();
        clear();
        recycle(Vec::new());
        assert_eq!(free_buffers(), 0);
        clear();
    }
}
