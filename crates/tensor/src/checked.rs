//! Debug-build finiteness guards on kernel outputs.
//!
//! A NaN born inside one GEMM call surfaces epochs later as a diverged
//! loss, with no trace of the operation that produced it. Each concrete
//! kernel therefore asserts — in debug builds only (`cfg(debug_assertions)`:
//! the dev and test profiles) — that its output contains no unexpected
//! non-finite values. Release builds compile the checks down to nothing,
//! so the hot path is untouched where it matters.
//!
//! Division may legitimately produce `±inf` (`x / 0` under a degenerate
//! propensity, later clamped away), and clamping passes infinite bounds
//! through, so those kernels reject only NaN.

/// Which non-finite values a kernel's output may contain.
#[derive(Clone, Copy)]
pub(crate) enum Check {
    /// Output must be entirely finite (no NaN, no ±inf).
    Finite,
    /// Output may contain ±inf but never NaN (see the module docs).
    NoNan,
}

impl Check {
    /// Scans `out` in debug builds and panics at the first violation;
    /// release builds reduce this to nothing.
    #[inline]
    pub(crate) fn run(self, op: &str, out: &[f64]) {
        if cfg!(debug_assertions) {
            let bad = match self {
                Check::Finite => out.iter().enumerate().find(|(_, v)| !v.is_finite()),
                Check::NoNan => out.iter().enumerate().find(|(_, v)| v.is_nan()),
            };
            if let Some((i, v)) = bad {
                // lint: allow(r3, r10): debug-build guard — the panic is the diagnostic
                panic!("{op}: non-finite output {v} at flat index {i} (debug finiteness guard)");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    // The guards are active exactly when debug assertions are; the test
    // profile enables them, so these run un-ignored everywhere we test.

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "guards compile away without debug assertions"
    )]
    #[should_panic(expected = "matmul: non-finite output")]
    fn poisoned_matmul_trips_the_guard() {
        let mut a = Tensor::ones(3, 3);
        a[(1, 2)] = f64::NAN;
        let _ = a.matmul(&Tensor::ones(3, 3));
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "guards compile away without debug assertions"
    )]
    #[should_panic(expected = "matmul_tn: non-finite output")]
    fn poisoned_gram_trips_the_guard() {
        let mut a = Tensor::ones(4, 2);
        a[(3, 1)] = f64::INFINITY;
        let _ = a.gram();
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "guards compile away without debug assertions"
    )]
    #[should_panic(expected = "add: non-finite output")]
    fn poisoned_add_trips_the_guard() {
        let a = Tensor::full(2, 2, f64::INFINITY);
        let _ = a.add(&Tensor::ones(2, 2));
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "guards compile away without debug assertions"
    )]
    #[should_panic(expected = "axpy: non-finite output")]
    fn poisoned_axpy_trips_the_guard() {
        let mut a = Tensor::ones(1, 3);
        let mut b = Tensor::ones(1, 3);
        b[(0, 1)] = f64::NAN;
        a.axpy(0.5, &b);
    }

    #[test]
    fn division_by_zero_is_tolerated() {
        // ±inf is a legitimate div output; only NaN is rejected.
        let a = Tensor::ones(1, 2);
        let b = Tensor::from_rows(&[&[0.0, 2.0]]);
        let q = a.div(&b);
        assert!(q[(0, 0)].is_infinite());
        assert!((q[(0, 1)] - 0.5).abs() < 1e-15);
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "guards compile away without debug assertions"
    )]
    #[should_panic(expected = "div: non-finite output")]
    fn nan_division_trips_the_guard() {
        let z = Tensor::zeros(1, 1);
        let _ = z.div(&z); // 0/0 is NaN, not inf
    }

    #[test]
    fn clean_kernels_pass_the_guard() {
        let a = Tensor::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]);
        let b = Tensor::from_rows(&[&[2.0, 0.5], &[-1.0, 3.0]]);
        let _ = a.matmul(&b);
        let _ = a.add(&b);
        let _ = a.sub(&b).mul(&b).div(&b);
        let _ = a.scale(3.0).neg().add_scalar(1.0).clamp(-2.0, 2.0);
    }
}
