//! Mixed-precision scoring panels: the bandwidth side of serving.
//!
//! The exact retrieval scan is memory-bound — at `M = 10^6` items every
//! request streams the whole item panel, so bytes/item is the knob that
//! moves items/sec. A [`Panel`] stores one embedding table in a serving
//! dtype:
//!
//! * [`PanelDtype::F64`] — the training representation, kept verbatim.
//!   The f64 panel is the **accuracy oracle**: its kernels are
//!   bit-identical to the [`crate::scoring`] kernels, so quantization
//!   error can always be measured against it.
//! * [`PanelDtype::F32`] — rounds each weight to `f32` (4 bytes/weight).
//! * [`PanelDtype::ScaledI8`] — per-row symmetric linear quantization
//!   (1 byte/weight + one `f64` scale per row): row `r` with max
//!   magnitude `a` stores `q = round(v / s)` with `s = a / 127`, so the
//!   largest-magnitude entry maps to ±127 exactly and every entry
//!   reconstructs within `s / 2`.
//!
//! ## Accumulation widths and determinism
//!
//! Scores leave every kernel as `f64`, whatever the storage dtype:
//!
//! * f64 panels accumulate in `f64` (sequential over the dim axis — the
//!   same order as the pair kernels and the blocked GEMM, hence
//!   bit-identical to them);
//! * f32 panels accumulate in `f32` and widen once at the end;
//! * i8 panels accumulate in `i32` (exact: `dim · 127² < 2^31` for any
//!   dim < 133 000) and apply **one** final multiply by the product of
//!   the two row scales.
//!
//! Biases stay `f64` and are applied in the association order
//! `((dot + bᵤ) + bᵢ) + µ` shared by every scoring kernel in the
//! workspace. Each dtype's scores are bit-identical at any
//! `DT_NUM_THREADS`, pooled or pool-disabled: chunk geometry is fixed by
//! [`crate::scoring::PAR_MIN_WORK`]-style constants, never by the thread
//! count, and [`scan_top_k`] shards are merged through the push-order-
//! independent [`BoundedRank`] heap.

use std::ops::Range;

use crate::scoring::{Biases, PAR_MIN_WORK};
use crate::topk::{BoundedRank, Ranked};
use crate::Tensor;

/// Pair-kernel chunk length (output elements per parallel task unit) —
/// mirrors the `scoring` module's constant. A shape constant, not a
/// thread-count function.
const PAIR_CHUNK: usize = 1024;

/// Storage dtype of a serving [`Panel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PanelDtype {
    /// 8 bytes/weight — the training representation, the accuracy oracle.
    F64,
    /// 4 bytes/weight — round-to-nearest `f32`.
    F32,
    /// 1 byte/weight + one `f64` scale per row — per-row symmetric
    /// linear quantization.
    ScaledI8,
}

impl PanelDtype {
    /// Stable lowercase label used in benchmark reports and tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::F64 => "f64",
            Self::F32 => "f32",
            Self::ScaledI8 => "scaled_i8",
        }
    }

    /// Payload bytes for one `rows × cols` panel in this dtype
    /// (weights plus per-row scales; excludes biases, which stay `f64`
    /// for every dtype).
    #[must_use]
    pub fn panel_bytes(self, rows: usize, cols: usize) -> usize {
        match self {
            Self::F64 => rows * cols * 8,
            Self::F32 => rows * cols * 4,
            Self::ScaledI8 => rows * cols + rows * 8,
        }
    }
}

enum Store {
    F64(Vec<f64>),
    F32(Vec<f32>),
    ScaledI8 { data: Vec<i8>, scale: Vec<f64> },
}

/// One embedding table in a serving dtype — see the module docs for the
/// quantization and accumulation contracts.
pub struct Panel {
    rows: usize,
    cols: usize,
    store: Store,
}

/// Quantizes one row to `i8` with a symmetric per-row scale and returns
/// the scale. The scale is `max|v| / 127`, so the largest-magnitude
/// entry maps to ±127 exactly; an all-zero row gets scale `0.0` (and
/// dequantizes to exact zeros). Quantization commutes with negation:
/// `quantize(-v) == -quantize(v)` because [`f64::round`] rounds halves
/// away from zero symmetrically.
///
/// # Panics
/// Panics when `out.len() != row.len()`.
pub fn quantize_row_i8(row: &[f64], out: &mut [i8]) -> f64 {
    assert_eq!(
        row.len(),
        out.len(),
        "quantize_row_i8: {} values vs {} output slots",
        row.len(),
        out.len()
    );
    let mut amax = 0.0f64;
    for &v in row {
        amax = amax.max(v.abs());
    }
    if amax == 0.0 {
        for q in out.iter_mut() {
            *q = 0;
        }
        return 0.0;
    }
    let scale = amax / 127.0;
    for (q, &v) in out.iter_mut().zip(row) {
        // The clamp guards the one-ulp case where amax / (amax / 127)
        // rounds up past 127.
        *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

impl Panel {
    /// Quantizes a training-dtype panel into a serving panel at
    /// index-export time. `F64` copies the data verbatim (the oracle
    /// path); lossy dtypes round per the module contract.
    #[must_use]
    pub fn quantize(t: &Tensor, dtype: PanelDtype) -> Self {
        let (rows, cols) = (t.rows(), t.cols());
        let d = t.data();
        // alloc-ok: index-export path, runs once per model, not per query.
        let store = match dtype {
            PanelDtype::F64 => Store::F64(d.to_vec()),
            PanelDtype::F32 => Store::F32(d.iter().map(|&v| v as f32).collect()),
            PanelDtype::ScaledI8 => {
                let mut data = vec![0i8; rows * cols];
                let mut scale = vec![0.0f64; rows];
                for r in 0..rows {
                    scale[r] = quantize_row_i8(
                        &d[r * cols..(r + 1) * cols],
                        &mut data[r * cols..][..cols],
                    );
                }
                Store::ScaledI8 { data, scale }
            }
        };
        Self { rows, cols, store }
    }

    /// Number of rows (users or items).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage dtype of this panel.
    #[must_use]
    pub fn dtype(&self) -> PanelDtype {
        match self.store {
            Store::F64(_) => PanelDtype::F64,
            Store::F32(_) => PanelDtype::F32,
            Store::ScaledI8 { .. } => PanelDtype::ScaledI8,
        }
    }

    /// Payload bytes of this panel (weights + per-row scales).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.dtype().panel_bytes(self.rows, self.cols)
    }

    /// The per-row quantization scale (`ScaledI8` panels; `None`
    /// otherwise). Exposed for round-trip tests.
    #[must_use]
    pub fn row_scale(&self, r: usize) -> Option<f64> {
        match &self.store {
            Store::ScaledI8 { scale, .. } => Some(scale[r]),
            _ => None,
        }
    }

    /// Reconstructs the panel as an `f64` tensor (dequantization).
    /// `F64` round-trips bitwise; `ScaledI8` reconstructs each entry
    /// within half its row scale.
    #[must_use]
    pub fn dequantize(&self) -> Tensor {
        // alloc-ok: test/diagnostic path, not serving.
        match &self.store {
            Store::F64(d) => Tensor::from_vec(self.rows, self.cols, d.clone()),
            Store::F32(d) => Tensor::from_vec(
                self.rows,
                self.cols,
                d.iter().map(|&v| f64::from(v)).collect(),
            ),
            Store::ScaledI8 { data, scale } => Tensor::from_fn(self.rows, self.cols, |r, c| {
                f64::from(data[r * self.cols + c]) * scale[r]
            }),
        }
    }
}

/// Sequential f64 dot — the exact accumulation order of the `scoring`
/// pair kernels and of the blocked GEMM's k-axis, so `F64` panel scores
/// are bit-identical to the unquantized serving path.
#[inline]
fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

#[inline]
fn dot_f32(a: &[f32], b: &[f32]) -> f64 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    f64::from(acc)
}

#[inline]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (x, y) in a.iter().zip(b) {
        acc += i32::from(*x) * i32::from(*y);
    }
    acc
}

/// Applies the shared bias association order `((dot + bᵤ) + bᵢ) + µ`.
#[inline]
fn apply_bias(raw: f64, u: usize, i: usize, biases: Option<Biases<'_>>) -> f64 {
    match biases {
        Some(bs) => ((raw + bs.user[u]) + bs.item[i]) + bs.global,
        None => raw,
    }
}

fn check_panels(p: &Panel, q: &Panel, biases: Option<&Biases<'_>>) {
    assert_eq!(
        p.cols, q.cols,
        "quant: panel width mismatch {} vs {}",
        p.cols, q.cols
    );
    assert!(
        p.dtype() == q.dtype(),
        "quant: dtype mismatch {} vs {}",
        p.dtype().label(),
        q.dtype().label()
    );
    if let Some(b) = biases {
        assert_eq!(
            b.user.len(),
            p.rows,
            "quant: user bias length {} vs {} user rows",
            b.user.len(),
            p.rows
        );
        assert_eq!(
            b.item.len(),
            q.rows,
            "quant: item bias length {} vs {} item rows",
            b.item.len(),
            q.rows
        );
    }
}

/// Raw (bias-free) score of one `(user, item)` pair in the panels'
/// shared dtype. Row bounds are the caller's contract (`debug_assert`ed);
/// the kernels below check them once per call, not per pair.
#[inline]
fn raw_score(p: &Panel, q: &Panel, u: usize, i: usize) -> f64 {
    let c = p.cols;
    debug_assert!(u < p.rows && i < q.rows);
    match (&p.store, &q.store) {
        (Store::F64(pd), Store::F64(qd)) => dot_f64(&pd[u * c..][..c], &qd[i * c..][..c]),
        (Store::F32(pd), Store::F32(qd)) => dot_f32(&pd[u * c..][..c], &qd[i * c..][..c]),
        (
            Store::ScaledI8 {
                data: pd,
                scale: ps,
            },
            Store::ScaledI8 {
                data: qd,
                scale: qs,
            },
        ) => {
            let acc = dot_i8(&pd[u * c..][..c], &qd[i * c..][..c]);
            // One final scale multiply: i32 accumulation is exact, so the
            // only rounding beyond quantization itself is this product.
            f64::from(acc) * (ps[u] * qs[i])
        }
        // lint: allow(r10): dead arm — check_panels asserts dtype equality
        _ => unreachable!("quant: checked dtype mismatch"),
    }
}

/// Scores one user against an explicit item-id list — the dtype twin of
/// [`crate::scoring::score_user_items_into`], used by the quantized IVF
/// rerank. `out` is cleared and resized; chunk geometry is fixed by a
/// shape constant, so results are bit-identical at any thread count.
///
/// # Panics
/// Panics on mismatched panel widths or dtypes, bias vectors not
/// matching the panel heights, or an out-of-bounds user/item index.
pub fn score_user_items_into(
    p: &Panel,
    q: &Panel,
    user: usize,
    items: &[usize],
    biases: Option<Biases<'_>>,
    out: &mut Vec<f64>,
) {
    check_panels(p, q, biases.as_ref());
    assert!(
        user < p.rows,
        "quant: user {user} out of bounds for {} user rows",
        p.rows
    );
    assert!(
        items.iter().all(|&i| i < q.rows),
        "quant: item id out of bounds for {} item rows",
        q.rows
    );
    out.clear();
    out.resize(items.len(), 0.0);
    let kernel = |base: usize, chunk: &mut [f64]| {
        for (off, o) in chunk.iter_mut().enumerate() {
            let i = items[base + off];
            *o = apply_bias(raw_score(p, q, user, i), user, i, biases);
        }
    };
    if items.len() * p.cols.max(1) >= PAR_MIN_WORK {
        dt_parallel::for_each_chunk(&mut out[..], PAIR_CHUNK, |ci, chunk| {
            kernel(ci * PAIR_CHUNK, chunk);
        });
    } else {
        kernel(0, &mut out[..]);
    }
}

/// Fused scan-and-select over a contiguous item range: scores `user`
/// against every item in `items` (skipping ids in the ascending-sorted
/// `exclude` list) and keeps the best `out.len()` per
/// [`crate::topk::rank_cmp`], without materializing the score vector.
/// Returns the number of slots filled; unused slots are tombstoned.
///
/// This is the bandwidth kernel: one streaming pass over the item-panel
/// range, one bounded heap in the caller's slice, zero allocation. The
/// serving engine shards the catalog into ranges, runs one `scan_top_k`
/// per `(range, user)` task, and merges the partial results — exact
/// because the retained set is push-order independent (see
/// [`BoundedRank`]).
///
/// # Panics
/// Panics on mismatched panel widths or dtypes, bias vectors not
/// matching the panel heights, an out-of-bounds user, or an item range
/// beyond the item panel.
pub fn scan_top_k(
    p: &Panel,
    q: &Panel,
    user: usize,
    items: Range<usize>,
    exclude: &[u32],
    biases: Option<Biases<'_>>,
    out: &mut [Ranked],
) -> usize {
    check_panels(p, q, biases.as_ref());
    assert!(
        user < p.rows,
        "quant: user {user} out of bounds for {} user rows",
        p.rows
    );
    assert!(
        items.start <= items.end && items.end <= q.rows,
        "quant: item range {}..{} out of bounds for {} item rows",
        items.start,
        items.end,
        q.rows
    );
    debug_assert!(
        exclude.windows(2).all(|w| w[0] <= w[1]),
        "quant: exclude list must be sorted ascending"
    );
    if out.is_empty() {
        return 0;
    }
    // Narrow the exclude list to the scanned range once.
    let e_lo = exclude.partition_point(|&e| (e as usize) < items.start);
    let excl = &exclude[e_lo..];
    let mut rank = BoundedRank::new(out);
    let c = p.cols;
    // Dispatch the dtype once, then run a monomorphic stream loop: the
    // per-item work is a contiguous-row dot plus one heap offer.
    macro_rules! stream {
        ($pu:expr, $qd:expr, $dot:ident, $finish:expr) => {{
            let pu = $pu;
            let qd = $qd;
            let mut e = 0usize;
            for i in items.clone() {
                let item = i as u32;
                while e < excl.len() && excl[e] < item {
                    e += 1;
                }
                if e < excl.len() && excl[e] == item {
                    continue;
                }
                let raw = $finish($dot(pu, &qd[i * c..][..c]), i);
                rank.push(Ranked {
                    item,
                    score: apply_bias(raw, user, i, biases),
                });
            }
        }};
    }
    match (&p.store, &q.store) {
        (Store::F64(pd), Store::F64(qd)) => {
            stream!(&pd[user * c..][..c], qd, dot_f64, |d: f64, _i| d);
        }
        (Store::F32(pd), Store::F32(qd)) => {
            stream!(&pd[user * c..][..c], qd, dot_f32, |d: f64, _i| d);
        }
        (
            Store::ScaledI8 {
                data: pd,
                scale: ps,
            },
            Store::ScaledI8 {
                data: qd,
                scale: qs,
            },
        ) => {
            let su = ps[user];
            stream!(&pd[user * c..][..c], qd, dot_i8, |acc: i32, i: usize| {
                f64::from(acc) * (su * qs[i])
            });
        }
        // lint: allow(r10): dead arm — check_panels asserts dtype equality
        _ => unreachable!("quant: checked dtype mismatch"),
    }
    rank.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring;

    fn panel(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed | 1;
        Tensor::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    fn biases(nu: usize, ni: usize) -> (Vec<f64>, Vec<f64>) {
        let bu: Vec<f64> = (0..nu).map(|i| (i as f64 * 0.7).sin() * 0.2).collect();
        let bi: Vec<f64> = (0..ni).map(|i| (i as f64 * 1.3).cos() * 0.1).collect();
        (bu, bi)
    }

    /// Published-vector pin of the i8 quantizer, mirroring the SplitMix64
    /// reference-value test in `dt-serve`'s `kmeans.rs`: the row
    /// `[1.0, -0.5, 0.25, 0.0]` has `amax = 1.0`, so the scale is exactly
    /// `1/127` and the codes are the round of `v * 127`.
    #[test]
    fn i8_quantizer_reference_values() {
        let row = [1.0, -0.5, 0.25, 0.0];
        let mut q = [0i8; 4];
        let scale = quantize_row_i8(&row, &mut q);
        assert_eq!(scale, 1.0 / 127.0);
        assert_eq!(q, [127, -64, 32, 0]);
        // And a non-unit amax: scale = 3.5 / 127.
        let row = [-3.5, 1.75, 3.5, -0.01];
        let scale = quantize_row_i8(&row, &mut q);
        assert_eq!(scale, 3.5 / 127.0);
        assert_eq!(q, [-127, 64, 127, 0]);
    }

    #[test]
    fn i8_round_trip_error_is_bounded_by_half_scale() {
        let t = panel(16, 9, 99);
        let p = Panel::quantize(&t, PanelDtype::ScaledI8);
        let back = p.dequantize();
        for r in 0..16 {
            let s = p.row_scale(r).unwrap_or(f64::NAN);
            for c in 0..9 {
                let err = (t.get(r, c) - back.get(r, c)).abs();
                assert!(err <= s * 0.5 + 1e-15, "row {r} col {c}: err {err} > s/2");
            }
        }
    }

    #[test]
    fn i8_quantization_is_exactly_symmetric_under_negation() {
        let t = panel(8, 7, 1234);
        let neg = Tensor::from_fn(8, 7, |r, c| -t.get(r, c));
        let (a, b) = (
            Panel::quantize(&t, PanelDtype::ScaledI8),
            Panel::quantize(&neg, PanelDtype::ScaledI8),
        );
        for r in 0..8 {
            assert_eq!(a.row_scale(r), b.row_scale(r));
        }
        let (da, db) = (a.dequantize(), b.dequantize());
        for r in 0..8 {
            for c in 0..7 {
                assert_eq!(da.get(r, c).to_bits(), (-db.get(r, c)).to_bits());
            }
        }
    }

    #[test]
    fn zero_row_quantizes_to_zero_scale_and_exact_zeros() {
        let t = Tensor::zeros(3, 5);
        let p = Panel::quantize(&t, PanelDtype::ScaledI8);
        assert_eq!(p.row_scale(0), Some(0.0));
        let back = p.dequantize();
        assert!(back.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn f64_panel_round_trips_bitwise_and_scores_match_scoring_kernels() {
        let pu = panel(6, 8, 5);
        let qi = panel(13, 8, 7);
        let p = Panel::quantize(&pu, PanelDtype::F64);
        let q = Panel::quantize(&qi, PanelDtype::F64);
        assert_eq!(p.dequantize().data(), pu.data());
        let (bu, bi) = biases(6, 13);
        let bs = Biases {
            user: &bu,
            item: &bi,
            global: 0.3,
        };
        let items: Vec<usize> = (0..13).rev().collect();
        let mut got = Vec::new();
        score_user_items_into(&p, &q, 4, &items, Some(bs), &mut got);
        let mut want = Vec::new();
        scoring::score_user_items_into(&pu, &qi, 0..8, 4, &items, Some(bs), &mut want);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn lossy_dtypes_score_close_to_the_oracle() {
        let pu = panel(4, 16, 21);
        let qi = panel(40, 16, 22);
        let (bu, bi) = biases(4, 40);
        let bs = Biases {
            user: &bu,
            item: &bi,
            global: -0.2,
        };
        let items: Vec<usize> = (0..40).collect();
        let mut oracle = Vec::new();
        scoring::score_user_items_into(&pu, &qi, 0..16, 1, &items, Some(bs), &mut oracle);
        for (dtype, tol) in [(PanelDtype::F32, 1e-6), (PanelDtype::ScaledI8, 0.05)] {
            let p = Panel::quantize(&pu, dtype);
            let q = Panel::quantize(&qi, dtype);
            let mut got = Vec::new();
            score_user_items_into(&p, &q, 1, &items, Some(bs), &mut got);
            for (g, w) in got.iter().zip(&oracle) {
                assert!((g - w).abs() < tol, "{}: {g} vs {w}", dtype.label());
            }
        }
    }

    #[test]
    fn scan_matches_score_then_select_for_every_dtype() {
        let pu = panel(3, 12, 31);
        let qi = panel(257, 12, 37);
        let (bu, bi) = biases(3, 257);
        let bs = Biases {
            user: &bu,
            item: &bi,
            global: 0.05,
        };
        let exclude: Vec<u32> = vec![0, 31, 32, 200, 999];
        for dtype in [PanelDtype::F64, PanelDtype::F32, PanelDtype::ScaledI8] {
            let p = Panel::quantize(&pu, dtype);
            let q = Panel::quantize(&qi, dtype);
            let items: Vec<usize> = (0..257).collect();
            let mut scores = Vec::new();
            score_user_items_into(&p, &q, 2, &items, Some(bs), &mut scores);
            for excl in &exclude {
                if (*excl as usize) < scores.len() {
                    scores[*excl as usize] = f64::NEG_INFINITY;
                }
            }
            let want = crate::reference::top_k_by_sort(&scores, 10, &[]);
            let mut out = vec![Ranked::TOMBSTONE; 10];
            let n = scan_top_k(&p, &q, 2, 0..257, &exclude, Some(bs), &mut out);
            assert_eq!(n, 10, "{}", dtype.label());
            for (g, w) in out.iter().zip(&want) {
                assert_eq!(g.item, w.item, "{}", dtype.label());
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "{}", dtype.label());
            }
        }
    }

    #[test]
    fn sharded_scans_merge_to_the_full_scan() {
        let pu = panel(2, 6, 77);
        let qi = panel(300, 6, 78);
        for dtype in [PanelDtype::F32, PanelDtype::ScaledI8] {
            let p = Panel::quantize(&pu, dtype);
            let q = Panel::quantize(&qi, dtype);
            let mut full = vec![Ranked::TOMBSTONE; 7];
            let n = scan_top_k(&p, &q, 1, 0..300, &[5, 120], None, &mut full);
            let mut merged = vec![Ranked::TOMBSTONE; 7];
            let mut rank = BoundedRank::new(&mut merged);
            for lo in (0..300).step_by(64) {
                let hi = (lo + 64).min(300);
                let mut part = vec![Ranked::TOMBSTONE; 7];
                let np = scan_top_k(&p, &q, 1, lo..hi, &[5, 120], None, &mut part);
                for r in &part[..np] {
                    rank.push(*r);
                }
            }
            let nm = rank.finish();
            assert_eq!(nm, n);
            assert_eq!(&merged[..nm], &full[..n], "{}", dtype.label());
        }
    }

    #[test]
    fn scan_is_bit_identical_across_widths() {
        let pu = panel(2, 24, 91);
        let qi = panel(4096, 24, 92);
        for dtype in [PanelDtype::F64, PanelDtype::F32, PanelDtype::ScaledI8] {
            let p = Panel::quantize(&pu, dtype);
            let q = Panel::quantize(&qi, dtype);
            let run = || {
                let mut out = vec![Ranked::TOMBSTONE; 20];
                let n = scan_top_k(&p, &q, 0, 0..4096, &[], None, &mut out);
                out.truncate(n);
                out
            };
            let base = dt_parallel::with_thread_limit(1, run);
            for width in [2, 8] {
                let wide = dt_parallel::with_thread_limit(width, run);
                assert_eq!(base.len(), wide.len());
                for (a, b) in base.iter().zip(&wide) {
                    assert_eq!(a.item, b.item, "{} width {width}", dtype.label());
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn payload_bytes_follow_the_dtype() {
        let t = panel(10, 32, 3);
        assert_eq!(Panel::quantize(&t, PanelDtype::F64).payload_bytes(), 2560);
        assert_eq!(Panel::quantize(&t, PanelDtype::F32).payload_bytes(), 1280);
        assert_eq!(
            Panel::quantize(&t, PanelDtype::ScaledI8).payload_bytes(),
            10 * 32 + 10 * 8
        );
    }

    #[test]
    #[should_panic(expected = "dtype mismatch")]
    fn mixed_dtype_panels_panic() {
        let t = panel(2, 2, 1);
        let p = Panel::quantize(&t, PanelDtype::F32);
        let q = Panel::quantize(&t, PanelDtype::ScaledI8);
        let mut out = Vec::new();
        score_user_items_into(&p, &q, 0, &[0], None, &mut out);
    }

    #[test]
    #[should_panic(expected = "item range")]
    fn out_of_range_scan_panics() {
        let t = panel(2, 2, 1);
        let p = Panel::quantize(&t, PanelDtype::F64);
        let q = Panel::quantize(&t, PanelDtype::F64);
        let mut out = [Ranked::TOMBSTONE; 1];
        let _ = scan_top_k(&p, &q, 0, 0..3, &[], None, &mut out);
    }
}
