//! Matrix-multiplication kernels: cache-blocked, multi-threaded, and
//! bit-for-bit deterministic.
//!
//! The workloads in this workspace multiply tall-skinny embedding matrices
//! (`n × k` with `k ≤ 256`). Each kernel combines
//!
//! * **`k`-blocked panels with slice-based inner loops** — the `i-k-j` loop
//!   order over row-major data, tiled so a panel of the right-hand operand
//!   is reused across a 4-row micro-tile of the output (one load of a `B`
//!   row feeds four FMA streams); and
//! * **row-partitioned execution on the shared `dt-parallel` pool** above a
//!   flop threshold — each output row is written by exactly one thread.
//!
//! ## Determinism guarantee
//!
//! Every kernel produces *identical bytes* for any `DT_NUM_THREADS`
//! (including 1):
//!
//! * `matmul` / `matmul_nt`: per output element the `k` products are
//!   accumulated in ascending-`p` order — exactly the naive triple loop —
//!   and row partitioning never splits an element's reduction, so the
//!   partition cannot affect the result.
//! * `matmul_tn` reduces over input rows. Rows are grouped into fixed
//!   [`TN_REDUCTION_CHUNK`]-high chunks (a function of the shape only,
//!   never of the thread count); each chunk's `k1 × k2` partial is a
//!   fixed-order sequential sum, and partials are merged in ascending
//!   chunk order on the calling thread.
//!
//! The naive oracles these claims are tested against live in
//! [`crate::reference`].

use crate::checked::Check;
use crate::Tensor;

/// Height (input rows) of one reduction chunk in [`Tensor::matmul_tn`].
/// Part of the determinism contract: chunk geometry depends only on the
/// input shape, so any thread count reproduces the same float grouping.
pub const TN_REDUCTION_CHUNK: usize = 512;

/// `k`-panel height: the slice of the shared operand streamed per pass.
const KC: usize = 256;

/// Output rows updated together by the micro-tile.
const MR: usize = 4;

/// Minimum multiply-adds before a kernel fans out to the pool; below this
/// the thread handoff costs more than the arithmetic.
const PAR_MIN_FLOPS: usize = 1 << 17;

/// Cache-blocked `C += A · B` over row-major slices (`A: m×k`, `B: k×n`,
/// `C: m×n`, `m = c.len() / n`). Per output element the products are
/// accumulated in ascending-`p` order, so any row-partition of `C` (with
/// the matching rows of `A`) reproduces the sequential result exactly.
fn mm_panel(a: &[f64], b: &[f64], c: &mut [f64], k: usize, n: usize) {
    let m = c.len() / n;
    for p0 in (0..k).step_by(KC) {
        let pe = (p0 + KC).min(k);
        let mut i = 0;
        // 4-row micro-tile: one load of each B row feeds four output rows.
        while i + MR <= m {
            let block = &mut c[i * n..(i + MR) * n];
            let (c0, block) = block.split_at_mut(n);
            let (c1, block) = block.split_at_mut(n);
            let (c2, c3) = block.split_at_mut(n);
            for p in p0..pe {
                let a0 = a[i * k + p];
                let a1 = a[(i + 1) * k + p];
                let a2 = a[(i + 2) * k + p];
                let a3 = a[(i + 3) * k + p];
                let brow = &b[p * n..(p + 1) * n];
                for ((((v0, v1), v2), v3), &bv) in c0
                    .iter_mut()
                    .zip(c1.iter_mut())
                    .zip(c2.iter_mut())
                    .zip(c3.iter_mut())
                    .zip(brow)
                {
                    *v0 += a0 * bv;
                    *v1 += a1 * bv;
                    *v2 += a2 * bv;
                    *v3 += a3 * bv;
                }
            }
            i += MR;
        }
        // Remainder rows, same ascending-p order.
        while i < m {
            let crow = &mut c[i * n..(i + 1) * n];
            for p in p0..pe {
                let av = a[i * k + p];
                let brow = &b[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
            i += 1;
        }
    }
}

/// `C[i,j] = A row i · B row j` over row-major slices (`A: m×k`, `B: n×k`,
/// `C: m×n`). Four dot products against consecutive `B` rows share one
/// streaming pass over the `A` row; every sum runs in ascending-`p` order.
fn nt_panel(a: &[f64], b: &[f64], c: &mut [f64], k: usize, n: usize) {
    for (i, crow) in c.chunks_exact_mut(n).enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for ((((&av, &v0), &v1), &v2), &v3) in arow.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                s0 += av * v0;
                s1 += av * v1;
                s2 += av * v2;
                s3 += av * v3;
            }
            crow[j] = s0;
            crow[j + 1] = s1;
            crow[j + 2] = s2;
            crow[j + 3] = s3;
            j += 4;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let mut s = 0.0;
            for (&av, &bv) in arow.iter().zip(brow) {
                s += av * bv;
            }
            crow[j] = s;
            j += 1;
        }
    }
}

/// `C += Aᵀ · B` over row-major slices (`A: r×k1`, `B: r×k2`, `C: k1×k2`),
/// accumulating input rows in ascending order.
///
/// Rows are consumed four at a time so each pass over `C` retires four
/// input rows (4× less output traffic — `C` is the large operand when
/// `k1·k2` outgrows the cache). Per output element the four updates are
/// separate sequential `+=`s in ascending-row order, so the result is
/// bit-identical to the row-at-a-time loop.
fn tn_panel(a: &[f64], b: &[f64], c: &mut [f64], k1: usize, k2: usize) {
    let r = a.len().checked_div(k1).unwrap_or(0);
    let mut row = 0;
    while row + 4 <= r {
        let a0 = &a[row * k1..(row + 1) * k1];
        let a1 = &a[(row + 1) * k1..(row + 2) * k1];
        let a2 = &a[(row + 2) * k1..(row + 3) * k1];
        let a3 = &a[(row + 3) * k1..(row + 4) * k1];
        let b0 = &b[row * k2..(row + 1) * k2];
        let b1 = &b[(row + 1) * k2..(row + 2) * k2];
        let b2 = &b[(row + 2) * k2..(row + 3) * k2];
        let b3 = &b[(row + 3) * k2..(row + 4) * k2];
        for (i, crow) in c.chunks_exact_mut(k2).enumerate() {
            let (x0, x1, x2, x3) = (a0[i], a1[i], a2[i], a3[i]);
            for ((((cv, &v0), &v1), &v2), &v3) in crow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                *cv += x0 * v0;
                *cv += x1 * v1;
                *cv += x2 * v2;
                *cv += x3 * v3;
            }
        }
        row += 4;
    }
    for (arow, brow) in a[row * k1..]
        .chunks_exact(k1)
        .zip(b[row * k2..].chunks_exact(k2))
    {
        for (&av, crow) in arow.iter().zip(c.chunks_exact_mut(k2)) {
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

impl Tensor {
    /// `self · other` — standard matrix product.
    ///
    /// Blocked and, above a size threshold, row-parallel on the shared
    /// pool; bit-identical to the naive `i-k-j` loop for every thread
    /// count (see the module docs).
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    #[must_use]
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimension mismatch {} · {}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        // pool: accumulating kernel (`C += …`), so the buffer must start
        // zeroed; drawn from the step pool, recycled when the tape drops.
        let mut out = Tensor::pooled_zeros(m, n);
        if m == 0 || k == 0 || n == 0 {
            return out;
        }
        let a = self.data();
        let b = other.data();
        let c = out.data_mut();
        let threads = dt_parallel::effective_threads();
        if threads > 1 && m > 1 && m * k * n >= PAR_MIN_FLOPS {
            let rows_per_task = m.div_ceil(threads);
            dt_parallel::for_each_chunk(c, rows_per_task * n, |ci, c_chunk| {
                let r0 = ci * rows_per_task;
                let rows = c_chunk.len() / n;
                mm_panel(&a[r0 * k..(r0 + rows) * k], b, c_chunk, k, n);
            });
        } else {
            mm_panel(a, b, c, k, n);
        }
        Check::Finite.run("matmul", out.data());
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// For `self: n × k1`, `other: n × k2` the result is `k1 × k2`;
    /// `a.matmul_tn(&a)` is the Gram matrix `AᵀA`. The reduction over the
    /// `n` input rows runs in [`TN_REDUCTION_CHUNK`]-high chunks whose
    /// partials are merged in ascending chunk order, so the result is
    /// bit-identical for every thread count (see the module docs).
    ///
    /// # Panics
    /// Panics when the row counts disagree.
    #[must_use]
    pub fn matmul_tn(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn: row mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        let (n, k1, k2) = (self.rows(), self.cols(), other.cols());
        // pool: accumulating kernel; zeroed pooled output.
        let mut out = Tensor::pooled_zeros(k1, k2);
        if n == 0 || k1 == 0 || k2 == 0 {
            return out;
        }
        let a = self.data();
        let b = other.data();
        let n_chunks = n.div_ceil(TN_REDUCTION_CHUNK);
        if n_chunks == 1 {
            // One chunk: accumulating straight into the zeroed output is
            // bit-identical to the buffered merge below (0.0 + x == x).
            tn_panel(a, b, out.data_mut(), k1, k2);
            Check::Finite.run("matmul_tn", out.data());
            return out;
        }
        let threads = dt_parallel::effective_threads();
        let par = threads > 1 && n * k1 * k2 >= PAR_MIN_FLOPS;
        // Chunks are processed in waves of per-thread partial buffers and
        // merged in ascending chunk order after each wave. The wave width
        // bounds memory (`wave · k1 · k2` floats) and has no numeric
        // effect: the merge order is a function of the chunking alone.
        let wave = if par { threads.min(n_chunks) } else { 1 };
        let mut partials = crate::pool::take_zeroed(wave * k1 * k2);
        let c = out.data_mut();
        let mut chunk0 = 0;
        while chunk0 < n_chunks {
            let wave_n = wave.min(n_chunks - chunk0);
            let pslice = &mut partials[..wave_n * k1 * k2];
            pslice.fill(0.0);
            dt_parallel::for_each_chunk(pslice, k1 * k2, |wi, buf| {
                let r0 = (chunk0 + wi) * TN_REDUCTION_CHUNK;
                let r1 = (r0 + TN_REDUCTION_CHUNK).min(n);
                tn_panel(&a[r0 * k1..r1 * k1], &b[r0 * k2..r1 * k2], buf, k1, k2);
            });
            for buf in pslice.chunks_exact(k1 * k2) {
                for (cv, &pv) in c.iter_mut().zip(buf) {
                    *cv += pv;
                }
            }
            chunk0 += wave_n;
        }
        crate::pool::recycle(partials);
        Check::Finite.run("matmul_tn", out.data());
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// For `self: m × k`, `other: n × k` the result is `m × n`. Row-parallel
    /// above a size threshold and bit-identical for every thread count.
    ///
    /// # Panics
    /// Panics when the column counts disagree.
    #[must_use]
    pub fn matmul_nt(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt: col mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        // pool: `nt_panel` writes every output element exactly once, so
        // zeroed-on-miss scratch would also do; zeroed keeps the m==0/k==0
        // early returns well-defined when `k == 0` skips the panel body.
        let mut out = Tensor::pooled_zeros(m, n);
        if m == 0 || k == 0 || n == 0 {
            return out;
        }
        let a = self.data();
        let b = other.data();
        let c = out.data_mut();
        let threads = dt_parallel::effective_threads();
        if threads > 1 && m > 1 && m * k * n >= PAR_MIN_FLOPS {
            let rows_per_task = m.div_ceil(threads);
            dt_parallel::for_each_chunk(c, rows_per_task * n, |ci, c_chunk| {
                let r0 = ci * rows_per_task;
                let rows = c_chunk.len() / n;
                nt_panel(&a[r0 * k..(r0 + rows) * k], b, c_chunk, k, n);
            });
        } else {
            nt_panel(a, b, c, k, n);
        }
        Check::Finite.run("matmul_nt", out.data());
        out
    }

    /// The Gram matrix `selfᵀ · self` (`cols × cols`, symmetric PSD).
    #[must_use]
    pub fn gram(&self) -> Self {
        self.matmul_tn(self)
    }

    /// `trace(self · other)` for square-compatible shapes, computed without
    /// forming the product: `Σ_ij self[i,j] · other[j,i]`.
    ///
    /// Combined with [`Tensor::gram`], this evaluates the paper's
    /// regularisation term `‖P·Qᵀ‖²_F = trace((PᵀP)(QᵀQ))` in
    /// `O((M+N)·k²)` instead of `O(M·N·k)`. Iterates row slices of `self`
    /// against strided column walks of `other` — no per-element
    /// bounds-checked `(i, j)` indexing in the O(n²) loop.
    #[must_use]
    pub fn trace_product(&self, other: &Self) -> f64 {
        assert_eq!(
            self.cols(),
            other.rows(),
            "trace_product: inner dimension mismatch {} · {}",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            self.rows(),
            other.cols(),
            "trace_product: product is not square ({} · {})",
            self.shape(),
            other.shape()
        );
        let ocols = other.cols();
        let odata = other.data();
        let mut t = 0.0;
        for i in 0..self.rows() {
            t += self
                .row(i)
                .iter()
                .zip(odata[i..].iter().step_by(ocols))
                .map(|(&s, &o)| s * o)
                .sum::<f64>();
        }
        Check::Finite.run("trace_product", &[t]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> (Tensor, Tensor) {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        (a, b)
    }

    #[test]
    fn matmul_known_values() {
        let (a, b) = example();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let (a, _) = example();
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let (a, b) = example();
        assert_eq!(a.matmul_tn(&a), a.transpose().matmul(&a));
        assert_eq!(a.matmul_nt(&b.transpose()), a.matmul(&b));
        let bt = b.transpose();
        assert_eq!(bt.matmul_tn(&bt), b.matmul(&bt));
    }

    #[test]
    fn micro_tile_remainders_match_reference() {
        // Shapes straddling the 4-row/4-col micro-tiles: 5, 6, 7 rows/cols.
        for m in 1..=7 {
            for k in 1..=5 {
                for n in 1..=7 {
                    let a = Tensor::from_fn(m, k, |i, j| (i * 31 + j * 7) as f64 - 8.0);
                    let b = Tensor::from_fn(k, n, |i, j| (i * 13 + j * 3) as f64 * 0.5 - 4.0);
                    assert_eq!(a.matmul(&b), crate::reference::matmul(&a, &b));
                    let bn = Tensor::from_fn(n, k, |i, j| (i * 5 + j) as f64 - 3.0);
                    assert_eq!(a.matmul_nt(&bn), crate::reference::matmul_nt(&a, &bn));
                    let an = Tensor::from_fn(m, k, |i, j| (i + j * 11) as f64 - 6.0);
                    let b2 = Tensor::from_fn(m, n, |i, j| (i * 2 + j) as f64 - 5.0);
                    assert_eq!(an.matmul_tn(&b2), crate::reference::matmul_tn(&an, &b2));
                }
            }
        }
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let (a, _) = example();
        let g = a.gram();
        assert_eq!(g.shape().rows, 3);
        for i in 0..3 {
            assert!(g[(i, i)] >= 0.0);
            for j in 0..3 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn trace_product_equals_frobenius_identity() {
        // ‖A·Bᵀ‖²_F == trace((AᵀA)(BᵀB)) for A: m×k, B: n×k.
        let a = Tensor::from_rows(&[&[1.0, -2.0], &[0.5, 3.0], &[2.0, 2.0]]);
        let b = Tensor::from_rows(&[&[4.0, 1.0], &[-1.0, 2.0]]);
        let direct = a.matmul_nt(&b).frob_sq();
        let via_gram = a.gram().trace_product(&b.gram());
        assert!((direct - via_gram).abs() < 1e-9, "{direct} vs {via_gram}");
    }

    #[test]
    fn trace_product_rectangular() {
        // 2×3 · 3×2: trace must sum self-row × other-column products.
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let expected = a.matmul(&b).data()[0] + a.matmul(&b).data()[3];
        assert!((a.trace_product(&b) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn shape_mismatch_panics() {
        let (a, _) = example();
        let _ = a.matmul(&a);
    }
}
