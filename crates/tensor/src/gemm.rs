//! Matrix-multiplication kernels.
//!
//! The workloads in this workspace multiply tall-skinny embedding matrices
//! (`n × k` with `k ≤ 256`), so a cache-friendly `i-k-j` loop order over
//! row-major data gets within a small factor of a tuned BLAS without any
//! unsafe code. The `*_tn` / `*_nt` variants avoid materialising transposes,
//! which matters for the Gram-matrix computations (`AᵀA`) used by the
//! disentangling losses.

use crate::Tensor;

impl Tensor {
    /// `self · other` — standard matrix product.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    #[must_use]
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimension mismatch {} · {}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Tensor::zeros(m, n);
        let a = self.data();
        let b = other.data();
        let c = out.data_mut();
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += aip * bv;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    ///
    /// For `self: n × k1`, `other: n × k2` the result is `k1 × k2`;
    /// `a.matmul_tn(&a)` is the Gram matrix `AᵀA`.
    #[must_use]
    pub fn matmul_tn(&self, other: &Self) -> Self {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn: row mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        let (n, k1, k2) = (self.rows(), self.cols(), other.cols());
        let mut out = Tensor::zeros(k1, k2);
        let a = self.data();
        let b = other.data();
        let c = out.data_mut();
        for r in 0..n {
            let arow = &a[r * k1..(r + 1) * k1];
            let brow = &b[r * k2..(r + 1) * k2];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let crow = &mut c[i * k2..(i + 1) * k2];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    ///
    /// For `self: m × k`, `other: n × k` the result is `m × n`.
    #[must_use]
    pub fn matmul_nt(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt: col mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (j, ov) in orow.iter_mut().enumerate() {
                let brow = &other.data()[j * k..(j + 1) * k];
                *ov = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            }
        }
        out
    }

    /// The Gram matrix `selfᵀ · self` (`cols × cols`, symmetric PSD).
    #[must_use]
    pub fn gram(&self) -> Self {
        self.matmul_tn(self)
    }

    /// `trace(self · other)` for square-compatible shapes, computed without
    /// forming the product: `Σ_ij self[i,j] · other[j,i]`.
    ///
    /// Combined with [`Tensor::gram`], this evaluates the paper's
    /// regularisation term `‖P·Qᵀ‖²_F = trace((PᵀP)(QᵀQ))` in
    /// `O((M+N)·k²)` instead of `O(M·N·k)`.
    #[must_use]
    pub fn trace_product(&self, other: &Self) -> f64 {
        assert_eq!(
            self.cols(),
            other.rows(),
            "trace_product: inner dimension mismatch {} · {}",
            self.shape(),
            other.shape()
        );
        assert_eq!(
            self.rows(),
            other.cols(),
            "trace_product: product is not square ({} · {})",
            self.shape(),
            other.shape()
        );
        let mut t = 0.0;
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                t += self[(i, j)] * other[(j, i)];
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> (Tensor, Tensor) {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        (a, b)
    }

    #[test]
    fn matmul_known_values() {
        let (a, b) = example();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let (a, _) = example();
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn tn_and_nt_match_explicit_transpose() {
        let (a, b) = example();
        assert_eq!(a.matmul_tn(&a), a.transpose().matmul(&a));
        assert_eq!(a.matmul_nt(&b.transpose()), a.matmul(&b));
        let bt = b.transpose();
        assert_eq!(bt.matmul_tn(&bt), b.matmul(&bt));
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let (a, _) = example();
        let g = a.gram();
        assert_eq!(g.shape().rows, 3);
        for i in 0..3 {
            assert!(g[(i, i)] >= 0.0);
            for j in 0..3 {
                assert_eq!(g[(i, j)], g[(j, i)]);
            }
        }
    }

    #[test]
    fn trace_product_equals_frobenius_identity() {
        // ‖A·Bᵀ‖²_F == trace((AᵀA)(BᵀB)) for A: m×k, B: n×k.
        let a = Tensor::from_rows(&[&[1.0, -2.0], &[0.5, 3.0], &[2.0, 2.0]]);
        let b = Tensor::from_rows(&[&[4.0, 1.0], &[-1.0, 2.0]]);
        let direct = a.matmul_nt(&b).frob_sq();
        let via_gram = a.gram().trace_product(&b.gram());
        assert!((direct - via_gram).abs() < 1e-9, "{direct} vs {via_gram}");
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn shape_mismatch_panics() {
        let (a, _) = example();
        let _ = a.matmul(&a);
    }
}
