//! Random tensor initialisers.
//!
//! All functions take an explicit RNG so that an experiment seeded once is
//! reproducible end-to-end.

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

use crate::Tensor;

/// i.i.d. `N(mean, std²)` entries.
///
/// # Panics
/// Panics when `std` is negative or non-finite.
#[must_use]
pub fn normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut impl Rng) -> Tensor {
    // lint: allow(r3): documented `# Panics` contract — invalid `std` is a caller bug
    let dist = Normal::new(mean, std).expect("normal: invalid std");
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| dist.sample(rng)).collect(),
    )
}

/// i.i.d. `U[lo, hi)` entries.
///
/// # Panics
/// Panics when `lo >= hi`.
#[must_use]
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Tensor {
    assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
    let dist = Uniform::new(lo, hi);
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| dist.sample(rng)).collect(),
    )
}

/// Glorot/Xavier uniform: `U[-a, a]` with `a = sqrt(6 / (fan_in + fan_out))`.
#[must_use]
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    uniform(rows, cols, -a, a, rng)
}

/// Glorot/Xavier normal: `N(0, 2 / (fan_in + fan_out))`.
#[must_use]
pub fn xavier_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / (rows + cols) as f64).sqrt();
    normal(rows, cols, 0.0, std, rng)
}

/// He/Kaiming normal: `N(0, 2 / fan_in)`, suited to ReLU towers.
#[must_use]
pub fn he_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / rows as f64).sqrt();
    normal(rows, cols, 0.0, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = normal(200, 50, 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(100, 10, -0.5, 0.5, &mut rng);
        assert!(t.min() >= -0.5 && t.max() < 0.5);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(300, 300, &mut rng);
        let a = (6.0 / 600.0_f64).sqrt();
        assert!(t.min() >= -a && t.max() < a);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = normal(5, 5, 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let b = normal(5, 5, 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn he_normal_scale_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let wide = he_normal(10_000, 4, &mut rng);
        // std should be about sqrt(2/10000) ≈ 0.0141
        let std = (wide.frob_sq() / wide.len() as f64).sqrt();
        assert!((std - 0.01414).abs() < 0.002, "std {std}");
    }
}
