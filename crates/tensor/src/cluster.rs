//! Coarse-quantizer kernels: blocked centroid distances and deterministic
//! argmin assignment.
//!
//! The IVF retrieval layer (`dt-serve`, DESIGN.md section 13) partitions
//! the item panel with Lloyd's k-means. The per-iteration hot loop is the
//! assignment step — for every panel row, the index of the nearest
//! centroid under squared Euclidean distance — which this module runs
//! through the same blocked, pool-parallel GEMM as scoring:
//!
//! ```text
//! ‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²
//! ```
//!
//! `‖x‖²` is constant per row and drops out of the argmin, so one
//! `X · Cᵀ` gather-GEMM plus a per-row scan over `‖c_j‖² − 2·S[r,j]`
//! decides every assignment.
//!
//! ## Determinism
//!
//! Bit-identical assignments for any `DT_NUM_THREADS`: the GEMM is
//! deterministic per the `gemm` module contract, `‖c‖²` is a sequential
//! ascending sum per centroid, row blocks are a function of shapes only,
//! and the argmin scans centroids in ascending id with a strict `<`
//! update — ties keep the lowest centroid id, so the result is a pure
//! function of the score matrix. Comparisons treat NaN distances as
//! never-nearer (a NaN row keeps centroid 0), which cannot occur for
//! finite panels but keeps the kernel total.

use crate::Tensor;

/// Score-matrix budget (elements) per assignment block, matching the
/// serving engine's default: at `nlist = 1024` a block covers 4096 rows
/// (32 MiB of scores); small codebooks batch far more.
pub const ASSIGN_BLOCK_ELEMS: usize = 1 << 22;

/// Rows per parallel argmin task unit — a shape constant, never a
/// thread-count function, so chunk geometry is width-independent.
const ARGMIN_CHUNK: usize = 256;

/// Writes the squared L2 norm of every row of `t` into `out` (cleared
/// and resized). Sequential ascending accumulation per row.
pub fn row_sq_norms(t: &Tensor, out: &mut Vec<f64>) {
    out.clear();
    out.resize(t.rows(), 0.0);
    for (i, o) in out.iter_mut().enumerate() {
        let mut s = 0.0;
        for v in t.row(i) {
            s += v * v;
        }
        *o = s;
    }
}

/// Assigns every row of `x` to its nearest centroid (squared Euclidean
/// distance, ties to the lowest centroid id), writing one centroid id per
/// row into `out` (cleared and resized). Blocked `X · Cᵀ` through the
/// pooled gather-GEMM; bit-identical at any thread count (module docs).
///
/// # Panics
/// Panics when the widths disagree, `centroids` is empty, or the
/// centroid count overflows `u32`.
pub fn assign_nearest(x: &Tensor, centroids: &Tensor, out: &mut Vec<u32>) {
    assert_eq!(
        x.cols(),
        centroids.cols(),
        "assign_nearest: width mismatch {} vs {}",
        x.cols(),
        centroids.cols()
    );
    assert!(
        centroids.rows() > 0,
        "assign_nearest: need at least one centroid"
    );
    assert!(
        (centroids.rows() as u64) < u64::from(u32::MAX),
        "assign_nearest: {} centroids overflow u32 ids",
        centroids.rows()
    );
    let n = x.rows();
    let nlist = centroids.rows();
    out.clear();
    out.resize(n, 0);
    if n == 0 {
        return;
    }
    let mut cnorm = crate::pool::take(nlist);
    for (j, c) in cnorm.iter_mut().enumerate() {
        let mut s = 0.0;
        for v in centroids.row(j) {
            s += v * v;
        }
        *c = s;
    }
    let block = (ASSIGN_BLOCK_ELEMS / nlist).max(1);
    let mut idx: Vec<usize> = Vec::with_capacity(block.min(n)); // alloc-ok: one gather-index list per call, reused across blocks
    let mut lo = 0;
    while lo < n {
        let hi = (lo + block).min(n);
        idx.clear();
        idx.extend(lo..hi);
        let xb = x.gather_rows(&idx);
        let scores = xb.matmul_nt(centroids);
        xb.recycle();
        let cn = &cnorm;
        let s = &scores;
        dt_parallel::for_each_chunk(&mut out[lo..hi], ARGMIN_CHUNK, |ci, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                let row = s.row(ci * ARGMIN_CHUNK + off);
                let mut best = 0u32;
                let mut best_d = cn[0] - 2.0 * row[0];
                for (j, (&sc, &c)) in row.iter().zip(cn.iter()).enumerate().skip(1) {
                    let d = c - 2.0 * sc;
                    if d < best_d {
                        best_d = d;
                        best = j as u32;
                    }
                }
                *slot = best;
            }
        });
        scores.recycle();
        lo = hi;
    }
    crate::pool::recycle(cnorm);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed | 1;
        Tensor::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    /// Naive per-row full-distance argmin (includes the ‖x‖² term the
    /// kernel drops — the argmin must agree).
    fn naive_assign(x: &Tensor, c: &Tensor) -> Vec<u32> {
        (0..x.rows())
            .map(|r| {
                let mut best = 0u32;
                let mut best_d = f64::INFINITY;
                for j in 0..c.rows() {
                    let d: f64 = x
                        .row(r)
                        .iter()
                        .zip(c.row(j))
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    if d < best_d {
                        best_d = d;
                        best = j as u32;
                    }
                }
                best
            })
            .collect()
    }

    #[test]
    fn matches_naive_full_distance_argmin() {
        let x = panel(257, 7, 11);
        let c = panel(9, 7, 23);
        let mut got = Vec::new();
        assign_nearest(&x, &c, &mut got);
        assert_eq!(got, naive_assign(&x, &c));
    }

    #[test]
    fn ties_pick_lowest_centroid_id() {
        // Duplicate centroids: every row must land on the first copy.
        let x = panel(40, 3, 5);
        let one = panel(1, 3, 7);
        let c = one.concat_rows(&one).concat_rows(&one);
        let mut got = Vec::new();
        assign_nearest(&x, &c, &mut got);
        assert!(got.iter().all(|&a| a == 0), "{got:?}");
    }

    #[test]
    fn exact_centroid_rows_assign_to_themselves() {
        let c = panel(6, 4, 31);
        let mut got = Vec::new();
        assign_nearest(&c, &c, &mut got);
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn widths_and_blocks_are_bit_identical() {
        let x = panel(1500, 8, 41);
        let c = panel(33, 8, 43);
        let mut base = Vec::new();
        dt_parallel::with_thread_limit(1, || assign_nearest(&x, &c, &mut base));
        for w in [2, 8] {
            let mut wide = Vec::new();
            dt_parallel::with_thread_limit(w, || assign_nearest(&x, &c, &mut wide));
            assert_eq!(base, wide, "width {w}");
        }
    }

    #[test]
    fn empty_input_clears_output() {
        let x = Tensor::zeros(0, 3);
        let c = panel(4, 3, 3);
        let mut got = vec![9u32; 5];
        assign_nearest(&x, &c, &mut got);
        assert!(got.is_empty());
    }

    #[test]
    fn row_sq_norms_match_manual() {
        let t = Tensor::from_rows(&[&[3.0, 4.0], &[0.0, 0.0], &[-1.0, 2.0]]);
        let mut out = Vec::new();
        row_sq_norms(&t, &mut out);
        assert_eq!(out, vec![25.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let mut out = Vec::new();
        assign_nearest(&panel(2, 3, 1), &panel(2, 4, 2), &mut out);
    }
}
