//! Synthetic traffic: Zipf user popularity and Poisson arrivals
//! (DESIGN.md section 16).
//!
//! Real recommendation traffic is head-heavy — a small set of users
//! (and the items they surface) dominates the query stream, which is
//! exactly the MNAR exposure skew the paper's propensity models are
//! built for. The generator replays that shape with a Zipf(s) law over
//! user ids: `P(rank r) ∝ 1 / r^s`. Sampling inverts a precomputed CDF
//! table by binary search, so each draw is O(log N) with zero
//! steady-state allocations.
//!
//! Arrivals are a Poisson process per generator thread: exponential
//! inter-arrival gaps by CDF inversion, `gap = -ln(1 - u) · mean`.
//! Both streams draw from deterministic per-thread [`SplitMix64`]
//! states (seeded `seed ⊕ thread-id`), so a load run's *offered*
//! traffic is reproducible; the measured latencies of course are not.

use dt_serve::kmeans::SplitMix64;

/// A uniform draw in `[0, 1)` from the top 53 bits of one `next_u64`.
#[inline]
fn unit_f64(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Zipf sampler over ranks `0..n` with exponent `s ≥ 0` (`s = 0`
/// degenerates to uniform). Built once per run; `sample` never
/// allocates.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[r]` = P(rank ≤ r); last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Tabulates the CDF of `P(rank r) ∝ 1/(r+1)^exponent` for `n` ranks.
    ///
    /// # Panics
    /// Panics when `n` is zero or `exponent` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf: need at least one rank");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "Zipf: exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding leaving the tail unreachable.
        cdf[n - 1] = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects `n = 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`: the first rank whose CDF covers a
    /// uniform `u` (binary search, no allocation).
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = unit_f64(rng);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

/// One exponential inter-arrival gap in nanoseconds with the given mean
/// (a Poisson process by CDF inversion). Mean 0 means back-to-back.
#[inline]
#[must_use]
pub fn exp_gap_nanos(rng: &mut SplitMix64, mean_nanos: f64) -> u64 {
    let u = unit_f64(rng);
    // u < 1 strictly, so ln(1-u) is finite.
    let gap = -(1.0 - u).ln() * mean_nanos;
    if gap <= 0.0 {
        0
    } else if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let z = Zipf::new(1000, 1.1);
        assert_eq!(z.len(), 1000);
        for w in z.cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(z.cdf[999], 1.0);
    }

    #[test]
    fn samples_are_in_range_and_deterministic() {
        let z = Zipf::new(37, 1.0);
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            assert!(x < 37);
            assert_eq!(x, z.sample(&mut b), "same seed, same stream");
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        // With s = 1.2 over 100 ranks, rank 0 alone should beat the
        // whole tail half; uniform (s = 0) should not.
        let mut rng = SplitMix64(7);
        let z = Zipf::new(100, 1.2);
        let mut head = 0usize;
        let mut tail = 0usize;
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            if r == 0 {
                head += 1;
            } else if r >= 50 {
                tail += 1;
            }
        }
        assert!(head > tail, "head {head} vs tail {tail}");
        let u = Zipf::new(100, 0.0);
        let mut first = 0usize;
        for _ in 0..20_000 {
            if u.sample(&mut rng) == 0 {
                first += 1;
            }
        }
        // Uniform: rank 0 gets ~1% of draws.
        assert!(first < 600, "uniform head too heavy: {first}");
    }

    #[test]
    fn uniform_exponent_covers_all_ranks() {
        let z = Zipf::new(8, 0.0);
        let mut rng = SplitMix64(3);
        let mut seen = [false; 8];
        for _ in 0..2000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exp_gaps_have_the_requested_mean() {
        let mut rng = SplitMix64(11);
        let mean = 50_000.0;
        let n = 50_000u64;
        let total: u128 = (0..n)
            .map(|_| u128::from(exp_gap_nanos(&mut rng, mean)))
            .sum();
        let got = total as f64 / n as f64;
        assert!(
            (got - mean).abs() < mean * 0.05,
            "mean {got} vs requested {mean}"
        );
        assert_eq!(exp_gap_nanos(&mut rng, 0.0), 0);
    }
}
