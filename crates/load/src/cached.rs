//! Cached dispatch: the probe-before-dispatch / insert-after-dispatch
//! wrapper around [`EngineArm::dispatch`] (DESIGN.md section 17).
//!
//! The worker loop probes the result cache once per query; hits are
//! copied straight into the output batch and only the *misses* travel
//! through the engine as a sub-batch, whose stripes are then scattered
//! back and inserted for the next arrival. Because stripes are stored
//! and replayed verbatim — never recomputed, rescaled, or re-sorted —
//! a cached batch is **bitwise identical** to an uncached dispatch of
//! the same users (`cache_oracle.rs` pins this per arm and width).

use std::time::Instant;

use dt_cache::{CacheKey, ClockCache, Fingerprint, ResultCache, SharedCache};
use dt_serve::{SeenLists, TopKBatch, TopKEngine};
use dt_tensor::quant::PanelDtype;

use crate::arm::{ArmScratch, EngineArm};

/// Which result cache (if any) the worker loop wraps around dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No cache: every query dispatches (the PR 9 baseline).
    Off,
    /// One private [`ClockCache`] per worker thread — zero locks, but a
    /// hot user must warm every worker separately.
    PerWorker {
        /// Stripe capacity of each worker's store.
        capacity: usize,
    },
    /// One [`SharedCache`] across all workers — `shards` mutex-guarded
    /// CLOCK shards, so a hot user warms once for everyone.
    Shared {
        /// Total stripe capacity across shards.
        capacity: usize,
        /// Independent shard locks.
        shards: usize,
    },
}

impl CacheMode {
    /// Stable kind label for bench artefacts: `off`, `per-worker`,
    /// `shared`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CacheMode::Off => "off",
            CacheMode::PerWorker { .. } => "per-worker",
            CacheMode::Shared { .. } => "shared",
        }
    }

    /// Configured stripe capacity (0 when off; per worker for
    /// `PerWorker`, total for `Shared`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        match *self {
            CacheMode::Off => 0,
            CacheMode::PerWorker { capacity } | CacheMode::Shared { capacity, .. } => capacity,
        }
    }

    /// `true` when dispatch runs uncached.
    #[must_use]
    pub fn is_off(&self) -> bool {
        matches!(self, CacheMode::Off)
    }
}

impl EngineArm<'_> {
    /// The retrieval-configuration fingerprint for cache keys: folds the
    /// arm kind, K, and every knob that changes what a stripe means
    /// (shard count, IVF geometry, serving dtype) so two arms sharing
    /// one store can never alias each other's results.
    #[must_use]
    pub fn fingerprint(&self, k: usize) -> u64 {
        let base = Fingerprint::new(self.label()).with("k", k as u64);
        match *self {
            EngineArm::Exact { .. } => base,
            // Sharding is bit-identical to exact, but the shard count is
            // still part of the configuration identity: a re-sharded
            // deployment should not inherit stripes it did not produce.
            EngineArm::Sharded { n_shards, .. } => base.with("shards", n_shards as u64),
            EngineArm::Ivf { ivf, nprobe, .. } => base
                .with("nlist", ivf.nlist() as u64)
                .with("nprobe", nprobe as u64),
            EngineArm::Quant { index } => base.with(
                "dtype",
                match index.dtype() {
                    PanelDtype::F64 => 0,
                    PanelDtype::F32 => 1,
                    PanelDtype::ScaledI8 => 2,
                },
            ),
        }
        .finish()
    }

    /// The index epoch this arm's results are valid at: the quantized
    /// arm caches against the index it actually scans, every other arm
    /// against the f64 engine.
    #[must_use]
    pub fn epoch_of(&self, engine: &TopKEngine) -> u64 {
        match *self {
            EngineArm::Quant { index } => index.epoch(),
            _ => engine.epoch(),
        }
    }
}

/// Reusable per-worker scratch for [`dispatch_cached`]: the miss
/// sub-batch buffers reach steady-state capacity on the first full-miss
/// batch, after which cached dispatch allocates nothing
/// (`load_allocs.rs` pins this).
#[derive(Debug, Clone, Default)]
pub struct CacheScratch {
    /// Users whose probe missed, in batch order.
    miss_users: Vec<usize>,
    /// Their positions in the original batch (ascending).
    miss_pos: Vec<usize>,
    /// Dispatch target for the miss sub-batch.
    sub_out: TopKBatch,
}

impl CacheScratch {
    /// Positions (ascending, in the last dispatched batch) whose probe
    /// missed and therefore paid a real dispatch.
    #[must_use]
    pub fn miss_positions(&self) -> &[usize] {
        &self.miss_pos
    }
}

/// Dispatches `users` through `arm` with a result cache in front:
/// probes every query, dispatches only the misses as a sub-batch,
/// scatters their stripes back into `out`, and inserts them for the
/// next arrival. Returns the probe-phase end time — cache hits are
/// complete at that instant, misses at return.
///
/// `out` ends bitwise identical to `arm.dispatch` of the same batch.
///
/// # Panics
/// Panics when the cache was built with a stripe width smaller than
/// `k`, plus everything [`EngineArm::dispatch`] panics on.
#[allow(clippy::too_many_arguments)]
pub fn dispatch_cached<C: ResultCache>(
    cache: &mut C,
    arm: &EngineArm<'_>,
    engine: &TopKEngine,
    users: &[usize],
    k: usize,
    seen: Option<&SeenLists>,
    scratch: &mut ArmScratch,
    cs: &mut CacheScratch,
    out: &mut TopKBatch,
) -> Instant {
    let fingerprint = arm.fingerprint(k);
    let epoch = arm.epoch_of(engine);
    out.reset(users.len(), k);
    cs.miss_users.clear();
    cs.miss_pos.clear();
    for (i, &user) in users.iter().enumerate() {
        let key = CacheKey {
            user: user as u64,
            epoch,
            arm_fingerprint: fingerprint,
        };
        if let Some(n) = cache.probe(&key, out.user_mut(i)) {
            out.set_count(i, n);
        } else {
            cs.miss_users.push(user);
            cs.miss_pos.push(i);
        }
    }
    let t_probe = Instant::now();
    if !cs.miss_users.is_empty() {
        arm.dispatch(engine, &cs.miss_users, k, seen, scratch, &mut cs.sub_out);
        for (j, &pos) in cs.miss_pos.iter().enumerate() {
            let stripe = cs.sub_out.user(j);
            let n = stripe.len();
            out.user_mut(pos)[..n].copy_from_slice(stripe);
            out.set_count(pos, n);
            let key = CacheKey {
                user: cs.miss_users[j] as u64,
                epoch,
                arm_fingerprint: fingerprint,
            };
            cache.insert(&key, stripe);
        }
    }
    t_probe
}

/// The per-worker view of the configured [`CacheMode`]: `Local` owns a
/// private store, `Shared` borrows the experiment-wide one.
#[derive(Debug)]
pub enum WorkerCache<'a> {
    /// Uncached dispatch.
    Off,
    /// This worker's private CLOCK store.
    Local(ClockCache),
    /// The store shared by every worker.
    Shared(&'a SharedCache),
}

impl WorkerCache<'_> {
    /// Builds one worker's cache view for `mode`; `shared` must be
    /// `Some` exactly when the mode is [`CacheMode::Shared`].
    #[must_use]
    pub fn for_mode<'a>(
        mode: CacheMode,
        k: usize,
        shared: Option<&'a SharedCache>,
    ) -> WorkerCache<'a> {
        match mode {
            CacheMode::Off => WorkerCache::Off,
            CacheMode::PerWorker { capacity } => WorkerCache::Local(ClockCache::new(capacity, k)),
            CacheMode::Shared { .. } => WorkerCache::Shared(
                // lint: allow(r3): documented constructor contract — run_load builds the store iff the mode is Shared
                shared.expect("WorkerCache: CacheMode::Shared needs the shared store"),
            ),
        }
    }

    /// Dispatches one batch through this view. Returns the probe-phase
    /// end time when a cache ran, `None` for uncached dispatch.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch(
        &mut self,
        arm: &EngineArm<'_>,
        engine: &TopKEngine,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        scratch: &mut ArmScratch,
        cs: &mut CacheScratch,
        out: &mut TopKBatch,
    ) -> Option<Instant> {
        match self {
            WorkerCache::Off => {
                arm.dispatch(engine, users, k, seen, scratch, out);
                None
            }
            WorkerCache::Local(cache) => Some(dispatch_cached(
                cache, arm, engine, users, k, seen, scratch, cs, out,
            )),
            WorkerCache::Shared(store) => {
                let mut view: &SharedCache = store;
                Some(dispatch_cached(
                    &mut view, arm, engine, users, k, seen, scratch, cs, out,
                ))
            }
        }
    }

    /// Lifetime counters of this worker's *private* store — zero for
    /// `Off` and `Shared` (the shared store is read once, globally, by
    /// the harness to avoid counting it once per worker).
    #[must_use]
    pub fn local_counters(&self) -> dt_metrics::CacheCounters {
        match self {
            WorkerCache::Local(cache) => cache.counters(),
            WorkerCache::Off | WorkerCache::Shared(_) => dt_metrics::CacheCounters::default(),
        }
    }
}
