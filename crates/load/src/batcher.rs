//! Max-batch/max-delay admission batching (DESIGN.md section 16).
//!
//! The serving engines amortise per-query overhead across a user block
//! (one GEMM, one scratch warm-up), so a worker should not dispatch
//! queries one at a time — but it also must not wait unboundedly for a
//! full batch. The classic policy: block for the *first* query, then
//! coalesce whatever arrives within `max_delay` of it, up to
//! `max_batch`. `max_batch = 1` (or `max_delay = 0`) degenerates to
//! latency-optimal single-query dispatch; large values trade queueing
//! delay for throughput. The load sweep in `BENCH_load.json` measures
//! exactly this trade.

use std::time::{Duration, Instant};

use crate::queue::BoundedQueue;

/// One admitted query: the user id and its enqueue timestamp (the
/// queue-wait clock starts at admission, not at generation).
#[derive(Debug, Clone, Copy)]
pub struct Query {
    /// User id to retrieve for.
    pub user: usize,
    /// When the producer enqueued the query.
    pub enqueued: Instant,
}

/// The two knobs of the admission batcher; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many queries have coalesced.
    pub max_batch: usize,
    /// Dispatch at latest this long after the first query arrived.
    pub max_delay: Duration,
}

impl BatchPolicy {
    /// Latency-optimal degenerate policy: every query dispatches alone.
    #[must_use]
    pub fn single() -> Self {
        Self {
            max_batch: 1,
            max_delay: Duration::ZERO,
        }
    }

    /// Short label for bench artefacts, e.g. `b64d1000us`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("b{}d{}us", self.max_batch, self.max_delay.as_micros())
    }
}

/// Reusable batch assembly buffers: one worker owns one `Batcher` and
/// refills it per dispatch, so steady state allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct Batcher {
    /// User ids of the current batch (the engines' `users` argument).
    pub users: Vec<usize>,
    /// Enqueue timestamps, parallel to `users`.
    pub enqueued: Vec<Instant>,
}

impl Batcher {
    /// Assembles the next batch: blocks for the first query, then
    /// coalesces up to `policy.max_batch` queries arriving within
    /// `policy.max_delay`. Returns `false` only when the queue is
    /// closed and drained (worker shutdown); otherwise the batch holds
    /// at least one query.
    ///
    /// # Panics
    /// Panics when `policy.max_batch` is zero.
    pub fn fill(&mut self, queue: &BoundedQueue<Query>, policy: &BatchPolicy) -> bool {
        assert!(
            policy.max_batch > 0,
            "BatchPolicy: max_batch must be positive"
        );
        self.users.clear();
        self.enqueued.clear();
        let Some(first) = queue.pop() else {
            return false;
        };
        self.users.push(first.user);
        self.enqueued.push(first.enqueued);
        if policy.max_batch > 1 && policy.max_delay > Duration::ZERO {
            let deadline = Instant::now() + policy.max_delay;
            while self.users.len() < policy.max_batch {
                let Some(q) = queue.pop_deadline(deadline) else {
                    break;
                };
                self.users.push(q.user);
                self.enqueued.push(q.enqueued);
            }
        } else if policy.max_batch > 1 {
            // Zero delay: take whatever is already queued, never wait.
            while self.users.len() < policy.max_batch {
                let Some(q) = queue.try_pop() else {
                    break;
                };
                self.users.push(q.user);
                self.enqueued.push(q.enqueued);
            }
        }
        true
    }

    /// Queries in the assembled batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the batch is empty (only before the first `fill`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q_at(user: usize) -> Query {
        Query {
            user,
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn fill_takes_queued_items_up_to_max_batch() {
        let queue = BoundedQueue::new(16);
        for u in 0..5 {
            queue.push(q_at(u));
        }
        let mut b = Batcher::default();
        let policy = BatchPolicy {
            max_batch: 3,
            max_delay: Duration::from_millis(50),
        };
        assert!(b.fill(&queue, &policy));
        assert_eq!(b.users, vec![0, 1, 2]);
        assert!(b.fill(&queue, &policy));
        assert_eq!(b.users, vec![3, 4]);
    }

    #[test]
    fn single_policy_dispatches_one_at_a_time() {
        let queue = BoundedQueue::new(16);
        queue.push(q_at(7));
        queue.push(q_at(8));
        let mut b = Batcher::default();
        assert!(b.fill(&queue, &BatchPolicy::single()));
        assert_eq!(b.users, vec![7]);
    }

    #[test]
    fn zero_delay_takes_backlog_without_waiting() {
        let queue = BoundedQueue::new(16);
        for u in 0..4 {
            queue.push(q_at(u));
        }
        let mut b = Batcher::default();
        let policy = BatchPolicy {
            max_batch: 8,
            max_delay: Duration::ZERO,
        };
        let t0 = Instant::now();
        assert!(b.fill(&queue, &policy));
        assert_eq!(b.users, vec![0, 1, 2, 3]);
        assert!(t0.elapsed() < Duration::from_millis(50), "must not wait");
    }

    #[test]
    fn fill_returns_false_on_closed_drained_queue() {
        let queue = BoundedQueue::new(4);
        queue.push(q_at(1));
        queue.close();
        let mut b = Batcher::default();
        assert!(b.fill(&queue, &BatchPolicy::single()));
        assert_eq!(b.users, vec![1]);
        assert!(!b.fill(&queue, &BatchPolicy::single()));
    }

    #[test]
    fn max_delay_bounds_the_wait() {
        let queue = BoundedQueue::new(4);
        queue.push(q_at(1));
        let mut b = Batcher::default();
        let policy = BatchPolicy {
            max_batch: 4,
            max_delay: Duration::from_millis(20),
        };
        let t0 = Instant::now();
        assert!(b.fill(&queue, &policy));
        assert_eq!(b.users, vec![1]);
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(20), "waited {waited:?}");
        assert!(waited < Duration::from_secs(2), "waited {waited:?}");
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(BatchPolicy::single().label(), "b1d0us");
        let p = BatchPolicy {
            max_batch: 64,
            max_delay: Duration::from_micros(1000),
        };
        assert_eq!(p.label(), "b64d1000us");
    }
}
