//! Engine-arm dispatch: one enum over the serving back-ends so the
//! worker loop, the alloc probes, and the bench sweep all route a
//! `TopKBatch`-shaped batch the same way (DESIGN.md section 16).

use dt_serve::{
    IvfIndex, IvfScratch, QuantScratch, QuantizedIndex, ScoringIndex, SeenLists, ShardScratch,
    TopKBatch, TopKEngine,
};

/// Which serving back-end a worker drives. Borrowed, so one index set
/// is shared by every worker thread.
#[derive(Clone, Copy)]
pub enum EngineArm<'a> {
    /// Blocked exact scan over the full catalog.
    Exact {
        /// The f64 scoring index.
        index: &'a ScoringIndex,
    },
    /// Item-sharded exact scan (bit-identical to `Exact`).
    Sharded {
        /// The f64 scoring index.
        index: &'a ScoringIndex,
        /// Contiguous item shards (DESIGN.md section 16).
        n_shards: usize,
    },
    /// IVF candidate generation with exact rerank.
    Ivf {
        /// The f64 scoring index.
        index: &'a ScoringIndex,
        /// The coarse quantizer.
        ivf: &'a IvfIndex,
        /// Cells probed per user.
        nprobe: usize,
    },
    /// Fused scan over a quantized panel (f32 / scaled-i8 / f64).
    Quant {
        /// The dtype-converted serving index.
        index: &'a QuantizedIndex,
    },
}

/// Per-worker reusable scratch for whichever arm dispatches. All four
/// members ride the warm-up batch to steady-state capacity, after which
/// dispatch allocates nothing (`load_allocs.rs` pins this per arm).
#[derive(Debug, Clone, Default)]
pub struct ArmScratch {
    ivf: IvfScratch,
    quant: QuantScratch,
    shard: ShardScratch,
}

impl std::fmt::Debug for EngineArm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineArm")
            .field("arm", &self.label())
            .finish_non_exhaustive()
    }
}

impl EngineArm<'_> {
    /// Stable arm label for bench artefacts and logs.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EngineArm::Exact { .. } => "exact",
            EngineArm::Sharded { .. } => "sharded",
            EngineArm::Ivf { .. } => "ivf",
            EngineArm::Quant { .. } => "quant",
        }
    }

    /// Catalog size of the arm's index (for sizing seen-lists etc.).
    #[must_use]
    pub fn n_users(&self) -> usize {
        match self {
            EngineArm::Exact { index } | EngineArm::Sharded { index, .. } => index.n_users(),
            EngineArm::Ivf { index, .. } => index.n_users(),
            EngineArm::Quant { index } => index.n_users(),
        }
    }

    /// Routes one user batch through the arm's engine path into `out`,
    /// reusing `scratch`. Zero steady-state allocations once warm.
    pub fn dispatch(
        &self,
        engine: &TopKEngine,
        users: &[usize],
        k: usize,
        seen: Option<&SeenLists>,
        scratch: &mut ArmScratch,
        out: &mut TopKBatch,
    ) {
        match *self {
            EngineArm::Exact { index } => engine.recommend_into(index, users, k, seen, out),
            EngineArm::Sharded { index, n_shards } => {
                engine.recommend_sharded_into(
                    index,
                    n_shards,
                    users,
                    k,
                    seen,
                    &mut scratch.shard,
                    out,
                );
            }
            EngineArm::Ivf { index, ivf, nprobe } => {
                engine.recommend_ivf_into(
                    index,
                    ivf,
                    nprobe,
                    users,
                    k,
                    seen,
                    &mut scratch.ivf,
                    out,
                );
            }
            EngineArm::Quant { index } => {
                engine.recommend_quantized_into(
                    index,
                    users,
                    k,
                    seen,
                    None,
                    &mut scratch.quant,
                    out,
                );
            }
        }
    }
}
