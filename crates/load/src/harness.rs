//! The load-replay harness: generators → bounded queue → batching
//! workers → engine arms, with steady-state telemetry (DESIGN.md
//! section 16).
//!
//! One [`run_load`] call is one closed experiment: `n_generators`
//! threads offer Poisson traffic with Zipf-popular users at a
//! configured aggregate rate, `n_workers` threads coalesce and dispatch
//! batches through one [`EngineArm`], and every query's queue-wait and
//! service latency lands in per-worker [`LatencyHistogram`]s that merge
//! into the report. The first `warmup` of traffic is excluded from
//! every statistic (scratch buffers and the pool reach steady state
//! during it); the measurement window is the `duration` after that.
//!
//! Threading is plain `std::thread::scope`. Workers wrap each dispatch
//! in [`dt_parallel::with_thread_limit`], so the *intra-query* width
//! sweeps independently of the worker count — on a many-core host the
//! interesting frontier is (workers × width), on the CI box it
//! documents the single-core queueing behaviour.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use dt_cache::SharedCache;
use dt_metrics::{CacheCounters, LatencyHistogram};
use dt_serve::kmeans::SplitMix64;
use dt_serve::{SeenLists, TopKBatch, TopKEngine};

use crate::arm::{ArmScratch, EngineArm};
use crate::batcher::{BatchPolicy, Batcher, Query};
use crate::cached::{CacheMode, CacheScratch, WorkerCache};
use crate::queue::BoundedQueue;
use crate::zipf::{exp_gap_nanos, Zipf};

/// What a generator does when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Block the producer (backpressure: overload becomes queueing).
    Block,
    /// Drop the query and count it (load shedding: overload becomes
    /// a shed rate, the queue stays shallow).
    Shed,
}

impl AdmissionPolicy {
    /// Stable label for bench artefacts.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Block => "block",
            AdmissionPolicy::Shed => "shed",
        }
    }
}

/// Full parameterisation of one load experiment.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Traffic generator threads.
    pub n_generators: usize,
    /// Serving worker threads.
    pub n_workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Full-queue behaviour.
    pub admission: AdmissionPolicy,
    /// Batch coalescing policy.
    pub policy: BatchPolicy,
    /// Zipf exponent of the user popularity law (0 = uniform).
    pub zipf_exponent: f64,
    /// Aggregate offered load across all generators, queries/second.
    pub offered_qps: f64,
    /// Warm-up traffic excluded from every statistic.
    pub warmup: Duration,
    /// Measurement window after warm-up.
    pub duration: Duration,
    /// Top-K per query.
    pub k: usize,
    /// Intra-query parallelism (`with_thread_limit`) per dispatch.
    pub intra_width: usize,
    /// Seed of the per-thread traffic streams.
    pub seed: u64,
    /// Result cache in front of dispatch ([`CacheMode::Off`] replays
    /// the PR 9 uncached pipeline exactly).
    pub cache: CacheMode,
}

/// Merged telemetry of one [`run_load`] experiment. All statistics
/// cover only queries enqueued after the warm-up cutoff.
#[derive(Debug)]
pub struct LoadReport {
    /// Admission attempts (accepted + shed), whole run.
    pub submitted: u64,
    /// Queries shed at admission, whole run.
    pub shed: u64,
    /// Queries dispatched, whole run (includes warm-up).
    pub completed: u64,
    /// Queries dispatched that were enqueued inside the window.
    pub measured: u64,
    /// Batches whose dispatch started inside the window.
    pub batches: u64,
    /// Queries in those batches.
    pub batched_queries: u64,
    /// Admission-to-dispatch-start latency, measured queries.
    pub queue_wait: LatencyHistogram,
    /// Dispatch-start-to-done latency, measured queries.
    pub service: LatencyHistogram,
    /// Admission-to-done latency, measured queries.
    pub total: LatencyHistogram,
    /// Result-cache lifetime counters, whole run (zero when the cache
    /// is off). Per-worker stores merge; the shared store reports once.
    pub cache: CacheCounters,
    /// The measurement window (config `duration`).
    pub window: Duration,
}

impl LoadReport {
    /// Steady-state throughput: measured completions per window second.
    #[must_use]
    pub fn qps(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.measured as f64 / secs
    }

    /// Fraction of admission attempts shed, whole run.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.shed as f64 / self.submitted as f64
    }

    /// Mean queries per dispatched batch inside the window.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_queries as f64 / self.batches as f64
    }

    /// Result-cache hit rate over the whole run (0 when the cache is
    /// off or never probed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Per-worker accumulator returned through the scope join.
struct WorkerStats {
    completed: u64,
    measured: u64,
    batches: u64,
    batched_queries: u64,
    queue_wait: LatencyHistogram,
    service: LatencyHistogram,
    total: LatencyHistogram,
    cache: CacheCounters,
}

impl WorkerStats {
    fn new() -> Self {
        Self {
            completed: 0,
            measured: 0,
            batches: 0,
            batched_queries: 0,
            queue_wait: LatencyHistogram::new(),
            service: LatencyHistogram::new(),
            total: LatencyHistogram::new(),
            cache: CacheCounters::default(),
        }
    }
}

/// Records one dispatched batch into a worker's histograms, splitting
/// wait from service at the dispatch-start instant `t0` per query.
///
/// Every query's **wait** runs from its admission timestamp (taken by
/// the generator *before* the queue push, so admission contention is
/// charged to wait, not lost) to `t0`. **Service** depends on how the
/// query completed: positions in `miss_pos` (ascending) travelled
/// through the engine and finish at `t1`; every other position was
/// served from the result cache and finished when the probe phase ended
/// at `t_probe` — charging hits the full engine latency of the misses
/// they shared a batch with would hide exactly the speed-up the cache
/// exists to provide. `miss_pos: None` means uncached dispatch (every
/// query finishes at `t1`, `t_probe` is ignored).
fn record_batch(
    st: &mut WorkerStats,
    enqueued: &[Instant],
    miss_pos: Option<&[usize]>,
    cutoff: Instant,
    t0: Instant,
    t_probe: Instant,
    t1: Instant,
) {
    let mut miss_at = 0usize;
    for (i, &enq) in enqueued.iter().enumerate() {
        let missed = match miss_pos {
            None => true,
            Some(pos) => {
                let m = miss_at < pos.len() && pos[miss_at] == i;
                if m {
                    miss_at += 1;
                }
                m
            }
        };
        if enq < cutoff {
            continue; // warm-up traffic
        }
        let done = if missed { t1 } else { t_probe };
        st.measured += 1;
        st.queue_wait
            .record_duration(t0.saturating_duration_since(enq));
        st.service
            .record_duration(done.saturating_duration_since(t0));
        st.total
            .record_duration(done.saturating_duration_since(enq));
    }
}

/// Runs one load experiment against `arm` and returns the merged
/// report. Deterministic in its *offered* traffic (per-thread seeded
/// streams); latencies are whatever the host delivers.
///
/// # Panics
/// Panics on a zero generator/worker count, non-positive offered load,
/// zero `k`, or if a worker or generator thread panics.
#[must_use]
pub fn run_load(
    cfg: &LoadConfig,
    engine: &TopKEngine,
    arm: &EngineArm<'_>,
    seen: Option<&SeenLists>,
) -> LoadReport {
    assert!(
        cfg.n_generators > 0,
        "run_load: need at least one generator"
    );
    assert!(cfg.n_workers > 0, "run_load: need at least one worker");
    assert!(
        cfg.offered_qps > 0.0 && cfg.offered_qps.is_finite(),
        "run_load: offered_qps must be positive"
    );
    assert!(cfg.k > 0, "run_load: k must be positive");
    assert!(
        cfg.intra_width > 0,
        "run_load: intra_width must be positive"
    );

    let zipf = Zipf::new(arm.n_users(), cfg.zipf_exponent);
    // The shared store (if any) outlives the worker scope; each worker
    // borrows it through its `WorkerCache` view.
    let shared: Option<SharedCache> = match cfg.cache {
        CacheMode::Shared { capacity, shards } => Some(SharedCache::new(capacity, cfg.k, shards)),
        CacheMode::Off | CacheMode::PerWorker { .. } => None,
    };
    let queue: BoundedQueue<Query> = BoundedQueue::new(cfg.queue_capacity);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let cutoff = start + cfg.warmup;
    let end = cutoff + cfg.duration;
    // Each generator paces to 1/n of the aggregate offered rate.
    let mean_gap_nanos = cfg.n_generators as f64 * 1e9 / cfg.offered_qps;

    let mut worker_stats: Vec<WorkerStats> = Vec::with_capacity(cfg.n_workers);
    std::thread::scope(|s| {
        for g in 0..cfg.n_generators {
            let queue = &queue;
            let stop = &stop;
            let zipf = &zipf;
            s.spawn(move || {
                // Distinct deterministic stream per generator thread.
                let mut rng = SplitMix64(cfg.seed ^ ((g as u64 + 1) << 32));
                while !stop.load(Ordering::Relaxed) {
                    let gap = exp_gap_nanos(&mut rng, mean_gap_nanos);
                    if gap > 0 {
                        std::thread::sleep(Duration::from_nanos(gap));
                    }
                    let q = Query {
                        user: zipf.sample(&mut rng),
                        enqueued: Instant::now(),
                    };
                    let accepted = match cfg.admission {
                        AdmissionPolicy::Block => queue.push(q),
                        AdmissionPolicy::Shed => queue.try_push(q),
                    };
                    if !accepted && queue.is_closed() {
                        break;
                    }
                }
            });
        }

        let mut workers = Vec::with_capacity(cfg.n_workers);
        for _ in 0..cfg.n_workers {
            let queue = &queue;
            let shared = shared.as_ref();
            workers.push(s.spawn(move || {
                let mut batcher = Batcher::default();
                let mut scratch = ArmScratch::default();
                let mut cache_scratch = CacheScratch::default();
                let mut cache = WorkerCache::for_mode(cfg.cache, cfg.k, shared);
                let mut out = TopKBatch::new();
                let mut st = WorkerStats::new();
                while batcher.fill(queue, &cfg.policy) {
                    let t0 = Instant::now();
                    let t_probe = dt_parallel::with_thread_limit(cfg.intra_width, || {
                        cache.dispatch(
                            arm,
                            engine,
                            &batcher.users,
                            cfg.k,
                            seen,
                            &mut scratch,
                            &mut cache_scratch,
                            &mut out,
                        )
                    });
                    let t1 = Instant::now();
                    st.completed += batcher.len() as u64;
                    if t0 >= cutoff {
                        st.batches += 1;
                        st.batched_queries += batcher.len() as u64;
                    }
                    // Uncached dispatch reports no probe instant and no
                    // miss set: every query finishes at t1.
                    let miss_pos = t_probe.map(|_| cache_scratch.miss_positions());
                    record_batch(
                        &mut st,
                        &batcher.enqueued,
                        miss_pos,
                        cutoff,
                        t0,
                        t_probe.unwrap_or(t1),
                        t1,
                    );
                }
                st.cache = cache.local_counters();
                st
            }));
        }

        // Pace the experiment: warm-up + window, then stop traffic and
        // let the workers drain the queue.
        let now = Instant::now();
        if end > now {
            std::thread::sleep(end - now);
        }
        stop.store(true, Ordering::Relaxed);
        queue.close();
        for h in workers {
            match h.join() {
                Ok(st) => worker_stats.push(st),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });

    let qs = queue.stats();
    let mut report = LoadReport {
        submitted: qs.pushed + qs.shed,
        shed: qs.shed,
        completed: 0,
        measured: 0,
        batches: 0,
        batched_queries: 0,
        queue_wait: LatencyHistogram::new(),
        service: LatencyHistogram::new(),
        total: LatencyHistogram::new(),
        cache: CacheCounters::default(),
        window: cfg.duration,
    };
    for st in &worker_stats {
        report.completed += st.completed;
        report.measured += st.measured;
        report.batches += st.batches;
        report.batched_queries += st.batched_queries;
        report.queue_wait.merge(&st.queue_wait);
        report.service.merge(&st.service);
        report.total.merge(&st.total);
        // Per-worker stores merge here; the shared store's counters are
        // global, so they are read once below instead.
        report.cache.merge(&st.cache);
    }
    if let Some(shared) = &shared {
        report.cache.merge(&shared.counters());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    /// Fabricates the instants of one batch: two warm queries enqueued
    /// after the cutoff, one warm-up query before it.
    fn batch_times() -> (Vec<Instant>, Instant, Instant, Instant, Instant) {
        let base = Instant::now();
        let cutoff = base + 5 * MS;
        let enqueued = vec![base + 10 * MS, base + 12 * MS, base]; // last = warm-up
        let t0 = base + 20 * MS;
        let t_probe = base + 21 * MS;
        let t1 = base + 30 * MS;
        (enqueued, cutoff, t0, t_probe, t1)
    }

    #[test]
    fn record_batch_uncached_charges_full_service_to_all() {
        let (enqueued, cutoff, t0, t_probe, t1) = batch_times();
        let mut st = WorkerStats::new();
        record_batch(&mut st, &enqueued, None, cutoff, t0, t_probe, t1);
        assert_eq!(st.measured, 2, "warm-up query must be excluded");
        assert_eq!(st.service.count(), 2);
        assert_eq!(st.service.max(), 10_000_000); // t1 - t0 = 10ms, both
        assert_eq!(st.queue_wait.max(), 10_000_000); // t0 - enq[0]
        assert_eq!(st.total.max(), 20_000_000); // t1 - enq[0]
    }

    #[test]
    fn record_batch_splits_hit_and_miss_service_at_probe_instant() {
        let (enqueued, cutoff, t0, t_probe, t1) = batch_times();
        let mut st = WorkerStats::new();
        // Query 1 missed (dispatched), queries 0 and 2 hit the cache.
        record_batch(&mut st, &enqueued, Some(&[1]), cutoff, t0, t_probe, t1);
        assert_eq!(st.measured, 2);
        // Hit (query 0): service = t_probe - t0 = 1ms. Miss (query 1):
        // service = t1 - t0 = 10ms. Mean and max are exact, so together
        // they pin both samples.
        assert_eq!(st.service.max(), 10_000_000);
        assert!((st.service.mean() - 5_500_000.0).abs() < 1.0);
        // Wait is charged from the pre-push admission timestamp for
        // hits and misses alike: 10ms (query 0) and 8ms (query 1).
        assert_eq!(st.queue_wait.max(), 10_000_000);
        assert!((st.queue_wait.mean() - 9_000_000.0).abs() < 1.0);
        // Totals: hit 21-10=11ms, miss 30-12=18ms.
        assert_eq!(st.total.max(), 18_000_000);
        assert!((st.total.mean() - 14_500_000.0).abs() < 1.0);
    }

    #[test]
    fn record_batch_all_hits_never_touches_t1() {
        let (enqueued, cutoff, t0, t_probe, _) = batch_times();
        let far = t0 + Duration::from_secs(60); // poison: must not be used
        let mut st = WorkerStats::new();
        record_batch(&mut st, &enqueued, Some(&[]), cutoff, t0, t_probe, far);
        assert_eq!(st.measured, 2);
        assert_eq!(st.service.max(), 1_000_000);
    }
}
