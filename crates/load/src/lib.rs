//! # dt-load
//!
//! In-process load-replay harness for the serving stack — the layer
//! that turns "fast per batch" (`BENCH_serve`/`ann`/`quant`) into
//! "fast under load" (`BENCH_load.json`): steady-state queries/sec,
//! p50/p99 latency, shed rate and batch-size behaviour of the
//! `dt-serve` engines under sustained concurrent traffic (DESIGN.md
//! section 16; ROADMAP north star — heavy traffic from millions of
//! users against the paper's DT-propensity models).
//!
//! The pipeline, all std threading:
//!
//! 1. [`Zipf`] traffic — generator threads draw users from a Zipf
//!    popularity law and offer them as a Poisson process, deterministic
//!    per-thread streams ([`zipf`]).
//! 2. [`BoundedQueue`] — bounded MPMC admission with exact accounting;
//!    overload becomes backpressure ([`AdmissionPolicy::Block`]) or a
//!    shed rate ([`AdmissionPolicy::Shed`]) ([`queue`]).
//! 3. [`Batcher`] — max-batch/max-delay coalescing into
//!    `TopKBatch`-shaped batches ([`batcher`]).
//! 4. [`EngineArm`] workers — per-worker reusable scratch dispatching
//!    through the exact, sharded, IVF or quantized engine, zero
//!    steady-state allocations ([`arm`]).
//! 5. Optional result cache ([`cached`]) — an epoch-keyed `dt-cache`
//!    store probed before dispatch ([`CacheMode`]); only misses travel
//!    through the engine, and cached stripes are bitwise identical to
//!    fresh dispatch.
//!
//! [`run_load`] composes these into one experiment and merges
//! per-worker [`dt_metrics::LatencyHistogram`]s into a [`LoadReport`].

#![forbid(unsafe_code)]

pub mod arm;
pub mod batcher;
pub mod cached;
pub mod harness;
pub mod queue;
pub mod zipf;

pub use arm::{ArmScratch, EngineArm};
pub use batcher::{BatchPolicy, Batcher, Query};
pub use cached::{dispatch_cached, CacheMode, CacheScratch, WorkerCache};
pub use harness::{run_load, AdmissionPolicy, LoadConfig, LoadReport};
pub use queue::{BoundedQueue, QueueStats};
pub use zipf::{exp_gap_nanos, Zipf};
