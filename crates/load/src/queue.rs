//! Bounded MPMC admission queue on std `Mutex` + `Condvar`
//! (DESIGN.md section 16).
//!
//! The queue is the single synchronisation point between traffic
//! generators and serving workers, so its policy *is* the admission
//! policy: [`BoundedQueue::push`] blocks the producer when full
//! (backpressure — offered load above capacity turns into queueing
//! delay at the generator), while [`BoundedQueue::try_push`] sheds the
//! query instead (load shedding — the queue stays shallow and the shed
//! count is the overload signal). Both are exact-once accounted:
//! `pushed + shed` equals the number of admission attempts, and every
//! pushed item is popped exactly once before [`BoundedQueue::pop`]
//! reports drained-and-closed.
//!
//! A single `VecDeque` under one mutex gives global FIFO, which implies
//! per-producer FIFO — the property the proptests pin. Poisoning is
//! ignored deliberately (`PoisonError::into_inner`): a panicked worker
//! already propagates through the harness scope, and the queue's state
//! (counters + deque) is valid at every instruction boundary.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Counter snapshot for exact admission accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Items accepted into the queue (blocked pushes count once).
    pub pushed: u64,
    /// Items rejected by [`BoundedQueue::try_push`] on a full queue.
    pub shed: u64,
    /// Items handed to consumers.
    pub popped: u64,
    /// Current depth.
    pub depth: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    pushed: u64,
    shed: u64,
    popped: u64,
}

/// Bounded multi-producer multi-consumer FIFO queue; see module docs
/// for the block-vs-shed admission semantics.
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` queued items.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BoundedQueue: capacity must be positive");
        Self {
            capacity,
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                pushed: 0,
                shed: 0,
                popped: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block-policy admission: waits while the queue is full, enqueues,
    /// returns `true`. Returns `false` (dropping `item`) only when the
    /// queue is closed.
    pub fn push(&self, item: T) -> bool {
        let mut g = self.lock();
        while g.items.len() >= self.capacity && !g.closed {
            g = self
                .not_full
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if g.closed {
            return false;
        }
        g.items.push_back(item);
        g.pushed += 1;
        drop(g);
        self.not_empty.notify_one();
        true
    }

    /// Shed-policy admission: enqueues if there is room and returns
    /// `true`; otherwise drops `item`, counts the shed, and returns
    /// `false` without blocking. A closed queue sheds too.
    pub fn try_push(&self, item: T) -> bool {
        let mut g = self.lock();
        if g.closed || g.items.len() >= self.capacity {
            g.shed += 1;
            return false;
        }
        g.items.push_back(item);
        g.pushed += 1;
        drop(g);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the oldest item, waiting while the queue is empty and
    /// open. Returns `None` only when the queue is closed *and*
    /// drained — every accepted item is still delivered after `close`.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                g.popped += 1;
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`BoundedQueue::pop`] but gives up at `deadline` (the
    /// batcher's max-delay bound): returns `None` on timeout or on
    /// closed-and-drained, whichever comes first.
    pub fn pop_deadline(&self, deadline: Instant) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                g.popped += 1;
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, res) = self
                .not_empty
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
            if res.timed_out() && g.items.is_empty() {
                return None;
            }
        }
    }

    /// Non-blocking pop (drain helper for tests).
    pub fn try_pop(&self) -> Option<T> {
        let mut g = self.lock();
        let item = g.items.pop_front();
        if item.is_some() {
            g.popped += 1;
            drop(g);
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: future pushes fail, blocked producers and
    /// consumers wake, queued items remain poppable until drained.
    pub fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Counter snapshot (consistent: taken under the one lock).
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let g = self.lock();
        QueueStats {
            pushed: g.pushed,
            shed: g.shed,
            popped: g.popped,
            depth: g.items.len(),
        }
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("stats", &s)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_and_exact_accounting_single_thread() {
        let q = BoundedQueue::new(4);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(q.try_push(3));
        assert_eq!(q.stats().pushed, 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        let s = q.stats();
        assert_eq!((s.pushed, s.shed, s.popped, s.depth), (3, 0, 3, 0));
    }

    #[test]
    fn try_push_sheds_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1));
        assert!(q.try_push(2));
        assert!(!q.try_push(3));
        assert!(!q.try_push(4));
        let s = q.stats();
        assert_eq!((s.pushed, s.shed), (2, 2));
        // Draining one makes room for exactly one.
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(5));
        assert!(!q.try_push(6));
        assert_eq!(q.stats().shed, 3);
    }

    #[test]
    fn close_drains_then_reports_none() {
        let q = BoundedQueue::new(8);
        q.push(7);
        q.push(9);
        q.close();
        assert!(!q.push(11), "closed queue must refuse pushes");
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), None);
        assert_eq!(q.stats().popped, 2);
    }

    #[test]
    fn pop_deadline_times_out_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        let t0 = Instant::now();
        assert_eq!(q.pop_deadline(t0 + Duration::from_millis(20)), None);
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn blocked_producer_resumes_without_loss() {
        // One slot; a consumer thread drains slowly; the blocking
        // producer must deliver every item exactly once, in order.
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        let qc = q.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = qc.pop() {
                got.push(v);
                std::thread::sleep(Duration::from_millis(1));
            }
            got
        });
        for v in 0..50u32 {
            assert!(q.push(v));
        }
        q.close();
        let got = consumer.join().expect("consumer thread");
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        let s = q.stats();
        assert_eq!((s.pushed, s.shed, s.popped), (50, 0, 50));
    }

    #[test]
    fn mpmc_delivers_every_item_once() {
        let q = std::sync::Arc::new(BoundedQueue::new(4));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let qc = q.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = qc.pop() {
                    got.push(v);
                }
                got
            }));
        }
        let mut producers = Vec::new();
        for p in 0..2u32 {
            let qp = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    assert!(qp.push(p * 1000 + i));
                }
            }));
        }
        for h in producers {
            h.join().expect("producer thread");
        }
        q.close();
        let mut all: Vec<u32> = Vec::new();
        for h in consumers {
            all.extend(h.join().expect("consumer thread"));
        }
        all.sort_unstable();
        let mut want: Vec<u32> = (0..100).chain(1000..1100).collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }
}
