//! End-to-end harness smoke (std-only; the offline verification shim
//! runs this file verbatim): a short replay against real engine arms
//! must complete, account exactly, and report internally consistent
//! telemetry. Latency *values* are host-dependent and never asserted.

use std::time::Duration;

use dt_load::{run_load, AdmissionPolicy, BatchPolicy, CacheMode, EngineArm, LoadConfig};
use dt_serve::{ScoringIndex, SeenLists, TopKEngine};
use dt_tensor::Tensor;

fn build_index(n_users: usize, n_items: usize, dim: usize) -> ScoringIndex {
    let mut state = 0xDEAD_BEEFu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let p = Tensor::from_fn(n_users, dim, |_, _| next());
    let q = Tensor::from_fn(n_items, dim, |_, _| next());
    ScoringIndex::new(p, q, vec![0.02; n_users], vec![-0.03; n_items], 0.1)
}

fn base_config() -> LoadConfig {
    LoadConfig {
        n_generators: 2,
        n_workers: 2,
        queue_capacity: 64,
        admission: AdmissionPolicy::Block,
        policy: BatchPolicy {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
        },
        zipf_exponent: 1.1,
        offered_qps: 2_000.0,
        warmup: Duration::from_millis(60),
        duration: Duration::from_millis(250),
        k: 10,
        intra_width: 1,
        seed: 42,
        cache: CacheMode::Off,
    }
}

#[test]
fn block_policy_run_accounts_exactly() {
    let index = build_index(128, 2048, 8);
    let seen = SeenLists::from_pairs(128, (0..128u32).map(|u| (u, u % 13)));
    let engine = TopKEngine::new();
    let arm = EngineArm::Exact { index: &index };
    let report = run_load(&base_config(), &engine, &arm, Some(&seen));

    assert!(report.completed > 0, "no queries served: {report:?}");
    assert!(
        report.measured > 0,
        "warm-up swallowed the window: {report:?}"
    );
    assert_eq!(report.shed, 0, "block policy must never shed");
    // Every admitted query is served before run_load returns.
    assert_eq!(report.submitted, report.completed, "{report:?}");
    assert!(report.measured <= report.completed);
    assert_eq!(report.queue_wait.count(), report.measured);
    assert_eq!(report.service.count(), report.measured);
    assert_eq!(report.total.count(), report.measured);
    assert!(report.qps() > 0.0);
    assert!(report.mean_batch() >= 1.0);
    // Total latency dominates service latency pointwise, so every
    // quantile dominates too.
    for q in [0.5, 0.9, 0.99] {
        assert!(
            report.total.quantile(q) >= report.service.quantile(q),
            "q={q}: {report:?}"
        );
    }
}

#[test]
fn sharded_arm_serves_under_load() {
    let index = build_index(96, 4096, 8);
    let engine = TopKEngine::new();
    let arm = EngineArm::Sharded {
        index: &index,
        n_shards: 4,
    };
    let mut cfg = base_config();
    cfg.policy = BatchPolicy::single();
    cfg.duration = Duration::from_millis(150);
    let report = run_load(&cfg, &engine, &arm, None);
    assert!(report.completed > 0);
    assert_eq!(report.submitted, report.completed);
    // Single-query policy: every dispatched batch holds exactly one.
    assert_eq!(report.batched_queries, report.batches);
}

#[test]
fn uncached_run_reports_zero_cache_counters() {
    let index = build_index(64, 1024, 8);
    let engine = TopKEngine::new();
    let arm = EngineArm::Exact { index: &index };
    let mut cfg = base_config();
    cfg.duration = Duration::from_millis(100);
    let report = run_load(&cfg, &engine, &arm, None);
    assert_eq!(report.cache.probes(), 0, "{report:?}");
    assert_eq!(report.hit_rate(), 0.0);
}

#[test]
fn cached_runs_account_exactly_and_hit_under_zipf() {
    // Zipf(1.1) head traffic over 128 users with capacity for all of
    // them: once warm, most probes must hit, and the accounting
    // invariants of the uncached pipeline must all still hold.
    let index = build_index(128, 2048, 8);
    let seen = SeenLists::from_pairs(128, (0..128u32).map(|u| (u, u % 13)));
    let engine = TopKEngine::new();
    let arm = EngineArm::Exact { index: &index };
    for cache in [
        CacheMode::PerWorker { capacity: 256 },
        CacheMode::Shared {
            capacity: 256,
            shards: 4,
        },
    ] {
        let mut cfg = base_config();
        cfg.cache = cache;
        let report = run_load(&cfg, &engine, &arm, Some(&seen));
        assert!(report.completed > 0, "{cache:?}: no queries served");
        assert_eq!(report.shed, 0, "{cache:?}: block policy must never shed");
        assert_eq!(report.submitted, report.completed, "{cache:?}");
        assert_eq!(report.queue_wait.count(), report.measured);
        assert_eq!(report.service.count(), report.measured);
        assert_eq!(report.total.count(), report.measured);
        // Every dispatched query was probed exactly once, whole run.
        assert_eq!(report.cache.probes(), report.completed, "{cache:?}");
        assert_eq!(
            report.cache.hits + report.cache.misses,
            report.completed,
            "{cache:?}"
        );
        assert!(
            report.hit_rate() > 0.3,
            "{cache:?}: hit rate {} too low for Zipf head traffic ({report:?})",
            report.hit_rate()
        );
    }
}

#[test]
fn shed_policy_sheds_under_overload_and_accounts_exactly() {
    // One worker, a catalog big enough that service time far exceeds
    // the inter-arrival gap, and a shallow queue: shedding must engage.
    let index = build_index(64, 32_768, 32);
    let engine = TopKEngine::new();
    let arm = EngineArm::Exact { index: &index };
    let mut cfg = base_config();
    cfg.n_workers = 1;
    cfg.queue_capacity = 8;
    cfg.admission = AdmissionPolicy::Shed;
    cfg.offered_qps = 20_000.0;
    cfg.k = 50;
    cfg.warmup = Duration::from_millis(40);
    cfg.duration = Duration::from_millis(200);
    let report = run_load(&cfg, &engine, &arm, None);
    assert!(report.shed > 0, "overload must shed: {report:?}");
    assert!(report.shed_rate() > 0.0 && report.shed_rate() < 1.0);
    // Shed + served == offered, exactly.
    assert_eq!(
        report.submitted,
        report.completed + report.shed,
        "{report:?}"
    );
}
