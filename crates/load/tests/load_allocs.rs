//! Steady-state allocation discipline of the serving worker loop: after
//! one warm-up dispatch per arm, repeated batches through reused
//! `ArmScratch`/`TopKBatch` buffers must take every pooled buffer from
//! the free lists — zero fresh allocations per batch, for every engine
//! arm the load harness can drive.
//!
//! Lives in its own integration-test binary because the pool counters
//! are process-global; the tests serialize on a mutex so their stat
//! deltas never interleave.

use std::sync::Mutex;
use std::time::Instant;

use dt_cache::{ClockCache, ResultCache, SharedCache};
use dt_load::{
    dispatch_cached, ArmScratch, BatchPolicy, Batcher, BoundedQueue, CacheScratch, EngineArm, Query,
};
use dt_serve::{IvfIndex, IvfParams, PanelDtype, ScoringIndex, SeenLists, TopKBatch, TopKEngine};
use dt_tensor::{pool, Tensor};

/// Serializes the pool-stat probes across tests in this binary.
static STATS_LOCK: Mutex<()> = Mutex::new(());

fn build_index(n_users: usize, n_items: usize, dim: usize) -> ScoringIndex {
    let mut state = 0x9E37_79B9u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let p = Tensor::from_fn(n_users, dim, |_, _| next());
    let q = Tensor::from_fn(n_items, dim, |_, _| next());
    ScoringIndex::new(p, q, vec![0.01; n_users], vec![-0.01; n_items], 0.5)
}

#[test]
fn steady_state_dispatch_allocates_nothing_for_every_arm() {
    let guard = STATS_LOCK.lock().unwrap();
    let (n_users, n_items) = (64, 4096);
    let index = build_index(n_users, n_items, 16);
    let seen = SeenLists::from_pairs(n_users, (0..n_users as u32).map(|u| (u, u * 3)));
    let users: Vec<usize> = (0..48).map(|j| (j * 5) % n_users).collect();
    let ivf = IvfIndex::build(
        &index,
        &IvfParams {
            nlist: 32,
            iters: 4,
            seed: 3,
            train_cap: 0,
        },
    );
    let qidx = index.quantize(PanelDtype::ScaledI8);
    let engine = TopKEngine::new();
    let arms = [
        EngineArm::Exact { index: &index },
        EngineArm::Sharded {
            index: &index,
            n_shards: 8,
        },
        EngineArm::Ivf {
            index: &index,
            ivf: &ivf,
            nprobe: 4,
        },
        EngineArm::Quant { index: &qidx },
    ];
    for arm in arms {
        let mut scratch = ArmScratch::default();
        let mut out = TopKBatch::new();
        // Warm-up grows every scratch member and the batch to
        // steady-state capacity and populates the pool free lists.
        arm.dispatch(&engine, &users, 10, Some(&seen), &mut scratch, &mut out);

        let before = pool::stats();
        for _ in 0..5 {
            arm.dispatch(&engine, &users, 10, Some(&seen), &mut scratch, &mut out);
        }
        let after = pool::stats();
        assert_eq!(
            after.fresh_allocs - before.fresh_allocs,
            0,
            "steady-state {} dispatch must not allocate (stats {after:?} vs {before:?})",
            arm.label()
        );
    }
    drop(guard);
}

#[test]
fn steady_state_worker_loop_with_batcher_allocates_nothing() {
    // The literal worker loop: queue → Batcher::fill → dispatch, with
    // the batch-assembly buffers reused across iterations.
    let guard = STATS_LOCK.lock().unwrap();
    let (n_users, n_items) = (64, 2048);
    let index = build_index(n_users, n_items, 16);
    let engine = TopKEngine::new();
    let arm = EngineArm::Sharded {
        index: &index,
        n_shards: 4,
    };
    let policy = BatchPolicy {
        max_batch: 16,
        max_delay: std::time::Duration::ZERO,
    };
    let queue = BoundedQueue::new(64);
    let mut batcher = Batcher::default();
    let mut scratch = ArmScratch::default();
    let mut out = TopKBatch::new();

    let refill = |queue: &BoundedQueue<Query>| {
        for u in 0..32usize {
            assert!(queue.push(Query {
                user: (u * 7) % n_users,
                enqueued: Instant::now(),
            }));
        }
    };
    // Warm-up pass.
    refill(&queue);
    while batcher.fill(&queue, &policy) {
        arm.dispatch(&engine, &batcher.users, 10, None, &mut scratch, &mut out);
        if queue.stats().depth == 0 {
            break;
        }
    }

    let before = pool::stats();
    for _ in 0..3 {
        refill(&queue);
        while batcher.fill(&queue, &policy) {
            arm.dispatch(&engine, &batcher.users, 10, None, &mut scratch, &mut out);
            if queue.stats().depth == 0 {
                break;
            }
        }
    }
    let after = pool::stats();
    assert_eq!(
        after.fresh_allocs - before.fresh_allocs,
        0,
        "steady-state worker loop must not allocate (stats {after:?} vs {before:?})"
    );
    drop(guard);
}

#[test]
fn steady_state_cached_dispatch_allocates_nothing() {
    // The cached worker loop: probe → miss sub-batch dispatch → scatter
    // + insert. The cache slabs are sized at construction and the miss
    // buffers reach steady state on the first batch, so warm batches —
    // all-hit, all-miss, and mixed — must allocate nothing, through
    // both the per-worker and the shared store.
    let guard = STATS_LOCK.lock().unwrap();
    let (n_users, n_items) = (64, 2048);
    let index = build_index(n_users, n_items, 16);
    let engine = TopKEngine::new();
    let arm = EngineArm::Sharded {
        index: &index,
        n_shards: 4,
    };
    let warm: Vec<usize> = (0..32).map(|j| (j * 7) % n_users).collect();
    let cold: Vec<usize> = (0..32).map(|j| (j * 3 + 1) % n_users).collect();

    let mut local = ClockCache::new(128, 10);
    let shared = SharedCache::new(128, 10, 4);
    let mut scratch = ArmScratch::default();
    let mut cs = CacheScratch::default();
    let mut out = TopKBatch::new();

    // Warm-up: engine scratch, miss buffers, and both stores see a
    // full-miss batch once.
    dispatch_cached(
        &mut local,
        &arm,
        &engine,
        &warm,
        10,
        None,
        &mut scratch,
        &mut cs,
        &mut out,
    );
    let mut view = &shared;
    dispatch_cached(
        &mut view,
        &arm,
        &engine,
        &warm,
        10,
        None,
        &mut scratch,
        &mut cs,
        &mut out,
    );

    let before = pool::stats();
    for batch in [&warm, &cold, &warm, &cold] {
        dispatch_cached(
            &mut local,
            &arm,
            &engine,
            batch,
            10,
            None,
            &mut scratch,
            &mut cs,
            &mut out,
        );
        let mut view = &shared;
        dispatch_cached(
            &mut view,
            &arm,
            &engine,
            batch,
            10,
            None,
            &mut scratch,
            &mut cs,
            &mut out,
        );
    }
    let after = pool::stats();
    assert_eq!(
        after.fresh_allocs - before.fresh_allocs,
        0,
        "steady-state cached dispatch must not allocate (stats {after:?} vs {before:?})"
    );
    assert!(local.counters().hits > 0, "warm batches must hit");
    drop(guard);
}
