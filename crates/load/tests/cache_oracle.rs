//! The cache-correctness oracle: a batch served through
//! [`dispatch_cached`] must be **bitwise identical** to an uncached
//! [`EngineArm::dispatch`] of the same users — per arm, at intra-query
//! widths 1/2/8, warm or cold, pooled or fresh buffers — and epoch
//! bumps must invalidate without a flush. `TopKBatch` equality compares
//! counts and every `Ranked` slot (scores via `f64` equality, which on
//! identical bit patterns is exact), so one `assert_eq!` pins bytes.

use dt_cache::{ClockCache, ResultCache, SharedCache};
use dt_load::{dispatch_cached, ArmScratch, CacheScratch, EngineArm};
use dt_parallel::with_thread_limit;
use dt_serve::{IvfIndex, IvfParams, PanelDtype, ScoringIndex, SeenLists, TopKBatch, TopKEngine};
use dt_tensor::{pool, Tensor};

const N_USERS: usize = 96;
const N_ITEMS: usize = 2048;
const DIM: usize = 16;
const K: usize = 10;

fn build_index() -> ScoringIndex {
    let mut state = 0x07AC_1E5Eu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let p = Tensor::from_fn(N_USERS, DIM, |_, _| next());
    let q = Tensor::from_fn(N_ITEMS, DIM, |_, _| next());
    ScoringIndex::new(p, q, vec![0.02; N_USERS], vec![-0.01; N_ITEMS], 0.3)
}

/// Three batches with repeats within and across batches, so probes see
/// cold misses, warm hits, and mixed batches.
fn batches() -> [Vec<usize>; 3] {
    [
        (0..32).map(|j| (j * 5) % N_USERS).collect(),
        (0..32).map(|j| (j * 3) % 48).collect(),
        (0..32).map(|j| (j * 5) % N_USERS).collect(), // all warm
    ]
}

fn assert_cached_matches_fresh(arm: &EngineArm<'_>, engine: &TopKEngine, width: usize) {
    let seen = SeenLists::from_pairs(N_USERS as _, (0..N_USERS as u32).map(|u| (u, u % 7)));
    let mut fresh_scratch = ArmScratch::default();
    let mut fresh = TopKBatch::new();
    let mut scratch = ArmScratch::default();
    let mut cs = CacheScratch::default();
    let mut cached = TopKBatch::new();
    let mut local = ClockCache::new(256, K);
    let shared = SharedCache::new(256, K, 4);

    for (round, users) in batches().iter().enumerate() {
        with_thread_limit(width, || {
            arm.dispatch(
                engine,
                users,
                K,
                Some(&seen),
                &mut fresh_scratch,
                &mut fresh,
            );
        });
        // Per-worker store.
        with_thread_limit(width, || {
            dispatch_cached(
                &mut local,
                arm,
                engine,
                users,
                K,
                Some(&seen),
                &mut scratch,
                &mut cs,
                &mut cached,
            );
        });
        assert_eq!(
            cached,
            fresh,
            "arm {} width {width} round {round}: per-worker cache diverged",
            arm.label()
        );
        // Shared store, probed through the shared-reference impl.
        let mut view = &shared;
        with_thread_limit(width, || {
            dispatch_cached(
                &mut view,
                arm,
                engine,
                users,
                K,
                Some(&seen),
                &mut scratch,
                &mut cs,
                &mut cached,
            );
        });
        assert_eq!(
            cached,
            fresh,
            "arm {} width {width} round {round}: shared cache diverged",
            arm.label()
        );
    }
    // The warm third batch must have been served mostly from cache —
    // otherwise this oracle never exercised the hit path.
    assert!(
        local.counters().hits > 0,
        "arm {}: oracle never hit the cache",
        arm.label()
    );
}

#[test]
fn cached_results_are_bitwise_identical_per_arm_and_width() {
    let index = build_index();
    let ivf = IvfIndex::build(
        &index,
        &IvfParams {
            nlist: 32,
            iters: 4,
            seed: 3,
            train_cap: 0,
        },
    );
    let qidx = index.quantize(PanelDtype::ScaledI8);
    let engine = TopKEngine::new();
    let arms = [
        EngineArm::Exact { index: &index },
        EngineArm::Sharded {
            index: &index,
            n_shards: 8,
        },
        EngineArm::Ivf {
            index: &index,
            ivf: &ivf,
            nprobe: 4,
        },
        EngineArm::Quant { index: &qidx },
    ];
    for arm in &arms {
        for width in [1, 2, 8] {
            assert_cached_matches_fresh(arm, &engine, width);
        }
    }
}

#[test]
fn pooled_and_fresh_buffers_agree_through_the_cache() {
    // The determinism contract says pooling must never change bytes;
    // the cache must preserve that: a stripe cached under pooled
    // dispatch equals one computed with pooling disabled.
    let index = build_index();
    let engine = TopKEngine::new();
    let arm = EngineArm::Exact { index: &index };
    let users: Vec<usize> = (0..24).map(|j| (j * 7) % N_USERS).collect();

    let mut scratch = ArmScratch::default();
    let mut cs = CacheScratch::default();
    let mut cache = ClockCache::new(128, K);
    let mut pooled = TopKBatch::new();
    // Warm the cache under pooled dispatch, then replay from cache.
    dispatch_cached(
        &mut cache,
        &arm,
        &engine,
        &users,
        K,
        None,
        &mut scratch,
        &mut cs,
        &mut pooled,
    );
    dispatch_cached(
        &mut cache,
        &arm,
        &engine,
        &users,
        K,
        None,
        &mut scratch,
        &mut cs,
        &mut pooled,
    );
    assert!(
        cache.counters().hits as usize >= users.len(),
        "replay must hit"
    );

    let mut fresh = TopKBatch::new();
    pool::with_disabled(|| {
        let mut scratch = ArmScratch::default();
        arm.dispatch(&engine, &users, K, None, &mut scratch, &mut fresh);
    });
    assert_eq!(pooled, fresh, "cached-pooled vs fresh-unpooled diverged");
}

#[test]
fn epoch_bump_invalidates_cached_stripes() {
    let index = build_index();
    let mut engine = TopKEngine::new();
    let arm = EngineArm::Exact { index: &index };
    let users: Vec<usize> = (0..16).collect();
    let mut scratch = ArmScratch::default();
    let mut cs = CacheScratch::default();
    let mut cache = ClockCache::new(128, K);
    let mut out = TopKBatch::new();

    dispatch_cached(
        &mut cache,
        &arm,
        &engine,
        &users,
        K,
        None,
        &mut scratch,
        &mut cs,
        &mut out,
    );
    dispatch_cached(
        &mut cache,
        &arm,
        &engine,
        &users,
        K,
        None,
        &mut scratch,
        &mut cs,
        &mut out,
    );
    let warm = cache.counters();
    assert_eq!(
        warm.hits,
        users.len() as u64,
        "second pass must be all hits"
    );

    engine.bump_epoch();
    dispatch_cached(
        &mut cache,
        &arm,
        &engine,
        &users,
        K,
        None,
        &mut scratch,
        &mut cs,
        &mut out,
    );
    let bumped = cache.counters();
    assert_eq!(bumped.hits, warm.hits, "stale epoch must never hit");
    assert_eq!(
        bumped.stale_evictions,
        users.len() as u64,
        "every stale stripe must be evicted in place"
    );
    // And the re-warmed epoch hits again.
    dispatch_cached(
        &mut cache,
        &arm,
        &engine,
        &users,
        K,
        None,
        &mut scratch,
        &mut cs,
        &mut out,
    );
    assert_eq!(cache.counters().hits, warm.hits + users.len() as u64);
}

#[test]
fn distinct_arms_never_alias_in_a_shared_store() {
    // Exact and sharded are bit-identical arms — the fingerprint must
    // still keep their entries separate (a re-sharded deployment must
    // not inherit stripes it did not produce), and K must partition too.
    let index = build_index();
    let engine = TopKEngine::new();
    let exact = EngineArm::Exact { index: &index };
    let sharded = EngineArm::Sharded {
        index: &index,
        n_shards: 8,
    };
    assert_ne!(exact.fingerprint(K), sharded.fingerprint(K));
    assert_ne!(exact.fingerprint(K), exact.fingerprint(K + 1));

    let shared = SharedCache::new(256, K, 4);
    let users: Vec<usize> = (0..16).collect();
    let mut scratch = ArmScratch::default();
    let mut cs = CacheScratch::default();
    let mut out = TopKBatch::new();
    let mut view = &shared;
    dispatch_cached(
        &mut view,
        &exact,
        &engine,
        &users,
        K,
        None,
        &mut scratch,
        &mut cs,
        &mut out,
    );
    // A different arm probing the same users must miss everything.
    dispatch_cached(
        &mut view,
        &sharded,
        &engine,
        &users,
        K,
        None,
        &mut scratch,
        &mut cs,
        &mut out,
    );
    assert_eq!(
        shared.counters().hits,
        0,
        "arms aliased each other's stripes"
    );
}
