//! Randomized model tests for the bounded admission queue, std-only so
//! the offline verification shim runs them verbatim: FIFO per producer
//! with no loss under the block policy, and exact shed accounting
//! against a `VecDeque` reference model under the shed policy. A
//! SplitMix64 stream drives every case, so failures replay exactly.

use dt_load::BoundedQueue;
use dt_serve::kmeans::SplitMix64;

/// Single-threaded op-sequence equivalence against a VecDeque model:
/// `try_push` sheds exactly when the model is full, `try_pop` pops
/// exactly the model's front, counters track the model perfectly.
#[test]
fn shed_accounting_matches_reference_model() {
    for case in 0..48u64 {
        let mut rng = SplitMix64(0x0DDB_A115 ^ (case << 24));
        let capacity = 1 + (rng.next_u64() % 7) as usize;
        let n_ops = (rng.next_u64() % 200) as usize;
        let q = BoundedQueue::new(capacity);
        let mut model = std::collections::VecDeque::new();
        let (mut pushed, mut shed, mut popped) = (0u64, 0u64, 0u64);
        let mut next = 0u32;
        for _ in 0..n_ops {
            match rng.next_u64() % 3 {
                0 => {
                    if model.len() < capacity {
                        model.push_back(next);
                        pushed += 1;
                        assert!(q.try_push(next), "case {case}: queue full before model");
                    } else {
                        shed += 1;
                        assert!(!q.try_push(next), "case {case}: model full, queue not");
                    }
                    next += 1;
                }
                1 => {
                    // Blocking push, issued only when it cannot block
                    // (single thread): must always accept.
                    if model.len() < capacity {
                        model.push_back(next);
                        pushed += 1;
                        assert!(q.push(next));
                        next += 1;
                    }
                }
                _ => {
                    let want = model.pop_front();
                    if want.is_some() {
                        popped += 1;
                    }
                    assert_eq!(q.try_pop(), want, "case {case}");
                }
            }
        }
        let s = q.stats();
        assert_eq!(s.pushed, pushed, "case {case}");
        assert_eq!(s.shed, shed, "case {case}");
        assert_eq!(s.popped, popped, "case {case}");
        assert_eq!(s.depth, model.len(), "case {case}");
    }
}

/// Concurrent block-policy run: every produced item arrives exactly
/// once, in per-producer FIFO order, with zero sheds — even when the
/// queue is much smaller than the traffic.
#[test]
fn fifo_per_producer_and_no_loss_under_block() {
    for case in 0..12u64 {
        let mut rng = SplitMix64(0xF1F0 ^ (case << 16));
        let n_producers = 1 + (rng.next_u64() % 3) as usize;
        let per_producer = 1 + (rng.next_u64() % 63) as usize;
        let capacity = 1 + (rng.next_u64() % 5) as usize;
        let q = std::sync::Arc::new(BoundedQueue::new(capacity));
        let mut producers = Vec::new();
        for p in 0..n_producers {
            let qp = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    assert!(qp.push(((p as u64) << 32) | i as u64));
                }
            }));
        }
        let qc = q.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = qc.pop() {
                got.push(v);
            }
            got
        });
        for h in producers {
            h.join().expect("producer thread");
        }
        q.close();
        let got = consumer.join().expect("consumer thread");
        assert_eq!(got.len(), n_producers * per_producer, "case {case}");
        let mut next_idx = vec![0u64; n_producers];
        for v in &got {
            let p = (v >> 32) as usize;
            let i = v & 0xFFFF_FFFF;
            assert_eq!(i, next_idx[p], "case {case}: producer {p} out of order");
            next_idx[p] += 1;
        }
        let s = q.stats();
        assert_eq!(s.shed, 0, "case {case}");
        assert_eq!(s.pushed, (n_producers * per_producer) as u64, "case {case}");
        assert_eq!(s.popped, s.pushed, "case {case}");
        assert_eq!(s.depth, 0, "case {case}");
    }
}
