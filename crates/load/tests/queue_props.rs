//! Property tests for the bounded admission queue (full workspace only
//! — the offline shim skips proptest suites): FIFO per producer with no
//! loss under the block policy, and exact shed accounting against a
//! reference model under the shed policy.

use dt_load::BoundedQueue;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Single-threaded op-sequence equivalence against a VecDeque model:
    /// `try_push` sheds exactly when the model is full, `try_pop` pops
    /// exactly the model's front, counters track the model perfectly.
    #[test]
    fn shed_accounting_matches_reference_model(
        capacity in 1usize..8,
        ops in proptest::collection::vec(0u8..3, 0..200),
    ) {
        let q = BoundedQueue::new(capacity);
        let mut model = std::collections::VecDeque::new();
        let (mut pushed, mut shed, mut popped) = (0u64, 0u64, 0u64);
        let mut next = 0u32;
        for op in ops {
            match op {
                0 => {
                    if model.len() < capacity {
                        model.push_back(next);
                        pushed += 1;
                        prop_assert!(q.try_push(next));
                    } else {
                        shed += 1;
                        prop_assert!(!q.try_push(next));
                    }
                    next += 1;
                }
                1 => {
                    // Blocking push, issued only when it cannot block
                    // (single thread): must always accept.
                    if model.len() < capacity {
                        model.push_back(next);
                        pushed += 1;
                        prop_assert!(q.push(next));
                        next += 1;
                    }
                }
                _ => {
                    let want = model.pop_front();
                    if want.is_some() {
                        popped += 1;
                    }
                    prop_assert_eq!(q.try_pop(), want);
                }
            }
        }
        let s = q.stats();
        prop_assert_eq!(s.pushed, pushed);
        prop_assert_eq!(s.shed, shed);
        prop_assert_eq!(s.popped, popped);
        prop_assert_eq!(s.depth, model.len());
    }

    /// Concurrent block-policy run: every produced item arrives exactly
    /// once, in per-producer FIFO order, with zero sheds — even when the
    /// queue is much smaller than the traffic.
    #[test]
    fn fifo_per_producer_and_no_loss_under_block(
        n_producers in 1usize..4,
        per_producer in 1usize..64,
        capacity in 1usize..6,
    ) {
        let q = std::sync::Arc::new(BoundedQueue::new(capacity));
        let mut producers = Vec::new();
        for p in 0..n_producers {
            let qp = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    assert!(qp.push(((p as u64) << 32) | i as u64));
                }
            }));
        }
        let qc = q.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = qc.pop() {
                got.push(v);
            }
            got
        });
        for h in producers {
            h.join().expect("producer thread");
        }
        q.close();
        let got = consumer.join().expect("consumer thread");
        prop_assert_eq!(got.len(), n_producers * per_producer);
        let mut next_idx = vec![0u64; n_producers];
        for v in &got {
            let p = (v >> 32) as usize;
            let i = v & 0xFFFF_FFFF;
            prop_assert_eq!(i, next_idx[p], "producer {} out of order", p);
            next_idx[p] += 1;
        }
        let s = q.stats();
        prop_assert_eq!(s.shed, 0);
        prop_assert_eq!(s.pushed, (n_producers * per_producer) as u64);
        prop_assert_eq!(s.popped, s.pushed);
        prop_assert_eq!(s.depth, 0);
    }
}
