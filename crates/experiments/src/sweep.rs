//! Parallel parameter-sweep execution.
//!
//! The sweeps behind Tables III–VI fan out over (method × dataset ×
//! hyper-parameter) grids whose jobs are independent. [`run_sweep`] executes
//! them on the workspace-shared [`dt_parallel`] pool, preserving the job
//! order in the returned results regardless of completion order. Models are
//! constructed *inside* the worker closures, so nothing non-`Send` crosses a
//! thread boundary; determinism is preserved because every job carries its
//! own seed.
//!
//! Nested parallelism is deliberately disabled: each job runs under
//! [`dt_parallel::run_sequential`], so the tensor kernels it calls stay
//! single-threaded and the sweep owns the machine's parallelism budget.
//! (A sweep already saturates the cores with coarse-grained jobs; letting
//! every job's GEMMs fan out again would only add scheduling overhead.)

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Locks ignoring poisoning: a poisoned slot only means some job panicked,
/// which `run_sweep` reports explicitly afterwards.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn panic_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Runs `jobs.len()` independent jobs, at most `max_threads` at a time
/// (0 = use the pool's full width, i.e. `DT_NUM_THREADS` or the machine's
/// available parallelism). Results are returned in job order.
///
/// Jobs are dynamically scheduled (a slow job does not hold up the queue),
/// and each runs with kernel parallelism disabled — see the module docs.
///
/// # Panics
/// If any job panics, every remaining job still runs to completion, then
/// `run_sweep` panics with the **lowest failing job index** and the original
/// panic message, so a 300-job grid failure pinpoints the offending
/// configuration.
pub fn run_sweep<J, R, F>(jobs: Vec<J>, max_threads: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let cap = if max_threads == 0 {
        dt_parallel::num_threads()
    } else {
        max_threads
    }
    .min(n);

    let mut slots: Vec<Mutex<Option<R>>> = Vec::with_capacity(n);
    slots.resize_with(n, || Mutex::new(None));
    let failed: Mutex<Option<(usize, Box<dyn Any + Send>)>> = Mutex::new(None);

    dt_parallel::with_thread_limit(cap, || {
        dt_parallel::par_indices(n, |i| {
            let out = catch_unwind(AssertUnwindSafe(|| {
                dt_parallel::run_sequential(|| f(&jobs[i]))
            }));
            match out {
                // lint: allow(r8): one slot per index — disjoint writes, order-independent
                Ok(r) => *lock(&slots[i]) = Some(r),
                Err(payload) => {
                    // lint: allow(r8): failure path only; keeping the lowest index is order-independent
                    let mut worst = lock(&failed);
                    // Keep the lowest index so the report is deterministic
                    // even when several jobs fail in racing order.
                    let replace = match worst.as_ref() {
                        Some((j, _)) => i < *j,
                        None => true,
                    };
                    if replace {
                        *worst = Some((i, payload));
                    }
                }
            }
        });
    });

    if let Some((idx, payload)) = failed.into_inner().unwrap_or_else(|e| e.into_inner()) {
        // lint: allow(r3): documented contract — re-raise the lowest-indexed job panic
        panic!(
            "run_sweep: job {idx} of {n} panicked: {}",
            panic_message(payload.as_ref())
        );
    }

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                // lint: allow(r3): every slot is filled unless a job panicked, handled above
                .expect("every job produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_job_order() {
        let jobs: Vec<u64> = (0..50).collect();
        let out = run_sweep(jobs, 4, |&j| j * j);
        assert_eq!(out, (0..50).map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = run_sweep(vec![1, 2, 3], 1, |&j| j + 10);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn zero_means_auto() {
        let out = run_sweep((0..8).collect::<Vec<i32>>(), 0, |&j| -j);
        assert_eq!(out, (0..8).map(|j| -j).collect::<Vec<_>>());
    }

    #[test]
    fn empty_jobs() {
        let out: Vec<i32> = run_sweep(Vec::<i32>::new(), 4, |&j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_run_with_kernel_parallelism_disabled() {
        let seq = run_sweep((0..16).collect::<Vec<i32>>(), 4, |_| {
            dt_parallel::is_sequential()
        });
        assert!(seq.into_iter().all(|s| s));
    }

    #[test]
    fn sweep_actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let ids = StdMutex::new(HashSet::new());
        let _ = run_sweep((0..64).collect::<Vec<i32>>(), 4, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        // On a single-core box this may legitimately collapse to one
        // worker; just assert nothing deadlocked and at least one ran.
        assert!(!ids.lock().unwrap().is_empty());
    }

    #[test]
    fn panic_report_names_the_lowest_failing_job() {
        let err = std::panic::catch_unwind(|| {
            run_sweep((0..10).collect::<Vec<i32>>(), 4, |&j| {
                assert!(j != 3 && j != 7, "bad hyper-parameter combination");
                j
            })
        })
        .expect_err("sweep with failing jobs must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("run_sweep panics with a formatted String");
        assert!(msg.contains("job 3 of 10"), "unexpected report: {msg}");
        assert!(
            msg.contains("bad hyper-parameter combination"),
            "original message lost: {msg}"
        );
    }

    #[test]
    fn deterministic_training_through_the_sweep() {
        // The real use: train models with per-job seeds in parallel and
        // get the same answers as the serial path.
        use dt_core::{registry, Method, TrainConfig};
        use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 20,
                n_items: 25,
                target_density: 0.2,
                seed: 3,
                ..MechanismConfig::default()
            },
        );
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 64,
            emb_dim: 4,
            ..TrainConfig::default()
        };
        let job = |seed: &u64| -> f64 {
            let mut model = registry::build(Method::Mf, &ds, &cfg, *seed);
            let mut rng = StdRng::seed_from_u64(*seed);
            model.fit(&ds, &mut rng);
            model.predict(&[(0, 0)])[0]
        };
        let parallel = run_sweep(vec![1u64, 2, 3, 4], 4, job);
        let serial = run_sweep(vec![1u64, 2, 3, 4], 1, job);
        assert_eq!(parallel, serial);
    }
}
