//! Parallel parameter-sweep execution.
//!
//! The sweeps behind Tables III–VI fan out over (method × dataset ×
//! hyper-parameter) grids whose jobs are independent. [`run_sweep`] executes
//! them on a scoped thread pool sized to the machine (`crossbeam::scope` +
//! a `parking_lot`-guarded work queue), preserving the job order in the
//! returned results regardless of completion order. Models are constructed
//! *inside* the worker threads, so nothing non-`Send` crosses a thread
//! boundary; determinism is preserved because every job carries its own
//! seed.

use parking_lot::Mutex;

/// Runs `jobs.len()` independent jobs, at most `max_threads` at a time
/// (0 = use the machine's available parallelism). Results are returned in
/// job order.
///
/// # Panics
/// Propagates a panic from any job after all threads are joined.
pub fn run_sweep<J, R, F>(jobs: Vec<J>, max_threads: usize, f: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let n_threads = if max_threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        max_threads
    }
    .min(jobs.len().max(1));

    if n_threads <= 1 {
        return jobs.iter().map(&f).collect();
    }

    let n = jobs.len();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let queue = Mutex::new((0usize, slots));
    let jobs_ref = &jobs;
    let f_ref = &f;

    crossbeam::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|_| loop {
                let idx = {
                    let mut q = queue.lock();
                    if q.0 >= n {
                        return;
                    }
                    let i = q.0;
                    q.0 += 1;
                    i
                };
                let result = f_ref(&jobs_ref[idx]);
                queue.lock().1[idx] = Some(result);
            });
        }
    })
    .expect("sweep worker panicked");

    let (_, slots) = queue.into_inner();
    slots
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_job_order() {
        let jobs: Vec<u64> = (0..50).collect();
        let out = run_sweep(jobs, 4, |&j| j * j);
        assert_eq!(out, (0..50).map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = run_sweep(vec![1, 2, 3], 1, |&j| j + 10);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn zero_means_auto() {
        let out = run_sweep((0..8).collect::<Vec<i32>>(), 0, |&j| -j);
        assert_eq!(out, (0..8).map(|j| -j).collect::<Vec<_>>());
    }

    #[test]
    fn empty_jobs() {
        let out: Vec<i32> = run_sweep(Vec::<i32>::new(), 4, |&j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn sweep_actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let ids = StdMutex::new(HashSet::new());
        let _ = run_sweep((0..64).collect::<Vec<i32>>(), 4, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        // On a single-core box this may legitimately collapse to one
        // worker; just assert nothing deadlocked and at least one ran.
        assert!(!ids.lock().unwrap().is_empty());
    }

    #[test]
    fn deterministic_training_through_the_sweep() {
        // The real use: train models with per-job seeds in parallel and
        // get the same answers as the serial path.
        use dt_core::{registry, Method, TrainConfig};
        use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ds = mechanism_dataset(
            Mechanism::Mnar,
            &MechanismConfig {
                n_users: 20,
                n_items: 25,
                target_density: 0.2,
                seed: 3,
                ..MechanismConfig::default()
            },
        );
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 64,
            emb_dim: 4,
            ..TrainConfig::default()
        };
        let job = |seed: &u64| -> f64 {
            let mut model = registry::build(Method::Mf, &ds, &cfg, *seed);
            let mut rng = StdRng::seed_from_u64(*seed);
            model.fit(&ds, &mut rng);
            model.predict(&[(0, 0)])[0]
        };
        let parallel = run_sweep(vec![1u64, 2, 3, 4], 4, job);
        let serial = run_sweep(vec![1u64, 2, 3, 4], 1, job);
        assert_eq!(parallel, serial);
    }
}
