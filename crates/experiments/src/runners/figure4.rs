//! **Figure 4** — sensitivity to the disentangling weight β:
//!
//! * panels (a, b): prediction performance (AUC / NDCG@K) as β sweeps
//!   across orders of magnitude, on the YAHOO- and KUAIREC-like datasets;
//! * panels (c, d): the disentangling-loss scale per training epoch for
//!   several β — larger β should drive the scale down faster.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_core::methods::{DtRecommender, DtVariant};
use dt_core::{evaluate, Hyper, Recommender, TrainConfig};

use crate::report::{Table, TableSet};
use crate::runners::util::{cutoff_for, realworld_datasets, short_name, train_cfg};
use crate::sweep::run_sweep;
use crate::RunOptions;

/// The β grid (normalised-loss scale; `0` disables the term).
pub const BETAS: [f64; 6] = [0.0, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

/// Runs the sweep.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let base = train_cfg(opts.scale);
    // Figure 4 uses the YAHOO- and KUAIREC-like datasets.
    let datasets: Vec<_> = realworld_datasets(opts.scale, opts.seed)
        .into_iter()
        .filter(|d| !d.name.starts_with("coat"))
        .collect();

    let mut set = TableSet::default();

    // Panels (a, b): performance vs β.
    let mut perf_cols = Vec::new();
    for ds in &datasets {
        let n = short_name(ds);
        perf_cols.push(format!("{n} AUC"));
        perf_cols.push(format!("{n} N@K"));
    }
    let col_refs: Vec<&str> = perf_cols.iter().map(String::as_str).collect();
    let mut perf = Table::new(
        "figure4-performance",
        "Figure 4(a,b) — DT-IPS performance vs β",
        &col_refs,
    );

    // Panels (c, d): disentangle-scale trace per epoch, one table per
    // dataset, one row per β.
    let mut traces: Vec<Table> = datasets
        .iter()
        .map(|ds| {
            let cols: Vec<String> = (0..base.epochs).map(|e| format!("epoch{e}")).collect();
            let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            Table::new(
                &format!("figure4-trace-{}", short_name(ds).to_lowercase()),
                &format!(
                    "Figure 4(c,d) — disentangling-loss scale per epoch ({})",
                    short_name(ds)
                ),
                &col_refs,
            )
        })
        .collect();

    // One job per (β, dataset); executed on the sweep pool (serial on a
    // single core, parallel where cores exist), results in job order.
    let jobs: Vec<(f64, usize)> = BETAS
        .iter()
        .flat_map(|&beta| (0..datasets.len()).map(move |k| (beta, k)))
        .collect();
    let results = run_sweep(jobs, 0, |&(beta, k)| {
        crate::progress!("[figure4] beta = {beta} on {}", short_name(&datasets[k]));
        let cfg = TrainConfig {
            hyper: Hyper { beta, ..base.hyper },
            ..base
        };
        let ds = &datasets[k];
        let mut model = DtRecommender::new(ds, &cfg, DtVariant::Ips, opts.seed);
        if beta == 0.0 {
            model = model.without_disentangle();
        }
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let fit = model.fit(ds, &mut rng);
        let eval = evaluate(&model, ds, cutoff_for(ds));
        (eval.auc, eval.ndcg, fit.aux_trace)
    });

    let mut it = results.into_iter();
    for &beta in &BETAS {
        let mut row = Vec::new();
        for k in 0..datasets.len() {
            // lint: allow(r3): the sweep returns exactly one result per submitted job
            let (auc, ndcg, trace) = it.next().expect("one result per job");
            row.push(auc);
            row.push(ndcg);
            traces[k].push_row(format!("beta={beta}"), trace);
        }
        perf.push_row(format!("beta={beta}"), row);
    }

    set.push(perf);
    for t in traces {
        set.push(t);
    }
    set
}
