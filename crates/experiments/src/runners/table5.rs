//! **Table V** — ablation of the DT training losses: the disentangling
//! term (β) and the regularisation term (γ), on × off, for DT-IPS and
//! DT-DR on all three datasets.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_core::methods::{DtRecommender, DtVariant};
use dt_core::{evaluate, Recommender};

use crate::report::{Table, TableSet};
use crate::runners::util::{cutoff_for, realworld_datasets, short_name, train_cfg};
use crate::RunOptions;

/// Runs the 2×2 loss ablation.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let cfg = train_cfg(opts.scale);
    let datasets = realworld_datasets(opts.scale, opts.seed);

    let mut columns = Vec::new();
    for ds in &datasets {
        let n = short_name(ds);
        columns.push(format!("{n} AUC"));
        columns.push(format!("{n} N@K"));
        columns.push(format!("{n} R@K"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "table5",
        "Table V — DT loss ablation (β = disentangling, γ = regularisation)",
        &col_refs,
    );

    for variant in [DtVariant::Ips, DtVariant::Dr] {
        for (beta_on, gamma_on) in [(false, false), (false, true), (true, false), (true, true)] {
            let label = format!(
                "{} β={} γ={}",
                if variant == DtVariant::Ips {
                    "DT-IPS"
                } else {
                    "DT-DR"
                },
                if beta_on { "on" } else { "off" },
                if gamma_on { "on" } else { "off" },
            );
            crate::progress!("[table5] {label}");
            let mut row = Vec::new();
            for ds in &datasets {
                let mut model = DtRecommender::new(ds, &cfg, variant, opts.seed);
                if !beta_on {
                    model = model.without_disentangle();
                }
                if !gamma_on {
                    model = model.without_regularization();
                }
                let mut rng = StdRng::seed_from_u64(opts.seed);
                model.fit(ds, &mut rng);
                let eval = evaluate(&model, ds, cutoff_for(ds));
                row.push(eval.auc);
                row.push(eval.ndcg);
                row.push(eval.recall);
            }
            table.push_row(label, row);
        }
    }
    TableSet::single(table)
}
