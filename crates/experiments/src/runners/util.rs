//! Shared experiment plumbing.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_core::{evaluate, registry, EvalReport, FitReport, Method, TrainConfig};
use dt_data::{
    coat_like, kuairec_like, semi_synthetic, sparsify, yahoo_like, Dataset, RealWorldConfig,
    SemiSyntheticConfig,
};

use crate::Scale;

/// The training configuration used by the real-world experiments.
#[must_use]
pub fn train_cfg(scale: Scale) -> TrainConfig {
    match scale {
        Scale::Quick => TrainConfig {
            epochs: 10,
            batch_size: 512,
            emb_dim: 16,
            lr: 0.03,
            ..TrainConfig::default()
        },
        Scale::Paper => TrainConfig {
            epochs: 30,
            batch_size: 2048,
            emb_dim: 32,
            lr: 0.03,
            ..TrainConfig::default()
        },
    }
}

/// The three real-world-style datasets, scaled for the run.
#[must_use]
pub fn realworld_datasets(scale: Scale, seed: u64) -> Vec<Dataset> {
    let cfg = RealWorldConfig {
        seed,
        full_scale: scale == Scale::Paper,
        ..RealWorldConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A);
    let coat = coat_like(&cfg);
    let yahoo = {
        let full = yahoo_like(&cfg);
        match scale {
            Scale::Paper => full,
            // Quick: keep the user/item space but halve the training log.
            Scale::Quick => sparsify(&full, 0.5, &mut rng),
        }
    };
    let kuairec = {
        let full = kuairec_like(&cfg);
        match scale {
            Scale::Paper => full,
            Scale::Quick => sparsify(&full, 0.15, &mut rng),
        }
    };
    vec![coat, yahoo, kuairec]
}

/// Short display name of a real-world dataset (column prefix).
#[must_use]
pub fn short_name(ds: &Dataset) -> &'static str {
    if ds.name.starts_with("coat") {
        "COAT"
    } else if ds.name.starts_with("yahoo") {
        "YAHOO"
    } else if ds.name.starts_with("kuairec") {
        "KUAIREC"
    } else {
        "DATA"
    }
}

/// The ranking cutoff used for a dataset (paper: K = 5 for COAT/YAHOO,
/// 50 for KUAIREC).
#[must_use]
pub fn cutoff_for(ds: &Dataset) -> usize {
    if ds.name.starts_with("kuairec") {
        50
    } else {
        5
    }
}

/// The semi-synthetic dataset at a scale.
#[must_use]
pub fn semisynthetic_dataset(scale: Scale, rho: f64, epsilon: f64, seed: u64) -> Dataset {
    let cfg = match scale {
        Scale::Quick => SemiSyntheticConfig {
            n_users: 236,
            n_items: 420,
            n_ratings: 6_250,
            mf_epochs: 15,
            rho,
            epsilon,
            seed,
            ..SemiSyntheticConfig::default()
        },
        Scale::Paper => SemiSyntheticConfig {
            rho,
            epsilon,
            seed,
            ..SemiSyntheticConfig::default()
        },
    };
    semi_synthetic(&cfg)
}

/// Trains one method and evaluates it.
pub fn fit_eval(
    method: Method,
    ds: &Dataset,
    cfg: &TrainConfig,
    seed: u64,
) -> (EvalReport, FitReport, usize) {
    let mut model = registry::build(method, ds, cfg, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let fit = model.fit(ds, &mut rng);
    let eval = evaluate(model.as_ref(), ds, cutoff_for(ds));
    (eval, fit, model.n_parameters())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_datasets_have_expected_shape() {
        let ds = realworld_datasets(Scale::Quick, 1);
        assert_eq!(ds.len(), 3);
        assert_eq!(short_name(&ds[0]), "COAT");
        assert_eq!(short_name(&ds[1]), "YAHOO");
        assert_eq!(short_name(&ds[2]), "KUAIREC");
        assert_eq!(cutoff_for(&ds[0]), 5);
        assert_eq!(cutoff_for(&ds[2]), 50);
        for d in &ds {
            d.validate();
            assert!(!d.test.is_empty());
        }
    }

    #[test]
    fn semisynthetic_quick_is_small() {
        let ds = semisynthetic_dataset(Scale::Quick, 1.0, 0.3, 0);
        assert_eq!(ds.n_users, 236);
        assert!(ds.truth.is_some());
    }
}
