//! **Figure 5** — data-sparsity study: AUC and training time as the
//! training log is subsampled to {100%, 50%, 25%, 12.5%}.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_core::Method;
use dt_data::sparsify;

use crate::report::{Table, TableSet};
use crate::runners::util::{fit_eval, realworld_datasets, short_name, train_cfg};
use crate::RunOptions;

/// The sparsity grid.
pub const KEEP_FRACTIONS: [f64; 4] = [1.0, 0.5, 0.25, 0.125];

const METHODS: [Method; 4] = [Method::Mf, Method::Ips, Method::Escm2Dr, Method::DtIps];

/// Runs the sparsity sweep on the COAT- and YAHOO-like datasets.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let cfg = train_cfg(opts.scale);
    let datasets: Vec<_> = realworld_datasets(opts.scale, opts.seed)
        .into_iter()
        .filter(|d| !d.name.starts_with("kuairec"))
        .collect();

    let mut set = TableSet::default();
    for ds in &datasets {
        let name = short_name(ds);
        let columns: Vec<String> = KEEP_FRACTIONS
            .iter()
            .flat_map(|f| {
                [
                    format!("{:.0}% AUC", f * 100.0),
                    format!("{:.0}% train s", f * 100.0),
                ]
            })
            .collect();
        let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!("figure5-{}", name.to_lowercase()),
            &format!("Figure 5 — AUC and training time vs data sparsity ({name})"),
            &col_refs,
        );

        for method in METHODS {
            crate::progress!("[figure5] {name} {}", method.label());
            let mut row = Vec::new();
            for &frac in &KEEP_FRACTIONS {
                let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5AA5);
                let sub = sparsify(ds, frac, &mut rng);
                let (eval, fit, _) = fit_eval(method, &sub, &cfg, opts.seed);
                row.push(eval.auc);
                row.push(fit.train_seconds);
            }
            table.push_row(method.label(), row);
        }
        set.push(table);
    }
    set
}
