//! **Table III** — semi-synthetic ML-100K experiment: MSE / MAE / NDCG@50
//! for nine methods across ρ ∈ {0.5, 0.75, 1, 1.25, 1.5}.
//!
//! Protocol (paper §V): the pipeline of Steps 1–3 produces a ground-truth
//! conversion surface η, an observation probability `p = (2^η − 1)^ρ`, and
//! realized conversions/observations. Models train on the observed
//! conversions; MSE/MAE are measured against η over the full space and
//! NDCG@50 ranks every item per user against the realized conversions.

use dt_core::{registry, Method, Recommender, TrainConfig};
use dt_data::Dataset;
use dt_metrics::ndcg_at_k;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{Table, TableSet};
use crate::runners::util::semisynthetic_dataset;
use crate::{RunOptions, Scale};

/// The ρ grid of Table III.
pub const RHOS: [f64; 5] = [0.5, 0.75, 1.0, 1.25, 1.5];

/// Full-space evaluation for the semi-synthetic protocol.
///
/// Returns `(mse, mae, ndcg@k)`; MSE/MAE against η, NDCG over all items
/// per user with the realized binary conversions as relevance (users are
/// strided down to at most `max_users` for tractability).
#[must_use]
pub fn semi_eval(
    model: &dyn Recommender,
    ds: &Dataset,
    k: usize,
    max_users: usize,
) -> (f64, f64, f64) {
    // lint: allow(r3): semi-synthetic datasets always carry ground truth
    let truth = ds.truth.as_ref().expect("semi-synthetic ground truth");
    let stride = (ds.n_users / max_users).max(1);
    let mut se = 0.0;
    let mut ae = 0.0;
    let mut n_cells = 0.0;
    let mut ndcg_sum = 0.0;
    let mut ndcg_n = 0usize;
    for u in (0..ds.n_users).step_by(stride) {
        let pairs: Vec<(usize, usize)> = (0..ds.n_items).map(|i| (u, i)).collect();
        let preds = model.predict(&pairs);
        let mut items: Vec<(f64, f64)> = Vec::with_capacity(ds.n_items);
        for (i, &p) in preds.iter().enumerate() {
            let eta = truth.preference.get(u, i);
            se += (p - eta) * (p - eta);
            ae += (p - eta).abs();
            n_cells += 1.0;
            items.push((p, truth.ratings.get(u, i)));
        }
        if let Some(v) = ndcg_at_k(&items, k) {
            ndcg_sum += v;
            ndcg_n += 1;
        }
    }
    (
        se / n_cells,
        ae / n_cells,
        if ndcg_n == 0 {
            f64::NAN
        } else {
            ndcg_sum / ndcg_n as f64
        },
    )
}

fn cfg_for(scale: Scale) -> TrainConfig {
    match scale {
        Scale::Quick => TrainConfig {
            epochs: 12,
            batch_size: 256,
            emb_dim: 16,
            l2: 1e-4,
            lr: 0.03,
            ..TrainConfig::default()
        },
        Scale::Paper => TrainConfig {
            epochs: 30,
            batch_size: 2048,
            emb_dim: 32,
            l2: 1e-4,
            lr: 0.03,
            ..TrainConfig::default()
        },
    }
}

/// Runs the ρ sweep.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let cfg = cfg_for(opts.scale);
    let max_users = opts.scale.pick(120, 943);
    let columns: Vec<String> = RHOS.iter().map(|r| format!("rho={r}")).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

    let mut mse_t = Table::new("table3-mse", "Table III — MSE vs η by ρ", &col_refs);
    let mut mae_t = Table::new("table3-mae", "Table III — MAE vs η by ρ", &col_refs);
    let mut ndcg_t = Table::new("table3-ndcg", "Table III — NDCG@50 by ρ", &col_refs);

    // Generate datasets once per ρ (shared across methods).
    let datasets: Vec<Dataset> = RHOS
        .iter()
        .map(|&rho| semisynthetic_dataset(opts.scale, rho, 0.3, opts.seed))
        .collect();

    for method in Method::TABLE3 {
        let mut mse_row = Vec::new();
        let mut mae_row = Vec::new();
        let mut ndcg_row = Vec::new();
        for ds in &datasets {
            let mut model = registry::build(method, ds, &cfg, opts.seed);
            let mut rng = StdRng::seed_from_u64(opts.seed);
            model.fit(ds, &mut rng);
            let (mse, mae, ndcg) = semi_eval(model.as_ref(), ds, 50, max_users);
            mse_row.push(mse);
            mae_row.push(mae);
            ndcg_row.push(ndcg);
        }
        mse_t.push_row(method.label(), mse_row);
        mae_t.push_row(method.label(), mae_row);
        ndcg_t.push_row(method.label(), ndcg_row);
    }

    let mut set = TableSet::default();
    set.push(mse_t);
    set.push(mae_t);
    set.push(ndcg_t);
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semi_eval_scores_the_oracle_perfectly() {
        let ds = semisynthetic_dataset(Scale::Quick, 1.0, 0.3, 3);
        struct Oracle(dt_tensor::Tensor);
        impl Recommender for Oracle {
            fn fit(&mut self, _: &Dataset, _: &mut StdRng) -> dt_core::FitReport {
                dt_core::FitReport::empty()
            }
            fn predict(&self, pairs: &[(usize, usize)]) -> Vec<f64> {
                pairs.iter().map(|&(u, i)| self.0.get(u, i)).collect()
            }
            fn n_parameters(&self) -> usize {
                0
            }
            fn name(&self) -> &'static str {
                "oracle"
            }
        }
        let oracle = Oracle(ds.truth.as_ref().unwrap().preference.clone());
        let (mse, mae, ndcg) = semi_eval(&oracle, &ds, 50, 50);
        assert!(mse < 1e-12);
        assert!(mae < 1e-12);
        assert!(ndcg > 0.6, "oracle ndcg {ndcg}");
    }
}
