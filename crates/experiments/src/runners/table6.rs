//! **Table VI** — efficiency: parameter counts, training wall-clock,
//! per-sample inference latency, and per-user full-catalog top-K serving
//! latency for the nine methods of the paper's efficiency study, on all
//! three datasets.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_core::{registry, Method};

use crate::report::{Table, TableSet};
use crate::runners::util::{realworld_datasets, short_name, train_cfg};
use crate::RunOptions;

/// The method subset of Table VI.
pub const METHODS: [Method; 9] = [
    Method::Esmm,
    Method::Ips,
    Method::MultiIps,
    Method::Escm2Ips,
    Method::DtIps,
    Method::DrJl,
    Method::MultiDr,
    Method::Escm2Dr,
    Method::DtDr,
];

/// Runs the efficiency measurements.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let cfg = train_cfg(opts.scale);
    let datasets = realworld_datasets(opts.scale, opts.seed);

    let mut columns = Vec::new();
    for ds in &datasets {
        let n = short_name(ds);
        columns.push(format!("{n} params"));
        columns.push(format!("{n} train s"));
        columns.push(format!("{n} infer us"));
        columns.push(format!("{n} topk us"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "table6",
        "Table VI — parameters, training seconds, inference microseconds/sample, \
         top-10 full-catalog serving microseconds/user",
        &col_refs,
    );

    for method in METHODS {
        crate::progress!("[table6] {}", method.label());
        let mut row = Vec::new();
        for ds in &datasets {
            let mut model = registry::build(method, ds, &cfg, opts.seed);
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let fit = model.fit(ds, &mut rng);

            // Inference latency over a deterministic pair sweep.
            let n_probe = 20_000.min(ds.n_users * ds.n_items);
            let pairs: Vec<(usize, usize)> = (0..n_probe)
                .map(|k| (k % ds.n_users, (k * 7919) % ds.n_items))
                .collect();
            let t0 = Instant::now(); // lint: allow(r4): Table VI measures wall-clock training time; timing is the experiment
            let preds = model.predict(&pairs);
            let micros = t0.elapsed().as_secs_f64() * 1e6 / preds.len() as f64;

            // Serving latency: batched full-catalog top-10 over a
            // deterministic user sample (MF-family methods take the
            // dt-serve index fast path, tower methods the predict
            // fallback).
            let query: Vec<usize> = (0..64.min(ds.n_users)).map(|j| (j * 13) % ds.n_users).collect();
            let t1 = Instant::now(); // lint: allow(r4): serving latency is the measurement, as above
            let batch = model.recommend_top_k(&query, ds.n_items, 10, None);
            let topk_micros = t1.elapsed().as_secs_f64() * 1e6 / batch.n_users().max(1) as f64;

            row.push(model.n_parameters() as f64);
            row.push(fit.train_seconds);
            row.push(micros);
            row.push(topk_micros);
        }
        table.push_row(method.label(), row);
    }
    TableSet::single(table)
}
