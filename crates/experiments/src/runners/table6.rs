//! **Table VI** — efficiency: parameter counts, training wall-clock,
//! per-sample inference latency, and per-user full-catalog top-K serving
//! latency for the nine methods of the paper's efficiency study, on all
//! three datasets.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_core::{registry, Method};
use dt_metrics::top_k_overlap;
use dt_serve::{IvfIndex, IvfParams, IvfScratch, PanelDtype, QuantScratch, TopKBatch, TopKEngine};

use crate::report::{Table, TableSet};
use crate::runners::util::{realworld_datasets, short_name, train_cfg};
use crate::RunOptions;

/// The method subset of Table VI.
pub const METHODS: [Method; 9] = [
    Method::Esmm,
    Method::Ips,
    Method::MultiIps,
    Method::Escm2Ips,
    Method::DtIps,
    Method::DrJl,
    Method::MultiDr,
    Method::Escm2Dr,
    Method::DtDr,
];

/// Runs the efficiency measurements.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let cfg = train_cfg(opts.scale);
    let datasets = realworld_datasets(opts.scale, opts.seed);

    let mut columns = Vec::new();
    for ds in &datasets {
        let n = short_name(ds);
        columns.push(format!("{n} params"));
        columns.push(format!("{n} train s"));
        columns.push(format!("{n} infer us"));
        columns.push(format!("{n} topk us"));
        columns.push(format!("{n} ann us"));
        columns.push(format!("{n} ann r@10"));
        columns.push(format!("{n} q8 us"));
        columns.push(format!("{n} q8 ov@10"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "table6",
        "Table VI — parameters, training seconds, inference microseconds/sample, \
         top-10 full-catalog serving microseconds/user, IVF ann top-10 \
         microseconds/user with recall@10 vs the exact arm, and scaled-i8 \
         quantized full-catalog top-10 microseconds/user with set overlap@10 \
         vs the exact arm (MF-family methods only; tower methods export no \
         index and show NaN)",
        &col_refs,
    );

    for method in METHODS {
        crate::progress!("[table6] {}", method.label());
        let mut row = Vec::new();
        for ds in &datasets {
            let mut model = registry::build(method, ds, &cfg, opts.seed);
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let fit = model.fit(ds, &mut rng);

            // Inference latency over a deterministic pair sweep.
            let n_probe = 20_000.min(ds.n_users * ds.n_items);
            let pairs: Vec<(usize, usize)> = (0..n_probe)
                .map(|k| (k % ds.n_users, (k * 7919) % ds.n_items))
                .collect();
            let t0 = Instant::now(); // lint: allow(r4): Table VI measures wall-clock training time; timing is the experiment
            let preds = model.predict(&pairs);
            let micros = t0.elapsed().as_secs_f64() * 1e6 / preds.len() as f64;

            // Serving latency: batched full-catalog top-10 over a
            // deterministic user sample (MF-family methods take the
            // dt-serve index fast path, tower methods the predict
            // fallback).
            let query: Vec<usize> = (0..64.min(ds.n_users))
                .map(|j| (j * 13) % ds.n_users)
                .collect();
            let t1 = Instant::now(); // lint: allow(r4): serving latency is the measurement, as above
            let batch = model.recommend_top_k(&query, ds.n_items, 10, None);
            let topk_micros = t1.elapsed().as_secs_f64() * 1e6 / batch.n_users().max(1) as f64;

            // IVF serving latency + recall@10 vs the exact batch above.
            // The index is built once outside the timed region (the
            // steady-state serving pattern); tower methods export no
            // ScoringIndex and report NaN.
            let (ann_micros, ann_recall) = match model.scoring_index() {
                None => (f64::NAN, f64::NAN),
                Some(index) => {
                    let nlist = 64.min(ds.n_items);
                    let ivf = IvfIndex::build(
                        &index,
                        &IvfParams {
                            nlist,
                            ..IvfParams::default()
                        },
                    );
                    let engine = TopKEngine::new();
                    let mut out = TopKBatch::new();
                    let mut scratch = IvfScratch::default();
                    let nprobe = (nlist / 8).max(1);
                    // Warm-up sizes the scratch, then the timed pass.
                    engine.recommend_ivf_into(
                        &index,
                        &ivf,
                        nprobe,
                        &query,
                        10,
                        None,
                        &mut scratch,
                        &mut out,
                    );
                    let t2 = Instant::now(); // lint: allow(r4): serving latency is the measurement, as above
                    engine.recommend_ivf_into(
                        &index,
                        &ivf,
                        nprobe,
                        &query,
                        10,
                        None,
                        &mut scratch,
                        &mut out,
                    );
                    let us = t2.elapsed().as_secs_f64() * 1e6 / out.n_users().max(1) as f64;
                    let mut hit = 0usize;
                    let mut total = 0usize;
                    for j in 0..query.len() {
                        let truth: Vec<u32> = batch.user(j).iter().map(|r| r.item).collect();
                        total += truth.len();
                        hit += out
                            .user(j)
                            .iter()
                            .filter(|r| truth.contains(&r.item))
                            .count();
                    }
                    (us, hit as f64 / total.max(1) as f64)
                }
            };

            // Scaled-i8 quantized serving latency + set overlap@10 vs the
            // exact batch above. The export happens once outside the timed
            // region, like the IVF build; tower methods report NaN.
            let (q8_micros, q8_overlap) = match model.scoring_index() {
                None => (f64::NAN, f64::NAN),
                Some(index) => {
                    let qidx = index.quantize(PanelDtype::ScaledI8);
                    let engine = TopKEngine::new();
                    let mut out = TopKBatch::new();
                    let mut scratch = QuantScratch::default();
                    // Warm-up sizes the scratch, then the timed pass.
                    engine.recommend_quantized_into(
                        &qidx,
                        &query,
                        10,
                        None,
                        None,
                        &mut scratch,
                        &mut out,
                    );
                    let t3 = Instant::now(); // lint: allow(r4): serving latency is the measurement, as above
                    engine.recommend_quantized_into(
                        &qidx,
                        &query,
                        10,
                        None,
                        None,
                        &mut scratch,
                        &mut out,
                    );
                    let us = t3.elapsed().as_secs_f64() * 1e6 / out.n_users().max(1) as f64;
                    let (mut overlap_sum, mut n_users_scored) = (0.0, 0usize);
                    for j in 0..query.len() {
                        let truth: Vec<u32> = batch.user(j).iter().map(|r| r.item).collect();
                        let got: Vec<u32> = out.user(j).iter().map(|r| r.item).collect();
                        overlap_sum += top_k_overlap(&truth, &got);
                        n_users_scored += 1;
                    }
                    (us, overlap_sum / n_users_scored.max(1) as f64)
                }
            };

            row.push(model.n_parameters() as f64);
            row.push(fit.train_seconds);
            row.push(micros);
            row.push(topk_micros);
            row.push(ann_micros);
            row.push(ann_recall);
            row.push(q8_micros);
            row.push(q8_overlap);
        }
        table.push_row(method.label(), row);
    }
    TableSet::single(table)
}
