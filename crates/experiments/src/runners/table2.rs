//! **Table II** — parameter-structure comparison: embedding size and
//! hidden-layer size relative to ESMM, plus which training losses each
//! method carries.
//!
//! The relative sizes are *measured* from the constructed models; the loss
//! flags are structural facts of each objective (1 = present).

use dt_core::{registry, Method, TrainConfig};
use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};

use crate::report::{Table, TableSet};
use crate::RunOptions;

const METHODS: [Method; 9] = [
    Method::Esmm,
    Method::Ips,
    Method::MultiIps,
    Method::Escm2Ips,
    Method::DtIps,
    Method::DrJl,
    Method::MultiDr,
    Method::Escm2Dr,
    Method::DtDr,
];

/// `(propensity loss, CTCVR loss, disentangle loss)` per method — the
/// structure of each objective.
fn loss_flags(method: Method) -> (f64, f64, f64) {
    match method {
        Method::Esmm => (1.0, 1.0, 0.0),
        Method::Ips | Method::DrJl => (1.0, 0.0, 0.0),
        Method::MultiIps | Method::MultiDr => (1.0, 0.0, 0.0),
        Method::Escm2Ips | Method::Escm2Dr => (1.0, 1.0, 0.0),
        Method::DtIps | Method::DtDr => (1.0, 0.0, 1.0),
        _ => (0.0, 0.0, 0.0),
    }
}

/// Runs the parameter-structure comparison.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let ds = mechanism_dataset(
        Mechanism::Mnar,
        &MechanismConfig {
            n_users: opts.scale.pick(200, 1000),
            n_items: opts.scale.pick(300, 1500),
            seed: opts.seed,
            ..MechanismConfig::default()
        },
    );
    let cfg = TrainConfig::default();
    let esmm_params = registry::build(Method::Esmm, &ds, &cfg, 0).n_parameters() as f64;

    let mut table = Table::new(
        "table2",
        "Table II — parameters relative to ESMM and training-loss structure",
        &[
            "params (xESMM)",
            "propensity loss",
            "CTCVR loss",
            "disentangle loss",
        ],
    );
    for method in METHODS {
        let params = registry::build(method, &ds, &cfg, 0).n_parameters() as f64;
        let (p, c, d) = loss_flags(method);
        table.push_row(method.label(), vec![params / esmm_params, p, c, d]);
    }
    TableSet::single(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_sizes_follow_table_ii() {
        let set = run(&RunOptions::default());
        let t = set.get("table2").unwrap();
        let rel = |m: &str| t.cell(m, "params (xESMM)").unwrap();
        // Shared-embedding multi-task methods sit at ≈ 1×.
        assert!((rel("Multi-IPS") - 1.0).abs() < 0.2);
        assert!((rel("ESCM2-IPS") - 1.0).abs() < 0.2);
        // Two-stage IPS carries a second embedding table.
        assert!(rel("IPS") > rel("Multi-IPS"));
        // DR-JL carries three.
        assert!(rel("DR-JL") > rel("IPS"));
        // DT-IPS contains the prediction embedding inside the propensity
        // embedding → cheapest of the IPS family.
        assert!(rel("DT-IPS") < rel("IPS"));
        // DT-DR ≈ 2× DT-IPS.
        let ratio = rel("DT-DR") / rel("DT-IPS");
        assert!(ratio > 1.6 && ratio < 2.4, "ratio {ratio}");
        // Loss flags.
        assert_eq!(t.cell("DT-IPS", "disentangle loss"), Some(1.0));
        assert_eq!(t.cell("ESMM", "CTCVR loss"), Some(1.0));
        assert_eq!(t.cell("IPS", "disentangle loss"), Some(0.0));
    }
}
