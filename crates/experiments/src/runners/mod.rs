//! One runner per paper table/figure.

pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod identify;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub(crate) mod util;

use crate::{RunOptions, TableSet};

/// The experiment ids accepted by the `repro` binary.
pub const EXPERIMENTS: [&str; 10] = [
    "table1", "table2", "table3", "table4", "table5", "table6", "figure3", "figure4", "figure5",
    "identify",
];

/// Dispatches an experiment by id.
///
/// # Panics
/// Panics on an unknown id (the binary validates first).
#[must_use]
pub fn run(id: &str, opts: &RunOptions) -> TableSet {
    match id {
        "table1" => table1::run(opts),
        "table2" => table2::run(opts),
        "table3" => table3::run(opts),
        "table4" => table4::run(opts),
        "table5" => table5::run(opts),
        "table6" => table6::run(opts),
        "figure3" => figure3::run(opts),
        "figure4" => figure4::run(opts),
        "figure5" => figure5::run(opts),
        "identify" => identify::run(opts),
        // lint: allow(r3): CLI dispatch — an unknown name is a usage error surfaced to the user
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}
