//! **Table IV** — the main comparison: AUC / NDCG@K / Recall@K of all 22
//! methods on the COAT-, YAHOO- and KUAIREC-like datasets (K = 5, 5, 50).
//!
//! With `--seeds K > 1`, an extra significance table reports the paired
//! t-test p-value of DT-IPS/DT-DR against the best baseline per dataset
//! (the `*` markers of the paper's Table IV).

use dt_core::Method;
use dt_stats::paired_t_test;

use crate::report::{Table, TableSet};
use crate::runners::util::{fit_eval, realworld_datasets, short_name, train_cfg};
use crate::RunOptions;

/// Runs the full method × dataset grid.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let cfg = train_cfg(opts.scale);
    let datasets = realworld_datasets(opts.scale, opts.seed);

    let mut columns = Vec::new();
    for ds in &datasets {
        let n = short_name(ds);
        columns.push(format!("{n} AUC"));
        columns.push(format!("{n} N@K"));
        columns.push(format!("{n} R@K"));
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "table4",
        "Table IV — AUC / NDCG@K / Recall@K on the three real-world-style datasets",
        &col_refs,
    );

    // Per-method, per-dataset, per-seed AUC samples (for the t-tests).
    let mut auc_samples: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); datasets.len()]; Method::ALL.len()];

    for (mi, method) in Method::ALL.into_iter().enumerate() {
        crate::progress!("[table4] {}", method.label());
        let mut row = Vec::new();
        for (di, ds) in datasets.iter().enumerate() {
            let mut mean = (0.0, 0.0, 0.0);
            for k in 0..opts.n_seeds {
                let (eval, _, _) = fit_eval(method, ds, &cfg, opts.seed + k as u64);
                auc_samples[mi][di].push(eval.auc);
                mean.0 += eval.auc;
                mean.1 += eval.ndcg;
                mean.2 += eval.recall;
            }
            let n = opts.n_seeds as f64;
            row.push(mean.0 / n);
            row.push(mean.1 / n);
            row.push(mean.2 / n);
        }
        table.push_row(method.label(), row);
    }

    let mut set = TableSet::single(table);

    // Significance of the DT methods against the best baseline (by mean
    // AUC) on each dataset — only meaningful with repeated seeds.
    if opts.n_seeds >= 2 {
        let cols: Vec<String> = datasets
            .iter()
            .map(|d| format!("{} p-value vs best baseline", short_name(d)))
            .collect();
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut sig = Table::new(
            "table4-significance",
            "Table IV — paired t-test of the DT methods vs the best baseline (AUC)",
            &col_refs,
        );
        let dt_indices: Vec<usize> = Method::ALL
            .iter()
            .enumerate()
            .filter(|(_, m)| matches!(m, Method::DtIps | Method::DtDr))
            .map(|(i, _)| i)
            .collect();
        for &dt_i in &dt_indices {
            let mut cells = Vec::new();
            for di in 0..datasets.len() {
                // Best baseline = highest mean AUC among non-DT methods.
                let best = (0..Method::ALL.len())
                    .filter(|i| !dt_indices.contains(i))
                    .max_by(|&a, &b| {
                        mean(&auc_samples[a][di]).total_cmp(&mean(&auc_samples[b][di]))
                    })
                    // lint: allow(r3): Method::ALL minus the DT methods is never empty
                    .expect("non-empty method set");
                let t = paired_t_test(&auc_samples[dt_i][di], &auc_samples[best][di]);
                cells.push(t.p_value);
            }
            sig.push_row(Method::ALL[dt_i].label(), cells);
        }
        set.push(sig);
    }
    set
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}
