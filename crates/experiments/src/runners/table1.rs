//! **Table I** — unbiasedness of the MCAR/MAR/MNAR propensities under each
//! missing mechanism.
//!
//! The paper states this grid theoretically (✓/✗); our generators expose
//! oracle propensities, so the grid is *measured*: each cell is the
//! relative bias `|E[IPS] − ideal| / ideal` of the IPS estimator using the
//! row's propensity under the column's mechanism. Cells below `1e-6` are
//! the paper's ✓.

use dt_data::{mechanism_dataset, Mechanism, MechanismConfig};
use dt_estimators::{BiasGrid, PropensityKind};

use crate::report::{Table, TableSet};
use crate::RunOptions;

/// Runs the bias grid.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let size = opts.scale.pick(150, 600);
    let mut table = Table::new(
        "table1",
        "Table I — relative IPS bias by propensity × mechanism (✓ ⇔ < 1e-6)",
        &["MCAR", "MAR", "MNAR"],
    );

    let mut cells: Vec<Vec<f64>> = vec![vec![0.0; 3]; 3];
    for (col, mech) in [Mechanism::Mcar, Mechanism::Mar, Mechanism::Mnar]
        .into_iter()
        .enumerate()
    {
        let ds = mechanism_dataset(
            mech,
            &MechanismConfig {
                n_users: size,
                n_items: size + size / 2,
                target_density: 0.08,
                feature_effect: 1.2,
                rating_effect: 2.0,
                seed: opts.seed,
                ..MechanismConfig::default()
            },
        );
        // A fixed imperfect prediction model (errors correlate with
        // ratings, as any real model's do).
        // lint: allow(r3): the generator always attaches ground truth
        let truth = ds.truth.as_ref().expect("generated dataset");
        let predictions = truth.preference.map(|p| 0.8 * p + 0.1);
        let grid = BiasGrid::compute(&ds, &predictions);
        for (row, kind) in PropensityKind::ALL.into_iter().enumerate() {
            let rel = grid
                .rows
                .iter()
                .find(|(k, _, _)| *k == kind)
                .map(|(_, _, rel)| *rel)
                // lint: allow(r3): BiasGrid rows cover PropensityKind::ALL
                .expect("kind present");
            cells[row][col] = rel;
        }
    }
    for (row, kind) in PropensityKind::ALL.into_iter().enumerate() {
        table.push_row(kind.label(), cells[row].clone());
    }
    TableSet::single(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_the_papers_check_marks() {
        let set = run(&RunOptions::default());
        let t = set.get("table1").unwrap();
        let ok = |row: &str, col: &str| t.cell(row, col).unwrap() < 1e-6;
        let mcar = PropensityKind::Mcar.label();
        let mar = PropensityKind::Mar.label();
        let mnar = PropensityKind::Mnar.label();
        // Row 1: MCAR propensity — ✓ only under MCAR.
        assert!(ok(mcar, "MCAR") && !ok(mcar, "MAR") && !ok(mcar, "MNAR"));
        // Row 2: MAR propensity — ✓ under MCAR and MAR.
        assert!(ok(mar, "MCAR") && ok(mar, "MAR") && !ok(mar, "MNAR"));
        // Row 3: MNAR propensity — ✓ everywhere.
        assert!(ok(mnar, "MCAR") && ok(mnar, "MAR") && ok(mnar, "MNAR"));
    }
}
