//! **Identifiability** (extra, §IV-A) — the paper's theory as numbers:
//!
//! 1. Example 1: the max observed-density gap between the two models
//!    (≈ 0 ⇒ indistinguishable).
//! 2. The binary-rating MAR mimic: log-likelihood gap without `z`
//!    (≈ 0) and with `z` (> 0).
//! 3. Theorem 1: separable-logistic MLE parameter-recovery errors.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dt_identify::{example1_models, fit_separable, observed_density, SeparableLogisticModel};
use dt_stats::{expit, logit};

use crate::report::{Table, TableSet};
use crate::RunOptions;

/// Runs the identifiability measurements.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let n = opts.scale.pick(40_000, 200_000);
    let mut set = TableSet::default();

    // --- Example 1 -----------------------------------------------------------
    let (a, b) = example1_models();
    let mut max_gap: f64 = 0.0;
    let mut max_prop_gap: f64 = 0.0;
    for i in 0..=600 {
        let r = -4.0 + 0.02 * f64::from(i);
        max_gap = max_gap.max((observed_density(&a, r) - observed_density(&b, r)).abs());
        max_prop_gap = max_prop_gap.max((a.propensity(r) - b.propensity(r)).abs());
    }
    let mut ex1 = Table::new(
        "identify-example1",
        "Example 1 — identical observed data, wildly different propensities",
        &["max observed-density gap", "max propensity gap"],
    );
    ex1.push_row("models (a) vs (b)", vec![max_gap, max_prop_gap]);
    set.push(ex1);

    // --- MAR mimic & the effect of z ------------------------------------------
    let gen = SeparableLogisticModel {
        c: -2.0,
        alpha: 0.0,
        beta: 4.0,
        pi: 0.5,
    };
    let p1 = expit(gen.c + gen.beta);
    let p0 = expit(gen.c);
    let sel = gen.pi * p1 + (1.0 - gen.pi) * p0;
    let mimic = SeparableLogisticModel {
        c: logit(sel),
        alpha: 0.0,
        beta: 0.0,
        pi: gen.pi * p1 / sel,
    };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let sample = gen.sample(n, &mut rng);
    let gap_without_z = sample.log_likelihood(&gen) - sample.log_likelihood(&mimic);

    let gen_z = SeparableLogisticModel { alpha: 1.2, ..gen };
    let mimic_z = SeparableLogisticModel {
        alpha: 1.2,
        ..mimic
    };
    let sample_z = gen_z.sample(n, &mut StdRng::seed_from_u64(opts.seed + 1));
    let gap_with_z = sample_z.log_likelihood(&gen_z) - sample_z.log_likelihood(&mimic_z);

    let mut mimic_t = Table::new(
        "identify-mimic",
        "MAR mimic — log-likelihood advantage of the true MNAR model",
        &["without z", "with z"],
    );
    mimic_t.push_row("LL(truth) − LL(MAR mimic)", vec![gap_without_z, gap_with_z]);
    set.push(mimic_t);

    // --- Theorem 1 recovery -----------------------------------------------------
    let fitted = fit_separable(&sample_z, opts.scale.pick(600, 1500), 2.0);
    let mut rec = Table::new(
        "identify-recovery",
        "Theorem 1 — separable-logistic MLE recovery (absolute errors)",
        &["c", "alpha", "beta", "pi"],
    );
    rec.push_row("true", vec![gen_z.c, gen_z.alpha, gen_z.beta, gen_z.pi]);
    rec.push_row(
        "fitted",
        vec![fitted.c, fitted.alpha, fitted.beta, fitted.pi],
    );
    rec.push_row(
        "abs error",
        vec![
            (fitted.c - gen_z.c).abs(),
            (fitted.alpha - gen_z.alpha).abs(),
            (fitted.beta - gen_z.beta).abs(),
            (fitted.pi - gen_z.pi).abs(),
        ],
    );
    set.push(rec);
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identify_run_tells_the_right_story() {
        let set = run(&RunOptions::default());
        let ex1 = set.get("identify-example1").unwrap();
        assert!(
            ex1.cell("models (a) vs (b)", "max observed-density gap")
                .unwrap()
                < 1e-12
        );
        assert!(ex1.cell("models (a) vs (b)", "max propensity gap").unwrap() > 0.9);

        let mimic = set.get("identify-mimic").unwrap();
        assert!(
            mimic
                .cell("LL(truth) − LL(MAR mimic)", "without z")
                .unwrap()
                .abs()
                < 1e-9
        );
        assert!(mimic.cell("LL(truth) − LL(MAR mimic)", "with z").unwrap() > 0.01);

        let rec = set.get("identify-recovery").unwrap();
        assert!(rec.cell("abs error", "beta").unwrap() < 0.5);
        assert!(rec.cell("abs error", "pi").unwrap() < 0.05);
    }
}
