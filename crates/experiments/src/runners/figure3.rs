//! **Figure 3** — MSE and MAE of the IPS- and DR-style estimators as the
//! noise floor ε of eq. (11) varies (semi-synthetic pipeline, ρ = 1).

use dt_core::{registry, Method, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{Table, TableSet};
use crate::runners::table3::semi_eval;
use crate::runners::util::semisynthetic_dataset;
use crate::{RunOptions, Scale};

/// The ε grid.
pub const EPSILONS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

const METHODS: [Method; 5] = [
    Method::Mf,
    Method::Ips,
    Method::Dr,
    Method::DtIps,
    Method::DtDr,
];

/// Runs the ε sweep.
#[must_use]
pub fn run(opts: &RunOptions) -> TableSet {
    let cfg = match opts.scale {
        Scale::Quick => TrainConfig {
            epochs: 12,
            batch_size: 256,
            emb_dim: 16,
            l2: 1e-4,
            ..TrainConfig::default()
        },
        Scale::Paper => TrainConfig {
            epochs: 30,
            batch_size: 2048,
            emb_dim: 32,
            l2: 1e-4,
            ..TrainConfig::default()
        },
    };
    let max_users = opts.scale.pick(120, 943);
    let columns: Vec<String> = EPSILONS.iter().map(|e| format!("eps={e}")).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut mse_t = Table::new("figure3-mse", "Figure 3 — MSE vs η by ε (ρ = 1)", &col_refs);
    let mut mae_t = Table::new("figure3-mae", "Figure 3 — MAE vs η by ε (ρ = 1)", &col_refs);

    let datasets: Vec<_> = EPSILONS
        .iter()
        .map(|&eps| semisynthetic_dataset(opts.scale, 1.0, eps, opts.seed))
        .collect();

    for method in METHODS {
        let mut mse_row = Vec::new();
        let mut mae_row = Vec::new();
        for ds in &datasets {
            let mut model = registry::build(method, ds, &cfg, opts.seed);
            let mut rng = StdRng::seed_from_u64(opts.seed);
            model.fit(ds, &mut rng);
            let (mse, mae, _) = semi_eval(model.as_ref(), ds, 50, max_users);
            mse_row.push(mse);
            mae_row.push(mae);
        }
        mse_t.push_row(method.label(), mse_row);
        mae_t.push_row(method.label(), mae_row);
    }
    let mut set = TableSet::default();
    set.push(mse_t);
    set.push(mae_t);
    set
}
