//! # dt-experiments
//!
//! The reproduction harness: one runner per table and figure of
//! *"Uncovering the Propensity Identification Problem in Debiased
//! Recommendations"* (ICDE 2024), returning structured results and
//! rendering markdown/CSV. The `repro` binary drives them:
//!
//! ```sh
//! cargo run --release -p dt-experiments --bin repro -- table3 --quick
//! cargo run --release -p dt-experiments --bin repro -- all --out results/
//! ```
//!
//! Every runner accepts a [`Scale`]: `Quick` sizes each experiment to a
//! couple of minutes on one laptop core (used by CI and the benches);
//! `Paper` restores the paper's dataset dimensions.

#![forbid(unsafe_code)]

pub mod chart;
pub mod report;
pub mod runners;
pub mod sweep;

/// Progress telemetry for the long runners: one line to stderr per unit of
/// work. Unlike `eprintln!` this swallows a closed-pipe error instead of
/// panicking, and it keeps console printing out of library code (lint R5).
macro_rules! progress {
    ($($arg:tt)*) => {{
        use ::std::io::Write as _;
        let _ = ::std::writeln!(::std::io::stderr().lock(), $($arg)*);
    }};
}
pub(crate) use progress;

pub use chart::ascii_chart;
pub use report::{Table, TableSet};

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down datasets / budgets (minutes on one core).
    Quick,
    /// The paper's dataset dimensions (hours).
    Paper,
}

impl Scale {
    /// Interpolates a size knob.
    #[must_use]
    pub fn pick(&self, quick: usize, paper: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Common run options for all experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Sizing.
    pub scale: Scale,
    /// Base RNG seed.
    pub seed: u64,
    /// Seeds (repetitions) for mean ± std columns where applicable.
    pub n_seeds: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 0,
            n_seeds: 1,
        }
    }
}
