//! Result tables: structured records with markdown / CSV / JSON rendering.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One result table (a paper table, or one panel of a figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Identifier, e.g. `table3-mse`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers (the first column is the row label).
    pub columns: Vec<String>,
    /// Rows: label + one cell per column.
    pub rows: Vec<TableRow>,
}

/// One row of a [`Table`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRow {
    /// Row label (method name, parameter value, …).
    pub label: String,
    /// Cells, aligned with [`Table::columns`]. `NaN` (missing metric) is
    /// serialised as JSON `null` and restored on deserialisation.
    #[serde(with = "nan_as_null")]
    pub cells: Vec<f64>,
}

mod nan_as_null {
    use serde::de::Deserializer;
    use serde::ser::{SerializeSeq, Serializer};
    use serde::Deserialize;

    pub fn serialize<S: Serializer>(cells: &[f64], s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(cells.len()))?;
        for &v in cells {
            if v.is_nan() {
                seq.serialize_element(&Option::<f64>::None)?;
            } else {
                seq.serialize_element(&Some(v))?;
            }
        }
        seq.end()
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<f64>, D::Error> {
        let raw: Vec<Option<f64>> = Vec::deserialize(d)?;
        Ok(raw.into_iter().map(|v| v.unwrap_or(f64::NAN)).collect())
    }
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<f64>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "push_row: {} cells vs {} columns",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(TableRow {
            label: label.into(),
            cells,
        });
    }

    /// Looks up a cell by row label and column name.
    #[must_use]
    pub fn cell(&self, row_label: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|r| r.label == row_label)?;
        row.cells.get(col).copied()
    }

    /// Renders GitHub-flavoured markdown.
    #[must_use]
    pub fn markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {}\n", self.title);
        let _ = write!(s, "| |");
        for c in &self.columns {
            let _ = write!(s, " {c} |");
        }
        let _ = writeln!(s);
        let _ = write!(s, "|---|");
        for _ in &self.columns {
            let _ = write!(s, "---|");
        }
        let _ = writeln!(s);
        for row in &self.rows {
            let _ = write!(s, "| {} |", row.label);
            for v in &row.cells {
                let _ = write!(s, " {} |", fmt_cell(*v));
            }
            let _ = writeln!(s);
        }
        s
    }

    /// Renders CSV (row label in the first column).
    #[must_use]
    pub fn csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "label,{}", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.cells.iter().map(|v| fmt_cell(*v)).collect();
            let _ = writeln!(s, "{},{}", row.label, cells.join(","));
        }
        s
    }
}

fn fmt_cell(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.fract() == 0.0 && v.abs() < 1e9 {
        format!("{v:.0}")
    } else if v.abs() < 0.001 {
        format!("{v:.2e}")
    } else {
        format!("{v:.4}")
    }
}

/// A group of tables produced by one experiment run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableSet {
    /// The tables, in presentation order.
    pub tables: Vec<Table>,
}

impl TableSet {
    /// One-table convenience constructor.
    #[must_use]
    pub fn single(table: Table) -> Self {
        Self {
            tables: vec![table],
        }
    }

    /// Adds a table.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Finds a table by id.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.id == id)
    }

    /// All tables as one markdown document.
    #[must_use]
    pub fn markdown(&self) -> String {
        self.tables
            .iter()
            .map(Table::markdown)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Writes markdown + per-table CSV + one JSON record into `dir`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path, stem: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{stem}.md")), self.markdown())?;
        for t in &self.tables {
            fs::write(dir.join(format!("{stem}-{}.csv", t.id)), t.csv())?;
        }
        // lint: allow(r3): serialising plain Vec/f64 tables is infallible
        let json = serde_json::to_string_pretty(self).expect("tables serialise");
        fs::write(dir.join(format!("{stem}.json")), json)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", "A Title", &["x", "y"]);
        t.push_row("row1", vec![1.0, 0.5]);
        t.push_row("row2", vec![f64::NAN, 1234.5]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().markdown();
        assert!(md.contains("### A Title"));
        assert!(md.contains("| row1 | 1 | 0.5000 |"));
        assert!(md.contains("| row2 | - | 1234 |"), "{md}");
    }

    #[test]
    fn csv_shape() {
        let csv = sample().csv();
        assert!(csv.starts_with("label,x,y\n"));
        assert!(csv.contains("row1,1,0.5000"));
    }

    #[test]
    fn cell_lookup() {
        let t = sample();
        assert_eq!(t.cell("row1", "y"), Some(0.5));
        assert_eq!(t.cell("row1", "nope"), None);
        assert_eq!(t.cell("nope", "y"), None);
    }

    #[test]
    #[should_panic(expected = "push_row")]
    fn ragged_row_panics() {
        let mut t = Table::new("t", "t", &["a"]);
        t.push_row("r", vec![1.0, 2.0]);
    }

    #[test]
    fn tableset_roundtrips_through_json() {
        let set = TableSet::single(sample());
        let json = serde_json::to_string(&set).unwrap();
        let back: TableSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tables[0].rows.len(), 2);
        assert!(back.get("t").is_some());
    }

    #[test]
    fn write_to_disk() {
        let dir = std::env::temp_dir().join("disrec-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        TableSet::single(sample()).write_to(&dir, "unit").unwrap();
        assert!(dir.join("unit.md").exists());
        assert!(dir.join("unit-t.csv").exists());
        assert!(dir.join("unit.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
