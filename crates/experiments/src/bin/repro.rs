//! `repro` — regenerate any table or figure of the paper.
//!
//! ```text
//! repro <experiment | all> [--quick | --paper] [--seed N] [--seeds K] [--out DIR]
//! ```
//!
//! Experiments: table1 table2 table3 table4 table5 table6 figure3 figure4
//! figure5 identify. Results are printed as markdown and written (md +
//! CSV + JSON) under `--out` (default `results/`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use dt_experiments::runners::{self, EXPERIMENTS};
use dt_experiments::{RunOptions, Scale};

fn usage() -> String {
    format!(
        "usage: repro <experiment|all> [--quick|--paper] [--seed N] [--seeds K] [--out DIR]\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }
    let target = args[0].clone();
    let mut opts = RunOptions::default();
    let mut out = PathBuf::from("results");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.scale = Scale::Quick,
            "--paper" | "--full" => opts.scale = Scale::Paper,
            "--seed" => {
                i += 1;
                opts.seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("--seed needs an integer\n{}", usage());
                        return ExitCode::from(2);
                    }
                };
            }
            "--seeds" => {
                i += 1;
                opts.n_seeds = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(v) if v >= 1 => v,
                    _ => {
                        eprintln!("--seeds needs a positive integer\n{}", usage());
                        return ExitCode::from(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) => PathBuf::from(p),
                    None => {
                        eprintln!("--out needs a path\n{}", usage());
                        return ExitCode::from(2);
                    }
                };
            }
            other => {
                eprintln!("unknown flag {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let ids: Vec<&str> = if target == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&target.as_str()) {
        vec![Box::leak(target.clone().into_boxed_str()) as &str]
    } else {
        eprintln!("unknown experiment {target:?}\n{}", usage());
        return ExitCode::from(2);
    };

    for id in ids {
        eprintln!("== running {id} ({:?}, seed {}) ==", opts.scale, opts.seed);
        let t0 = Instant::now();
        let set = runners::run(id, &opts);
        let secs = t0.elapsed().as_secs_f64();
        println!("{}", set.markdown());
        if id.starts_with("figure") {
            for t in &set.tables {
                println!("{}", dt_experiments::ascii_chart(t, 12));
            }
        }
        if let Err(e) = set.write_to(&out, id) {
            eprintln!("failed to write results for {id}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "== {id} done in {secs:.1}s → {}/{id}.md ==\n",
            out.display()
        );
    }
    ExitCode::SUCCESS
}
