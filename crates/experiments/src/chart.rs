//! Plain-text line charts for the figure experiments.
//!
//! The paper's Figures 3–5 are line plots; the harness renders each result
//! table as an ASCII chart so the *shape* (who wins, where lines cross) is
//! visible directly in the markdown reports without a plotting stack.

use crate::report::Table;

/// Renders a table as an ASCII chart: one series per row, columns on the
/// x-axis. `height` is the number of plot rows (min 4).
///
/// NaN cells are skipped. Returns a fenced code block ready for markdown.
#[must_use]
pub fn ascii_chart(table: &Table, height: usize) -> String {
    let height = height.max(4);
    let n_cols = table.columns.len();
    if n_cols == 0 || table.rows.is_empty() {
        return String::from("```\n(empty chart)\n```\n");
    }

    let values: Vec<f64> = table
        .rows
        .iter()
        .flat_map(|r| r.cells.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    if values.is_empty() {
        return String::from("```\n(no finite values)\n```\n");
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);

    // One marker char per series.
    const MARKS: &[char] = &['o', 'x', '*', '+', '#', '@', '%', '&', '$', '~'];
    let col_width = 6usize;
    let plot_w = n_cols * col_width;
    let mut grid = vec![vec![' '; plot_w]; height];

    for (si, row) in table.rows.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for (ci, &v) in row.cells.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let y = ((v - lo) / span * (height - 1) as f64).round() as usize;
            let y = height - 1 - y.min(height - 1);
            let x = ci * col_width + col_width / 2;
            // Collisions keep the earlier series' mark visible next to it.
            if grid[y][x] == ' ' {
                grid[y][x] = mark;
            } else if x + 1 < plot_w && grid[y][x + 1] == ' ' {
                grid[y][x + 1] = mark;
            }
        }
    }

    let mut out = String::from("```\n");
    out.push_str(&format!("{}\n", table.title));
    for (yi, line) in grid.iter().enumerate() {
        let label = if yi == 0 {
            format!("{hi:>9.4} ")
        } else if yi == height - 1 {
            format!("{lo:>9.4} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&line.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(plot_w));
    out.push('\n');
    out.push_str(&" ".repeat(11));
    for c in &table.columns {
        let c: String = c.chars().take(col_width - 1).collect();
        out.push_str(&format!("{c:<col_width$}"));
    }
    out.push('\n');
    // Legend.
    for (si, row) in table.rows.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", MARKS[si % MARKS.len()], row.label));
    }
    out.push_str("```\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Table;

    fn sample() -> Table {
        let mut t = Table::new("f", "A Figure", &["x=1", "x=2", "x=3"]);
        t.push_row("up", vec![0.1, 0.5, 0.9]);
        t.push_row("down", vec![0.9, 0.5, 0.1]);
        t
    }

    #[test]
    fn renders_all_series_and_legend() {
        let chart = ascii_chart(&sample(), 8);
        assert!(chart.starts_with("```"));
        assert!(chart.contains("A Figure"));
        assert!(chart.contains("o = up"));
        assert!(chart.contains("x = down"));
        // Extremes appear as axis labels.
        assert!(chart.contains("0.9000"));
        assert!(chart.contains("0.1000"));
    }

    #[test]
    fn monotone_series_has_marks_on_distinct_rows() {
        let chart = ascii_chart(&sample(), 8);
        let plot_lines: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        // The rising series' marks must not all share a row.
        let rows_with_o: usize = plot_lines.iter().filter(|l| l.contains('o')).count();
        assert!(rows_with_o >= 2, "{chart}");
    }

    #[test]
    fn nan_cells_are_skipped() {
        let mut t = Table::new("f", "NaNs", &["a", "b"]);
        t.push_row("r", vec![f64::NAN, 1.0]);
        let chart = ascii_chart(&t, 6);
        assert!(chart.contains("r"));
    }

    #[test]
    fn empty_table_is_handled() {
        let t = Table::new("f", "Empty", &["a"]);
        let chart = ascii_chart(&t, 6);
        assert!(chart.contains("empty chart"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut t = Table::new("f", "Flat", &["a", "b"]);
        t.push_row("r", vec![0.5, 0.5]);
        let chart = ascii_chart(&t, 6);
        assert!(chart.contains("0.5000"));
    }
}
