//! The item-tree parser: a brace-matched view of one source file.
//!
//! The flow rules (R8–R10) need more than a token stream: they need to know
//! where each function begins and ends, which `impl` block it sits in, what
//! its parameters and return type look like, and where its body's braces
//! match. This module builds exactly that — an *item tree* — on top of the
//! comment-free token stream from [`crate::lexer`]:
//!
//! * every `fn` item with its name, enclosing `impl` self-type, signature
//!   hints (parameter names with coarse type heads, return-type head) and
//!   the token range of its `{ … }` body,
//! * a count of items seen (`fn`/`impl`/`mod`/`struct`/`enum`/`trait`),
//!   reported in the `--stats` block.
//!
//! Like the lexer, the parser is total: it never panics and always
//! terminates — malformed input degrades to fewer recognised items, never
//! to a crash. Braces inside strings/chars/comments are already hidden by
//! the lexer, so brace matching over the code tokens is exact.

use crate::lexer::{TokKind, Token};

/// One parameter of a parsed function.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (first identifier of the pattern; `self` for receivers).
    pub name: String,
    /// Coarse type head: the last identifier of the type's leading path
    /// before any generics (`&ScoringIndex` → `ScoringIndex`,
    /// `&mut Vec<u32>` → `Vec`). `None` when the type is not path-shaped.
    pub ty: Option<String>,
}

/// One `fn` item with its span and signature hints.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Bare function name.
    pub name: String,
    /// Self-type of the enclosing `impl` block, when any
    /// (`impl Trait for Type` records `Type`).
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (header line for
    /// body-less trait declarations).
    pub end_line: u32,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Coarse return-type head (`-> Tensor` → `Tensor`; `Self` is
    /// substituted with the impl type when known).
    pub ret_ty: Option<String>,
    /// Token-index range `(open_brace, close_brace)` of the body in the
    /// comment-free code slice; `None` for trait method declarations.
    pub body: Option<(usize, usize)>,
}

impl FnDecl {
    /// `Type::name` when inside an impl, else the bare name.
    #[must_use]
    pub fn qual(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The item tree of one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Every parsed `fn` item, in source order.
    pub fns: Vec<FnDecl>,
    /// Count of items recognised (`fn`, `impl`, `mod`, `struct`, `enum`,
    /// `trait`).
    pub items: usize,
}

/// Pairs every `{` with its matching `}` by token index. Unmatched braces
/// map to `None`; an unmatched `}` is ignored (forgiving, like the lexer).
#[must_use]
pub fn match_braces(code: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; code.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        match t.text.as_str() {
            "{" => stack.push(i),
            "}" => {
                if let Some(open) = stack.pop() {
                    out[open] = Some(i);
                }
            }
            _ => {}
        }
    }
    out
}

/// Parses the item tree of a comment-free code token slice.
#[must_use]
pub fn parse(code: &[Token]) -> ItemTree {
    let braces = match_braces(code);
    let mut tree = ItemTree::default();
    // Stack of `(self_ty, close_brace_idx)` for open impl blocks.
    let mut impls: Vec<(Option<String>, usize)> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        while impls.last().is_some_and(|&(_, end)| i > end) {
            impls.pop();
        }
        let t = &code[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                tree.items += 1;
                if let Some((ty, open)) = parse_impl_header(code, i) {
                    if let Some(Some(close)) = braces.get(open).copied() {
                        impls.push((ty, close));
                    }
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                tree.items += 1;
                let self_ty = impls.last().and_then(|(ty, _)| ty.clone());
                if let Some((decl, next)) = parse_fn(code, i, &braces, self_ty) {
                    tree.fns.push(decl);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "mod" | "struct" | "enum" | "trait" => {
                tree.items += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    tree
}

/// At an `impl` keyword: extracts the self-type head and the index of the
/// body's opening brace. `impl<T> Trait for Type<T> where …` records
/// `Type`; `impl Type` records `Type`.
fn parse_impl_header(code: &[Token], at: usize) -> Option<(Option<String>, usize)> {
    let mut angle = 0i32;
    let mut path_last: Option<String> = None;
    let mut in_where = false; // `where` bounds are not type heads
    let mut j = at + 1;
    while j < code.len() {
        let t = &code[j];
        match t.text.as_str() {
            "{" if angle <= 0 => {
                return Some((path_last, j));
            }
            ";" if angle <= 0 => return None, // e.g. `impl Trait for Ty;` — no body
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "for" if angle <= 0 => {
                // The trait path collected so far is not the self type.
                path_last = None;
            }
            "where" if angle <= 0 => in_where = true,
            _ if t.kind == TokKind::Ident && angle <= 0 && !in_where => {
                path_last = Some(t.text.clone());
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// At a `fn` keyword: parses the header and body span. Returns the decl
/// plus the index to continue scanning from (inside the body, so nested
/// items are still visited).
fn parse_fn(
    code: &[Token],
    at: usize,
    braces: &[Option<usize>],
    self_ty: Option<String>,
) -> Option<(FnDecl, usize)> {
    let name_tok = code.get(at + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None; // `fn(` function-pointer type, not an item
    }
    // Signature parens, skipping generics between name and `(`.
    let mut j = at + 2;
    let mut angle = 0i32;
    let open_paren = loop {
        let t = code.get(j)?;
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle = (angle - 1).max(0),
            "(" if angle <= 0 => break j,
            "{" | ";" => return None, // malformed header
            _ => {}
        }
        j += 1;
    };
    let close_paren = match_paren(code, open_paren)?;
    let params = parse_params(code, open_paren, close_paren, self_ty.as_deref());

    // Return type and body/terminator.
    let mut ret_ty = None;
    let mut k = close_paren + 1;
    let mut body = None;
    let mut in_ret = false;
    let mut ret_toks: Vec<&Token> = Vec::new();
    let mut angle = 0i32;
    while let Some(t) = code.get(k) {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" if !(k > 0 && code[k - 1].text == "-") => angle = (angle - 1).max(0),
            ">" => {} // the `>` of `->`
            "-" if code.get(k + 1).is_some_and(|n| n.text == ">") => {
                in_ret = true;
                k += 2;
                continue;
            }
            "where" if angle <= 0 => in_ret = false,
            "{" if angle <= 0 => {
                body = Some(k);
                break;
            }
            ";" if angle <= 0 => break,
            _ => {
                if in_ret && angle <= 0 {
                    ret_toks.push(t);
                }
            }
        }
        k += 1;
    }
    if !ret_toks.is_empty() {
        ret_ty = type_head(&ret_toks);
        if ret_ty.as_deref() == Some("Self") {
            ret_ty.clone_from(&self_ty);
        }
    }
    let (span, end_line, next) = match body {
        Some(open) => {
            let close = braces.get(open).copied().flatten();
            match close {
                Some(c) => (Some((open, c)), code[c].line, open + 1),
                None => (
                    Some((open, code.len().saturating_sub(1))),
                    code[code.len() - 1].line,
                    open + 1,
                ),
            }
        }
        None => (None, name_tok.line, k + 1),
    };
    Some((
        FnDecl {
            name: name_tok.text.clone(),
            self_ty,
            line: code[at].line,
            end_line,
            params,
            ret_ty,
            body: span,
        },
        next,
    ))
}

/// Matches a `(` at `open` to its `)` by scanning forward.
fn match_paren(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in code.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses the parameter list between `open`/`close` parens: one
/// [`Param`] per top-level comma segment.
fn parse_params(code: &[Token], open: usize, close: usize, self_ty: Option<&str>) -> Vec<Param> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut seg: Vec<&Token> = Vec::new();
    for t in &code[open + 1..close] {
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "," if depth <= 0 => {
                if let Some(p) = parse_param(&seg, self_ty) {
                    out.push(p);
                }
                seg.clear();
                continue;
            }
            _ => {}
        }
        seg.push(t);
    }
    if let Some(p) = parse_param(&seg, self_ty) {
        out.push(p);
    }
    out
}

/// One `name: Type` (or receiver) segment → a [`Param`].
fn parse_param(seg: &[&Token], self_ty: Option<&str>) -> Option<Param> {
    if seg.is_empty() {
        return None;
    }
    // Receiver forms: `self`, `&self`, `&mut self`, `mut self`, `self: …`.
    if seg
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")
        .is_some_and(|t| t.text == "self")
    {
        return Some(Param {
            name: "self".to_owned(),
            ty: self_ty.map(str::to_owned),
        });
    }
    let colon = seg.iter().position(|t| t.text == ":");
    let name = seg[..colon.unwrap_or(seg.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")?
        .text
        .clone();
    let ty = colon.and_then(|c| type_head(&seg[c + 1..]));
    Some(Param { name, ty })
}

/// Coarse type head of a type-token sequence: skips references, `mut`,
/// lifetimes, `dyn`/`impl`, then takes the last identifier of the leading
/// path before any generics. Tuples, slices and fn-pointers yield `None`.
fn type_head(toks: &[&Token]) -> Option<String> {
    let mut last: Option<String> = None;
    for t in toks {
        match t.text.as_str() {
            "&" | "mut" | "dyn" | "impl" => continue,
            ":" => continue, // path separator halves
            "<" | "(" | "[" | "," | ";" | "+" => break,
            _ if t.kind == TokKind::Lifetime => continue,
            _ if t.kind == TokKind::Ident => last = Some(t.text.clone()),
            _ => break,
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code_of(src: &str) -> Vec<Token> {
        lex(src).into_iter().filter(|t| !t.is_comment()).collect()
    }

    fn parse_src(src: &str) -> ItemTree {
        parse(&code_of(src))
    }

    #[test]
    fn free_fn_with_params_and_ret() {
        let t = parse_src("pub fn f(x: &Tensor, n: usize) -> Tensor { x.clone() }");
        assert_eq!(t.fns.len(), 1);
        let f = &t.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.self_ty, None);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "x");
        assert_eq!(f.params[0].ty.as_deref(), Some("Tensor"));
        assert_eq!(f.params[1].ty.as_deref(), Some("usize"));
        assert_eq!(f.ret_ty.as_deref(), Some("Tensor"));
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_methods_carry_the_self_type() {
        let t = parse_src(
            "impl TopKEngine {\n  pub fn retrieve_into(&self, k: usize) {}\n}\n\
             impl fmt::Display for Finding {\n  fn fmt(&self) -> Self {}\n}",
        );
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].qual(), "TopKEngine::retrieve_into");
        assert_eq!(t.fns[0].params[0].name, "self");
        assert_eq!(t.fns[0].params[0].ty.as_deref(), Some("TopKEngine"));
        assert_eq!(t.fns[1].qual(), "Finding::fmt");
        // `-> Self` resolves to the impl type.
        assert_eq!(t.fns[1].ret_ty.as_deref(), Some("Finding"));
    }

    #[test]
    fn generic_impls_and_where_clauses() {
        let t = parse_src(
            "impl<T: Clone> Wrapper<T> where T: Send {\n  fn get(&self) -> T { todo!() }\n}",
        );
        assert_eq!(t.fns[0].qual(), "Wrapper::get");
    }

    #[test]
    fn body_spans_are_brace_matched() {
        let src = "fn a() {\n  if x { y(); }\n}\nfn b() {}";
        let t = parse_src(src);
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].line, 1);
        assert_eq!(t.fns[0].end_line, 3);
        assert_eq!(t.fns[1].line, 4);
    }

    #[test]
    fn trait_decls_without_bodies() {
        let t = parse_src("trait T {\n  fn required(&self) -> usize;\n  fn provided(&self) {}\n}");
        assert_eq!(t.fns.len(), 2);
        assert!(t.fns[0].body.is_none());
        assert!(t.fns[1].body.is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let t = parse_src("fn apply(f: fn(usize) -> usize) -> usize { f(1) }");
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "apply");
    }

    #[test]
    fn item_counts_cover_the_kinds() {
        let t = parse_src("mod m { struct S; enum E {} trait T {} impl S { fn f() {} } }");
        assert_eq!(t.items, 5 + 1); // mod, struct, enum, trait, impl, fn
        assert_eq!(t.fns.len(), 1);
    }

    #[test]
    fn malformed_input_degrades_without_panicking() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "fn f(x: ) -> {",
            "impl X fn f",
            "fn f() { unclosed",
            "} } fn g() {}",
        ] {
            let _ = parse_src(src);
        }
        // The trailing well-formed item is still found after garbage.
        let t = parse_src("} } fn g() {}");
        assert_eq!(t.fns.len(), 1);
    }

    #[test]
    fn generic_fn_headers() {
        let t = parse_src("pub fn max_of<T: PartialOrd>(a: T, b: T) -> T { a }");
        assert_eq!(t.fns[0].name, "max_of");
        assert_eq!(t.fns[0].params.len(), 2);
    }
}
