//! A small hand-rolled Rust lexer.
//!
//! `dt-lint` must run in environments where the crates.io registry is
//! unreachable, so it cannot lean on `syn` or `clippy_utils`. The rules in
//! [`crate::rules`] only need a *token-accurate* view of a source file —
//! enough to tell an identifier from the inside of a string literal or a
//! comment — not a parse tree. This lexer provides exactly that: it
//! tokenises identifiers, punctuation, all Rust literal forms (strings, raw
//! strings, byte strings, char literals, numbers) and comments (line,
//! nested block, doc), attaching a 1-based line number to every token.
//!
//! It is intentionally forgiving: unterminated literals or comments at end
//! of file produce a final token rather than an error, so a half-edited
//! file still lints instead of crashing the gate.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `fn`, …).
    Ident,
    /// Single punctuation character (`.`, `!`, `{`, …).
    Punct,
    /// String literal, including byte strings (`"…"`, `b"…"`).
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStr,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (only coarse: digits plus ident-ish suffix).
    Num,
    /// Non-doc line comment (`// …`), text includes the `//`.
    LineComment,
    /// Doc line comment (`/// …` or `//! …`).
    LineDoc,
    /// Non-doc block comment (`/* … */`), nesting handled.
    BlockComment,
    /// Doc block comment (`/** … */` or `/*! … */`).
    BlockDoc,
}

/// One token with its source text and 1-based starting line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The exact source text, comment markers and quotes included.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// `true` for comment tokens of any flavour.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::LineDoc | TokKind::BlockComment | TokKind::BlockDoc
        )
    }

    /// `true` for doc comments (`///`, `//!`, `/** */`, `/*! */`).
    #[must_use]
    pub fn is_doc(&self) -> bool {
        matches!(self.kind, TokKind::LineDoc | TokKind::BlockDoc)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn slice(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consumes to end of line (exclusive of the newline).
    fn eat_line(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
    }

    /// Consumes a `/* … */` comment body (after the opener), nesting-aware.
    fn eat_block_comment(&mut self) {
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.pos += 2;
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.pos += 2;
                    depth -= 1;
                }
                (Some(_), _) => {
                    let _ = self.bump();
                }
                (None, _) => break, // unterminated: tolerate
            }
        }
    }

    /// Consumes a quoted literal body after the opening quote, honouring
    /// `\` escapes. `quote` is `"` or `'`.
    fn eat_quoted(&mut self, quote: u8) {
        while let Some(b) = self.bump() {
            if b == b'\\' {
                let _ = self.bump();
            } else if b == quote {
                break;
            }
        }
    }

    /// Consumes a raw string body after the `r`/`br`, i.e. `#…#"…"#…#`.
    fn eat_raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            self.pos += 1;
            hashes += 1;
        }
        if self.peek(0) != Some(b'"') {
            return; // not actually a raw string; tolerate
        }
        let _ = self.bump();
        'body: while let Some(b) = self.bump() {
            if b == b'"' {
                for k in 0..hashes {
                    if self.peek(k) != Some(b'#') {
                        continue 'body;
                    }
                }
                self.pos += hashes;
                break;
            }
        }
    }

    fn ident_like(b: u8) -> bool {
        b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
    }
}

/// Tokenises `src`. Never fails: malformed input degrades to best-effort
/// tokens so a broken file still produces findings instead of a crash.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(b) = lx.peek(0) {
        let start = lx.pos;
        let line = lx.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                let _ = lx.bump();
            }
            b'/' if lx.peek(1) == Some(b'/') => {
                let third = lx.peek(2);
                // `////…` is a plain comment by rustdoc convention.
                let doc = (third == Some(b'/') && lx.peek(3) != Some(b'/')) || third == Some(b'!');
                lx.eat_line();
                out.push(Token {
                    kind: if doc {
                        TokKind::LineDoc
                    } else {
                        TokKind::LineComment
                    },
                    text: lx.slice(start),
                    line,
                });
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                let third = lx.peek(2);
                // `/**/` is empty, not doc; `/***` is plain by convention.
                let doc =
                    (third == Some(b'*') && lx.peek(3) != Some(b'*') && lx.peek(3) != Some(b'/'))
                        || third == Some(b'!');
                lx.pos += 2;
                lx.eat_block_comment();
                out.push(Token {
                    kind: if doc {
                        TokKind::BlockDoc
                    } else {
                        TokKind::BlockComment
                    },
                    text: lx.slice(start),
                    line,
                });
            }
            b'"' => {
                let _ = lx.bump();
                lx.eat_quoted(b'"');
                out.push(Token {
                    kind: TokKind::Str,
                    text: lx.slice(start),
                    line,
                });
            }
            b'\'' => {
                let _ = lx.bump();
                // Distinguish lifetimes from char literals: `'ident` not
                // closed by `'` is a lifetime; everything else is a char.
                if lx.peek(0).is_some_and(Lexer::ident_like) && lx.peek(0) != Some(b'\\') {
                    let mut k = 1;
                    while lx.peek(k).is_some_and(Lexer::ident_like) {
                        k += 1;
                    }
                    if lx.peek(k) == Some(b'\'') {
                        lx.pos += k + 1;
                        out.push(Token {
                            kind: TokKind::Char,
                            text: lx.slice(start),
                            line,
                        });
                    } else {
                        lx.pos += k;
                        out.push(Token {
                            kind: TokKind::Lifetime,
                            text: lx.slice(start),
                            line,
                        });
                    }
                } else {
                    lx.eat_quoted(b'\'');
                    out.push(Token {
                        kind: TokKind::Char,
                        text: lx.slice(start),
                        line,
                    });
                }
            }
            b'r' | b'b' if is_raw_or_byte_literal(&lx) => {
                // r"…", r#"…"#, b"…", br"…", b'…'
                let mut k = 1;
                if b == b'b' && lx.peek(1) == Some(b'r') {
                    k = 2;
                }
                let quote_or_hash = lx.peek(k);
                lx.pos += k;
                match quote_or_hash {
                    Some(b'\'') => {
                        let _ = lx.bump();
                        lx.eat_quoted(b'\'');
                        out.push(Token {
                            kind: TokKind::Char,
                            text: lx.slice(start),
                            line,
                        });
                    }
                    Some(b'"') if k == 1 && b == b'b' => {
                        let _ = lx.bump();
                        lx.eat_quoted(b'"');
                        out.push(Token {
                            kind: TokKind::Str,
                            text: lx.slice(start),
                            line,
                        });
                    }
                    _ => {
                        lx.eat_raw_string();
                        out.push(Token {
                            kind: TokKind::RawStr,
                            text: lx.slice(start),
                            line,
                        });
                    }
                }
            }
            b'0'..=b'9' => {
                while lx
                    .peek(0)
                    .is_some_and(|c| Lexer::ident_like(c) || c == b'.')
                {
                    // `1..2` range: stop before `..`.
                    if lx.peek(0) == Some(b'.') && lx.peek(1) == Some(b'.') {
                        break;
                    }
                    lx.pos += 1;
                }
                out.push(Token {
                    kind: TokKind::Num,
                    text: lx.slice(start),
                    line,
                });
            }
            _ if Lexer::ident_like(b) => {
                while lx.peek(0).is_some_and(Lexer::ident_like) {
                    lx.pos += 1;
                }
                out.push(Token {
                    kind: TokKind::Ident,
                    text: lx.slice(start),
                    line,
                });
            }
            _ => {
                let _ = lx.bump();
                out.push(Token {
                    kind: TokKind::Punct,
                    text: lx.slice(start),
                    line,
                });
            }
        }
    }
    out
}

/// `true` when the `r`/`b` at the cursor starts a literal rather than an
/// identifier (`radius`, `beta`, …). A raw identifier `r#match` is *not*
/// a literal: `r#` followed by an identifier character is the raw-ident
/// prefix, whereas raw strings continue with `"` or more `#`s.
fn is_raw_or_byte_literal(lx: &Lexer<'_>) -> bool {
    let b = lx.peek(0);
    match (b, lx.peek(1)) {
        (Some(b'r'), Some(b'"')) => true,
        (Some(b'r'), Some(b'#')) => matches!(lx.peek(2), Some(b'"' | b'#')),
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(lx.peek(2), Some(b'"' | b'#')),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("foo.unwrap()");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "unwrap".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "unsafe { panic!() }";"#);
        assert!(toks.iter().all(|(_, t)| t != "unsafe" && t != "panic"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; x"###);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::RawStr));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("x"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
        // The `b` prefix must not leak as an identifier.
        assert!(toks
            .iter()
            .all(|(k, t)| !(*k == TokKind::Ident && t == "b")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1].1, "code");
    }

    #[test]
    fn doc_comment_flavours() {
        let toks = lex(
            "/// doc\n//! inner\n// plain\n//// four\n/** blockdoc */\n/*! inner */\n/* plain */",
        );
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::LineDoc,
                TokKind::LineDoc,
                TokKind::LineComment,
                TokKind::LineComment,
                TokKind::BlockDoc,
                TokKind::BlockDoc,
                TokKind::BlockComment,
            ]
        );
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let toks = lex("a\nb\n\nc /* x\ny */ d");
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(2));
        assert_eq!(find("c"), Some(4));
        assert_eq!(find("d"), Some(5));
    }

    #[test]
    fn numbers_including_ranges_and_floats() {
        let toks = kinds("1.5 + 2e3 - 0xff_u32; for i in 0..10 {}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.5"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Num && t == "0xff_u32"));
        // `0..10` splits into two numbers around the range punct.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        let _ = lex("\"unterminated");
        let _ = lex("/* unterminated");
        let _ = lex("r#\"unterminated");
        let _ = lex("'");
    }

    #[test]
    fn raw_strings_with_many_hashes() {
        let src = "let s = r###\"two \"# hashes \"## inside\"###; tail";
        let toks = kinds(src);
        assert!(
            toks.iter()
                .any(|(k, t)| *k == TokKind::RawStr && t.contains("inside")),
            "{toks:?}"
        );
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("tail"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let toks = kinds("let r#match = 1; r#\"raw\"#");
        // `r#match` lexes as `r` `#` `match`, not as a raw-string attempt
        // that would swallow the rest of the file.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "match"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::RawStr && t.contains("raw")));
    }

    #[test]
    fn braces_inside_char_and_byte_literals_stay_hidden() {
        let toks = kinds("match c { '{' => b'{', '}' => b'}', _ => b'x' }");
        let braces = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && (t == "{" || t == "}"))
            .count();
        // Only the match block's own braces survive as punctuation.
        assert_eq!(braces, 2, "{toks:?}");
    }

    /// Minimal xorshift-style generator (std-only stand-in for proptest):
    /// deterministic, so failures reproduce.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn lexer_never_panics_and_terminates_on_arbitrary_input() {
        // Alphabet biased toward the constructs with tricky state machines:
        // raw-string hashes, comment openers, escapes, braces in literals.
        const ALPHABET: &[u8] = b"rb#\"'{}/*\\\n a0._:;|=<>!()[]-+";
        let mut state = 0x3141_5926_5358_9793u64;
        for trial in 0..500 {
            let len = (splitmix64(&mut state) % 200) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|_| ALPHABET[(splitmix64(&mut state) as usize) % ALPHABET.len()])
                .collect();
            let src = String::from_utf8_lossy(&bytes).into_owned();
            let toks = lex(&src);
            // Terminated (we got here), produced sane line numbers.
            let mut prev = 1;
            for t in &toks {
                assert!(t.line >= prev, "trial {trial}: lines regressed on {src:?}");
                prev = t.line;
            }
        }
        // Arbitrary (non-alphabet) bytes, including invalid UTF-8 runs
        // smoothed by from_utf8_lossy at the call boundary.
        for trial in 0..200 {
            let len = (splitmix64(&mut state) % 64) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|_| (splitmix64(&mut state) & 0xff) as u8)
                .collect();
            let src = String::from_utf8_lossy(&bytes).into_owned();
            let _ = lex(&src);
            let _ = trial;
        }
    }
}
