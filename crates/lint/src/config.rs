//! The `lint.toml` allowlist: every exemption from a workspace invariant is
//! written down here and reviewed like code.
//!
//! The registry being unreachable rules out a real TOML crate, so this
//! module hand-parses the small subset the allowlist needs:
//!
//! ```toml
//! # comment
//! [section]
//! key = ["value", "value"]   # string arrays, single- or multi-line
//! other = "value"            # bare strings
//! ```
//!
//! Unknown sections or keys are an error — a typo in an exemption must not
//! silently widen the gate.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation problem in `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending entry (0 when unknown).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// The resolved rule configuration: path prefixes and crate scopes for
/// rules R1–R6. Paths are workspace-relative with forward slashes; a
/// trailing `/` marks a directory prefix.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Paths never walked at all (e.g. lint rule fixtures, which contain
    /// deliberate violations).
    pub skip: Vec<String>,
    /// R1: path prefixes where `unsafe` is permitted.
    pub r1_allow: Vec<String>,
    /// R2: path prefixes where thread spawning is permitted.
    pub r2_allow: Vec<String>,
    /// R3: crate directory names whose library sources must stay
    /// panic-free.
    pub r3_crates: Vec<String>,
    /// R4: path prefixes where wall-clock reads are permitted.
    pub r4_wallclock_allow: Vec<String>,
    /// R5: crate directory names whose library sources may print to the
    /// console.
    pub r5_allow_crates: Vec<String>,
    /// R6: crate directory names whose `pub fn`s must cite the paper.
    pub r6_crates: Vec<String>,
    /// R7: files (workspace-relative) whose allocations must ride the step
    /// pool; direct `Tensor::zeros`/`Tensor::from_vec` calls there need a
    /// `// pool:` / `// alloc-ok:` annotation.
    pub r7_hot_paths: Vec<String>,
}

impl Config {
    /// Parses the configuration from `lint.toml` text.
    ///
    /// # Errors
    /// Returns every malformed line, unknown section or unknown key.
    pub fn parse(text: &str) -> Result<Self, Vec<ConfigError>> {
        let raw = parse_toml_subset(text)?;
        let mut cfg = Config::default();
        let mut errors = Vec::new();
        for ((section, key), (line, values)) in raw {
            let dest = match (section.as_str(), key.as_str()) {
                ("global", "skip") => &mut cfg.skip,
                ("r1", "allow") => &mut cfg.r1_allow,
                ("r2", "allow") => &mut cfg.r2_allow,
                ("r3", "crates") => &mut cfg.r3_crates,
                ("r4", "wallclock_allow") => &mut cfg.r4_wallclock_allow,
                ("r5", "allow_crates") => &mut cfg.r5_allow_crates,
                ("r6", "crates") => &mut cfg.r6_crates,
                ("r7", "hot_paths") => &mut cfg.r7_hot_paths,
                _ => {
                    errors.push(ConfigError {
                        line,
                        message: format!("unknown entry [{section}] {key}"),
                    });
                    continue;
                }
            };
            *dest = values;
        }
        if errors.is_empty() {
            Ok(cfg)
        } else {
            Err(errors)
        }
    }

    /// `true` when `rel_path` falls under any prefix in `list` (exact file
    /// match or directory prefix).
    #[must_use]
    pub fn path_matches(rel_path: &str, list: &[String]) -> bool {
        list.iter().any(|p| {
            rel_path == p.trim_end_matches('/')
                || rel_path.starts_with(p.trim_end_matches('/'))
                    && rel_path[p.trim_end_matches('/').len()..].starts_with('/')
        })
    }
}

type RawEntries = BTreeMap<(String, String), (u32, Vec<String>)>;

/// Parses `[section]` headers and `key = "…"` / `key = […]` entries.
fn parse_toml_subset(text: &str) -> Result<RawEntries, Vec<ConfigError>> {
    let mut out = RawEntries::new();
    let mut errors = Vec::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw_line)) = lines.next() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw_line).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push(ConfigError {
                line: line_no,
                message: format!("expected `key = value`, got {line:?}"),
            });
            continue;
        };
        let key = key.trim().to_owned();
        let mut value = value.trim().to_owned();
        // Multi-line arrays: keep consuming until the closing bracket.
        while value.starts_with('[') && !value.ends_with(']') {
            match lines.next() {
                Some((_, cont)) => {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                }
                None => break,
            }
        }
        match parse_value(&value) {
            Ok(values) => {
                if section.is_empty() {
                    errors.push(ConfigError {
                        line: line_no,
                        message: format!("entry {key:?} before any [section]"),
                    });
                } else {
                    out.insert((section.clone(), key), (line_no, values));
                }
            }
            Err(message) => errors.push(ConfigError {
                line: line_no,
                message,
            }),
        }
    }
    if errors.is_empty() {
        Ok(out)
    } else {
        Err(errors)
    }
}

/// Removes a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"string"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    if let Some(inner) = value.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_string(part)?);
        }
        return Ok(items);
    }
    Ok(vec![parse_string(value)?])
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("expected a double-quoted string, got {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# top comment
[global]
skip = ["crates/lint/tests/fixtures/"]

[r1]
allow = [
    "crates/parallel/src/pool.rs",  # the pool's lifetime erasure
    "crates/tensor/",
]

[r3]
crates = ["tensor", "optim"]
"#;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let cfg = Config::parse(SAMPLE).expect("sample parses");
        assert_eq!(cfg.skip, vec!["crates/lint/tests/fixtures/"]);
        assert_eq!(
            cfg.r1_allow,
            vec!["crates/parallel/src/pool.rs", "crates/tensor/"]
        );
        assert_eq!(cfg.r3_crates, vec!["tensor", "optim"]);
        assert!(cfg.r6_crates.is_empty());
    }

    #[test]
    fn unknown_entries_are_rejected() {
        let err = Config::parse("[r1]\nalow = [\"typo\"]\n").expect_err("typo must fail");
        assert_eq!(err.len(), 1);
        assert!(err[0].message.contains("unknown entry"), "{err:?}");
    }

    #[test]
    fn entries_need_a_section() {
        let err = Config::parse("allow = [\"x\"]\n").expect_err("must fail");
        assert!(err[0].message.contains("before any"), "{err:?}");
    }

    #[test]
    fn malformed_values_are_reported_with_lines() {
        let err = Config::parse("[r1]\nallow = [unquoted]\n").expect_err("must fail");
        assert_eq!(err[0].line, 2);
    }

    #[test]
    fn path_prefix_matching() {
        let list = vec![
            "crates/tensor/".to_owned(),
            "crates/parallel/src/pool.rs".to_owned(),
        ];
        assert!(Config::path_matches("crates/tensor/src/gemm.rs", &list));
        assert!(Config::path_matches("crates/parallel/src/pool.rs", &list));
        assert!(!Config::path_matches("crates/parallel/src/lib.rs", &list));
        assert!(!Config::path_matches("crates/tensors/src/x.rs", &list));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[r1]\nallow = [\"a#b\"]\n").expect("parses");
        assert_eq!(cfg.r1_allow, vec!["a#b"]);
    }
}
