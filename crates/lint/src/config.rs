//! The `lint.toml` allowlist: every exemption from a workspace invariant is
//! written down here and reviewed like code.
//!
//! The registry being unreachable rules out a real TOML crate, so this
//! module hand-parses the small subset the allowlist needs:
//!
//! ```toml
//! # comment
//! [section]
//! key = ["value", "value"]   # string arrays, single- or multi-line
//! other = "value"            # bare strings
//! ```
//!
//! Unknown sections or keys are an error — a typo in an exemption must not
//! silently widen the gate.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parse or validation problem in `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending entry (0 when unknown).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// The resolved rule configuration: path prefixes and crate scopes for
/// rules R1–R6. Paths are workspace-relative with forward slashes; a
/// trailing `/` marks a directory prefix.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Paths never walked at all (e.g. lint rule fixtures, which contain
    /// deliberate violations).
    pub skip: Vec<String>,
    /// R1: path prefixes where `unsafe` is permitted.
    pub r1_allow: Vec<String>,
    /// R2: path prefixes where thread spawning is permitted.
    pub r2_allow: Vec<String>,
    /// R3: crate directory names whose library sources must stay
    /// panic-free.
    pub r3_crates: Vec<String>,
    /// R4: path prefixes where wall-clock reads are permitted.
    pub r4_wallclock_allow: Vec<String>,
    /// R5: crate directory names whose library sources may print to the
    /// console.
    pub r5_allow_crates: Vec<String>,
    /// R6: crate directory names whose `pub fn`s must cite the paper.
    pub r6_crates: Vec<String>,
    /// R10: hot-path entry points (`Type::method` or bare fn name); the
    /// transitive call-graph closure from these denies unannotated
    /// allocation and panic paths. Replaces the `[r7] hot_paths` file
    /// list of schema v1.
    pub r10_entry_points: Vec<String>,
    /// Every parsed `(section, key, value, line)`, kept for validation
    /// diagnostics (`--check-config`) and entry-point line lookup.
    pub raw: Vec<RawValue>,
}

/// One parsed configuration value with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawValue {
    /// `[section]` name.
    pub section: String,
    /// Key within the section.
    pub key: String,
    /// String value.
    pub value: String,
    /// 1-based line of the value itself (not the key).
    pub line: u32,
}

impl Config {
    /// Parses the configuration from `lint.toml` text.
    ///
    /// # Errors
    /// Returns every malformed line, unknown section or unknown key.
    pub fn parse(text: &str) -> Result<Self, Vec<ConfigError>> {
        let raw = parse_toml_subset(text)?;
        let mut cfg = Config::default();
        let mut errors = Vec::new();
        for ((section, key), (line, values)) in raw {
            let dest = match (section.as_str(), key.as_str()) {
                ("global", "skip") => &mut cfg.skip,
                ("r1", "allow") => &mut cfg.r1_allow,
                ("r2", "allow") => &mut cfg.r2_allow,
                ("r3", "crates") => &mut cfg.r3_crates,
                ("r4", "wallclock_allow") => &mut cfg.r4_wallclock_allow,
                ("r5", "allow_crates") => &mut cfg.r5_allow_crates,
                ("r6", "crates") => &mut cfg.r6_crates,
                ("r10", "entry_points") => &mut cfg.r10_entry_points,
                ("r7", "hot_paths") => {
                    errors.push(ConfigError {
                        line,
                        message: "[r7] hot_paths was removed in schema v2: the hot-path \
                                  closure is now computed from [r10] entry_points via \
                                  call-graph reachability (see DESIGN.md §14)"
                            .to_owned(),
                    });
                    continue;
                }
                _ => {
                    errors.push(ConfigError {
                        line,
                        message: format!("unknown entry [{section}] {key}"),
                    });
                    continue;
                }
            };
            for (value, vline) in &values {
                cfg.raw.push(RawValue {
                    section: section.clone(),
                    key: key.clone(),
                    value: value.clone(),
                    line: *vline,
                });
            }
            *dest = values.into_iter().map(|(v, _)| v).collect();
        }
        cfg.raw.sort_by_key(|r| r.line);
        if errors.is_empty() {
            Ok(cfg)
        } else {
            Err(errors)
        }
    }

    /// `true` when `rel_path` falls under any prefix in `list` (exact file
    /// match or directory prefix).
    #[must_use]
    pub fn path_matches(rel_path: &str, list: &[String]) -> bool {
        list.iter().any(|p| {
            rel_path == p.trim_end_matches('/')
                || rel_path.starts_with(p.trim_end_matches('/'))
                    && rel_path[p.trim_end_matches('/').len()..].starts_with('/')
        })
    }

    /// Source line of an `[r10] entry_points` value (0 when absent).
    #[must_use]
    pub fn entry_line(&self, entry: &str) -> u32 {
        self.raw
            .iter()
            .find(|r| r.section == "r10" && r.key == "entry_points" && r.value == entry)
            .map_or(0, |r| r.line)
    }

    /// Existence checks behind `--check-config`: every path-valued entry
    /// must name a real file or directory, every crate-valued entry a
    /// real `crates/<name>` directory. Typos in exemptions must not
    /// silently widen the gate.
    #[must_use]
    pub fn validate_paths(&self, root: &Path) -> Vec<ConfigError> {
        let mut errors = Vec::new();
        for r in &self.raw {
            match (r.section.as_str(), r.key.as_str()) {
                ("global", "skip") | ("r1" | "r2", "allow") | ("r4", "wallclock_allow") => {
                    let p = r.value.trim_end_matches('/');
                    if !root.join(p).exists() {
                        errors.push(ConfigError {
                            line: r.line,
                            message: format!(
                                "[{}] {}: path {:?} matches no file or directory",
                                r.section, r.key, r.value
                            ),
                        });
                    }
                }
                ("r3" | "r6", "crates") | ("r5", "allow_crates")
                    if !root.join("crates").join(&r.value).is_dir() =>
                {
                    errors.push(ConfigError {
                        line: r.line,
                        message: format!(
                            "[{}] {}: no crate directory crates/{}",
                            r.section, r.key, r.value
                        ),
                    });
                }
                _ => {} // [r10] entry_points is validated against the call graph
            }
        }
        errors
    }
}

type RawEntries = BTreeMap<(String, String), (u32, Vec<(String, u32)>)>;

/// Parses `[section]` headers and `key = "…"` / `key = […]` entries.
/// Values carry the line they appear on (multi-line arrays keep per-item
/// lines).
fn parse_toml_subset(text: &str) -> Result<RawEntries, Vec<ConfigError>> {
    let mut out = RawEntries::new();
    let mut errors = Vec::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw_line)) = lines.next() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw_line).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push(ConfigError {
                line: line_no,
                message: format!("expected `key = value`, got {line:?}"),
            });
            continue;
        };
        let key = key.trim().to_owned();
        let value = value.trim().to_owned();
        // Collect `(fragment, line)` pairs: multi-line arrays keep
        // consuming until the closing bracket.
        let mut fragments: Vec<(String, u32)> = vec![(value.clone(), line_no)];
        if value.starts_with('[') {
            let mut closed = value.ends_with(']');
            while !closed {
                match lines.next() {
                    Some((cidx, cont)) => {
                        let cont = strip_comment(cont).trim().to_owned();
                        closed = cont.ends_with(']');
                        fragments.push((cont, cidx as u32 + 1));
                    }
                    None => break,
                }
            }
        }
        match parse_value_fragments(&fragments) {
            Ok(values) => {
                if section.is_empty() {
                    errors.push(ConfigError {
                        line: line_no,
                        message: format!("entry {key:?} before any [section]"),
                    });
                } else {
                    out.insert((section.clone(), key), (line_no, values));
                }
            }
            Err(e) => errors.push(e),
        }
    }
    if errors.is_empty() {
        Ok(out)
    } else {
        Err(errors)
    }
}

/// Removes a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"string"` or `["a", "b"]` (possibly split across fragments,
/// one per source line) into `(value, line)` pairs.
fn parse_value_fragments(fragments: &[(String, u32)]) -> Result<Vec<(String, u32)>, ConfigError> {
    let (first, first_line) = &fragments[0];
    if !first.starts_with('[') {
        let v = parse_string(first).map_err(|message| ConfigError {
            line: *first_line,
            message,
        })?;
        return Ok(vec![(v, *first_line)]);
    }
    let last = fragments.len() - 1;
    let mut items = Vec::new();
    for (fi, (frag, line)) in fragments.iter().enumerate() {
        let mut frag = frag.as_str();
        if fi == 0 {
            frag = frag.strip_prefix('[').unwrap_or(frag);
        }
        if fi == last {
            frag = frag.strip_suffix(']').unwrap_or(frag);
        }
        for part in frag.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma / blank continuation
            }
            let v = parse_string(part).map_err(|message| ConfigError {
                line: *line,
                message,
            })?;
            items.push((v, *line));
        }
    }
    Ok(items)
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("expected a double-quoted string, got {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# top comment
[global]
skip = ["crates/lint/tests/fixtures/"]

[r1]
allow = [
    "crates/parallel/src/pool.rs",  # the pool's lifetime erasure
    "crates/tensor/",
]

[r3]
crates = ["tensor", "optim"]
"#;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let cfg = Config::parse(SAMPLE).expect("sample parses");
        assert_eq!(cfg.skip, vec!["crates/lint/tests/fixtures/"]);
        assert_eq!(
            cfg.r1_allow,
            vec!["crates/parallel/src/pool.rs", "crates/tensor/"]
        );
        assert_eq!(cfg.r3_crates, vec!["tensor", "optim"]);
        assert!(cfg.r6_crates.is_empty());
    }

    #[test]
    fn unknown_entries_are_rejected() {
        let err = Config::parse("[r1]\nalow = [\"typo\"]\n").expect_err("typo must fail");
        assert_eq!(err.len(), 1);
        assert!(err[0].message.contains("unknown entry"), "{err:?}");
    }

    #[test]
    fn entries_need_a_section() {
        let err = Config::parse("allow = [\"x\"]\n").expect_err("must fail");
        assert!(err[0].message.contains("before any"), "{err:?}");
    }

    #[test]
    fn malformed_values_are_reported_with_lines() {
        let err = Config::parse("[r1]\nallow = [unquoted]\n").expect_err("must fail");
        assert_eq!(err[0].line, 2);
    }

    #[test]
    fn path_prefix_matching() {
        let list = vec![
            "crates/tensor/".to_owned(),
            "crates/parallel/src/pool.rs".to_owned(),
        ];
        assert!(Config::path_matches("crates/tensor/src/gemm.rs", &list));
        assert!(Config::path_matches("crates/parallel/src/pool.rs", &list));
        assert!(!Config::path_matches("crates/parallel/src/lib.rs", &list));
        assert!(!Config::path_matches("crates/tensors/src/x.rs", &list));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[r1]\nallow = [\"a#b\"]\n").expect("parses");
        assert_eq!(cfg.r1_allow, vec!["a#b"]);
    }

    #[test]
    fn removed_r7_section_gets_a_migration_error() {
        let err = Config::parse("[r7]\nhot_paths = [\"crates/x.rs\"]\n").expect_err("removed");
        assert!(err[0].message.contains("[r10] entry_points"), "{err:?}");
    }

    #[test]
    fn entry_points_keep_their_source_lines() {
        let cfg = Config::parse(
            "[r10]\nentry_points = [\n    \"TopKEngine::retrieve_into\",\n    \"train_step\",\n]\n",
        )
        .expect("parses");
        assert_eq!(
            cfg.r10_entry_points,
            vec!["TopKEngine::retrieve_into", "train_step"]
        );
        assert_eq!(cfg.entry_line("TopKEngine::retrieve_into"), 3);
        assert_eq!(cfg.entry_line("train_step"), 4);
        assert_eq!(cfg.entry_line("absent"), 0);
    }

    #[test]
    fn validate_paths_flags_nonexistent_entries() {
        let cfg = Config::parse(
            "[r1]\nallow = [\"no/such/file.rs\"]\n[r3]\ncrates = [\"no_such_crate\"]\n",
        )
        .expect("parses");
        let errors = cfg.validate_paths(Path::new("/nonexistent-root"));
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert_eq!(errors[0].line, 2);
        assert!(errors[0].message.contains("matches no file"), "{errors:?}");
        assert_eq!(errors[1].line, 4);
        assert!(
            errors[1].message.contains("no crate directory"),
            "{errors:?}"
        );
    }
}
