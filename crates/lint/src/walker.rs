//! Workspace source discovery and file-role classification.
//!
//! The walker finds every `.rs` file under the workspace root, skipping
//! build output (`target/`), hidden directories (`.git`, `.verify`) and the
//! explicit `[global] skip` prefixes from `lint.toml`. Each file is
//! classified into a [`Role`] — the rules scope themselves by role (library
//! invariants do not apply to test or binary sources) and by the owning
//! crate directory.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;

/// Where a source file sits in a crate layout. Determines which rules
/// apply: panic/print/determinism rules guard *library* code only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `src/` of a crate, excluding `src/bin` and `src/main.rs`.
    Lib,
    /// `src/bin/**` or `src/main.rs` — binary entry points.
    Bin,
    /// `tests/**` (crate-level or workspace-level integration tests).
    Test,
    /// `benches/**`.
    Bench,
    /// `examples/**` (crate-level or workspace-level).
    Example,
    /// `build.rs` or anything else.
    Other,
}

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Layout classification.
    pub role: Role,
    /// Crate directory name for `crates/<name>/…` paths.
    pub crate_name: Option<String>,
}

/// Classifies a workspace-relative path (forward slashes).
#[must_use]
pub fn classify(rel: &str) -> Role {
    let in_dir =
        |dir: &str| rel.starts_with(&format!("{dir}/")) || rel.contains(&format!("/{dir}/"));
    if in_dir("tests") {
        Role::Test
    } else if in_dir("benches") {
        Role::Bench
    } else if in_dir("examples") {
        Role::Example
    } else if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        Role::Bin
    } else if rel.contains("/src/") {
        Role::Lib
    } else {
        Role::Other
    }
}

/// Extracts the crate directory name from `crates/<name>/…`.
#[must_use]
pub fn crate_of(rel: &str) -> Option<String> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name.to_owned())
}

/// Walks the workspace and returns every lintable `.rs` file, sorted by
/// relative path for deterministic reports.
///
/// # Errors
/// Propagates filesystem errors other than racing deletions.
pub fn walk(root: &Path, config: &Config) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk_dir(root, root, config, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk_dir(root: &Path, dir: &Path, config: &Config, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = rel_path(root, &path);
        if Config::path_matches(&rel, &config.skip) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            walk_dir(root, &path, config, out)?;
        } else if ty.is_file() && rel.ends_with(".rs") {
            out.push(SourceFile {
                role: classify(&rel),
                crate_name: crate_of(&rel),
                abs: path,
                rel,
            });
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layouts() {
        assert_eq!(classify("crates/tensor/src/gemm.rs"), Role::Lib);
        assert_eq!(classify("crates/lint/src/main.rs"), Role::Bin);
        assert_eq!(classify("crates/experiments/src/bin/repro.rs"), Role::Bin);
        assert_eq!(
            classify("crates/tensor/tests/kernel_equivalence.rs"),
            Role::Test
        );
        assert_eq!(classify("tests/integration.rs"), Role::Test);
        assert_eq!(classify("crates/bench/benches/kernels.rs"), Role::Bench);
        assert_eq!(classify("examples/quickstart.rs"), Role::Example);
        assert_eq!(classify("crates/core/build.rs"), Role::Other);
    }

    #[test]
    fn crate_names_come_from_the_crates_dir() {
        assert_eq!(
            crate_of("crates/tensor/src/gemm.rs").as_deref(),
            Some("tensor")
        );
        assert_eq!(crate_of("tests/integration.rs"), None);
        assert_eq!(crate_of("crates/lonely.rs"), None);
    }

    #[test]
    fn walk_skips_hidden_target_and_configured_prefixes() {
        // Scratch space inside the workspace build directory (the walker
        // itself never descends into `target/`).
        let tmp = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("dt-lint-walk-{}", std::process::id()));
        let mk = |p: &str| {
            let f = tmp.join(p);
            fs::create_dir_all(f.parent().expect("parent")).expect("mkdir");
            fs::write(f, "fn main() {}\n").expect("write");
        };
        mk("crates/x/src/lib.rs");
        mk("crates/x/target/debug/build.rs");
        mk(".hidden/src/secret.rs");
        mk("target/generated.rs");
        mk("crates/lint/tests/fixtures/r1_pos.rs");
        mk("crates/x/src/not_rust.txt");

        let config = Config {
            skip: vec!["crates/lint/tests/fixtures/".into()],
            ..Config::default()
        };
        let files = walk(&tmp, &config).expect("walk");
        let rels: Vec<_> = files.iter().map(|f| f.rel.as_str()).collect();
        assert_eq!(rels, vec!["crates/x/src/lib.rs"]);
        fs::remove_dir_all(&tmp).ok();
    }
}
