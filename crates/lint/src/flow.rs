//! Flow-aware rules R8–R10 over the item tree and call graph.
//!
//! * **R8 determinism** — closures handed to the `dt_parallel` entry
//!   points run concurrently, so their observable effects must be
//!   order-independent. The rule flags (a) compound assignments
//!   (`+=`/`-=`/`*=`/`/=`) whose place expression is rooted in *captured*
//!   state rather than closure-local bindings, and (b) lock/atomic-RMW
//!   calls (`lock`, `fetch_add`, `compare_exchange`, …) inside the
//!   closure. Reductions belong in the sanctioned fixed-geometry kernels
//!   (`matmul_tn` panel chunking, `select_top_k`,
//!   `centroid_affinity_into`-style blocked scans) whose merge order is a
//!   function of shapes, never of thread interleaving.
//! * **R9 pool discipline** — a `let`-bound pooled buffer
//!   (`pool::take*`, `Tensor::pooled_*`) must be recycled, returned or
//!   moved on *every* exit path of its scope. The walker is
//!   path-sensitive over `if`/`else` chains, treats `return`/`?` as
//!   exits, and `panic!`/`break`/`continue` as divergence. Leak findings
//!   carry the allocating span.
//! * **R10 transitive hot-path closure** — call-graph reachability from
//!   the `[r10] entry_points` of `lint.toml` replaces the old per-file
//!   `[r7] hot_paths` list. Unannotated allocations (`Tensor::zeros`,
//!   `Tensor::from_vec`, `Vec::new`, `Vec::with_capacity`, `vec!`) and
//!   panic shortcuts (`unwrap`/`expect`/`panic!`/`todo!`/`unreachable!`)
//!   are denied anywhere in the closure; each finding carries its
//!   call-chain witness from the entry point. `assert!` remains the
//!   sanctioned contract check, and `// pool:` / `// alloc-ok:`
//!   annotations waive deliberate allocations exactly as under R7.
//!
//! Approximations (false negatives, never false positives by design):
//! unresolved calls do not extend the R10 closure (they are counted in
//! the report instead), `match` arms are not path-split for R9, and
//! buffers that escape through struct literals or closures are assumed
//! consumed.

use std::collections::BTreeMap;

use crate::callgraph::{parse_closure, CallGraph, FileInput, ParClosure, Target};
use crate::config::Config;
use crate::lexer::{lex, TokKind, Token};
use crate::parser::{match_braces, parse, FnDecl, ItemTree};
use crate::report::{Finding, Severity};
use crate::rules::{collect_allows, collect_pool_annotations, collect_test_ranges};
use crate::walker::{classify, Role};

/// Everything the flow rules need to know about one file.
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub rel: String,
    /// Layout role.
    pub role: Role,
    /// Comment-free token stream.
    pub code: Vec<Token>,
    /// Item tree over `code`.
    pub tree: ItemTree,
    allows: Vec<(String, u32)>,
    test_ranges: Vec<(u32, u32)>,
    pool_annots: Vec<u32>,
}

impl FileAnalysis {
    /// Lexes and parses one source file.
    #[must_use]
    pub fn new(rel: &str, src: &str) -> FileAnalysis {
        let tokens = lex(src);
        let allows = collect_allows(&tokens);
        let test_ranges = collect_test_ranges(&tokens);
        let pool_annots = collect_pool_annotations(&tokens);
        let code: Vec<Token> = tokens.into_iter().filter(|t| !t.is_comment()).collect();
        let tree = parse(&code);
        FileAnalysis {
            rel: rel.to_owned(),
            role: classify(rel),
            code,
            tree,
            allows,
            test_ranges,
            pool_annots,
        }
    }

    fn exempt(&self, rule: &str, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
            || self.allows.iter().any(|(r, l)| r == rule && *l == line)
    }
}

/// Aggregate numbers for the report's `stats` block.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowStats {
    /// Parsed items across the workspace.
    pub items: usize,
    /// Parsed functions (graph nodes).
    pub functions: usize,
    /// Classified call sites: `(resolved, external, unresolved)`.
    pub calls: (usize, usize, usize),
    /// Entry points that resolved.
    pub entry_points: usize,
    /// Functions in the R10 reachability closure.
    pub closure_fns: usize,
    /// Call sites inside the closure: `(resolved, external, unresolved)`.
    pub closure_calls: (usize, usize, usize),
}

/// Runs R8–R10 over the analysed files. Returns findings plus the graph
/// statistics for the report.
#[must_use]
pub fn analyze(files: &[FileAnalysis], cfg: &Config) -> (Vec<Finding>, FlowStats) {
    let inputs: Vec<FileInput<'_>> = files
        .iter()
        .map(|f| FileInput {
            rel: &f.rel,
            role: f.role,
            code: &f.code,
            tree: &f.tree,
        })
        .collect();
    let graph = CallGraph::build(&inputs);

    let mut findings = Vec::new();
    rule_r8(files, &graph, cfg, &mut findings);
    rule_r9(files, cfg, &mut findings);
    let (entry_points, closure) = rule_r10(files, &graph, cfg, &mut findings);

    let all: Vec<usize> = (0..graph.fns.len()).collect();
    let stats = FlowStats {
        items: files.iter().map(|f| f.tree.items).sum(),
        functions: graph.fns.len(),
        calls: graph.call_stats(&all),
        entry_points,
        closure_fns: closure.len(),
        closure_calls: graph.call_stats(&closure),
    };
    (findings, stats)
}

// --------------------------------------------------------------------
// R8: determinism inside parallel closures
// --------------------------------------------------------------------

/// Lock/atomic read-modify-write entry points whose mere presence inside
/// a parallel closure makes the merge order thread-dependent.
const SYNC_CALLS: &[&str] = &[
    "lock",
    "try_lock",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

fn rule_r8(files: &[FileAnalysis], graph: &CallGraph, cfg: &Config, findings: &mut Vec<Finding>) {
    for node in &graph.fns {
        if node.role != Role::Lib || node.par_closures.is_empty() {
            continue;
        }
        let file = &files[node.file];
        if Config::path_matches(&file.rel, &cfg.r2_allow) {
            continue; // the pool's own machinery is the sanctioned exception
        }
        for cl in &node.par_closures {
            check_closure_r8(file, cl, findings);
        }
    }
}

fn check_closure_r8(file: &FileAnalysis, cl: &ParClosure, findings: &mut Vec<Finding>) {
    let code = &file.code;
    let (start, end) = cl.span;
    let end = (end + 1).min(code.len());
    let declared = locals_declared(code, start, end, &cl.params);
    let mut i = start;
    while i < end {
        let t = &code[i];
        // (a) compound assignment rooted in captured state.
        if t.text == "="
            && i >= 1
            && matches!(code[i - 1].text.as_str(), "+" | "-" | "*" | "/")
            && code[i - 1].kind == TokKind::Punct
        {
            if let Some(base) = place_base(code, start, i.saturating_sub(2)) {
                let name = &code[base].text;
                if !declared.contains(name) && !file.exempt("r8", t.line) {
                    findings.push(finding_r8(
                        file,
                        t.line,
                        format!(
                            "`{}=` accumulates into captured `{name}` inside a `{}` \
                             closure: reduction order follows thread interleaving. Route \
                             the reduction through a fixed-geometry kernel \
                             (matmul_tn panels, select_top_k, centroid_affinity_into) \
                             or keep the accumulator closure-local",
                            code[i - 1].text,
                            cl.entry
                        ),
                    ));
                }
            }
        }
        // (b) lock/atomic-RMW calls.
        if t.kind == TokKind::Ident
            && SYNC_CALLS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.text == "(")
            && !file.exempt("r8", t.line)
        {
            findings.push(finding_r8(
                file,
                t.line,
                format!(
                    "`{}` inside a `{}` closure: lock/atomic merge order is \
                     thread-dependent, so results can vary with DT_NUM_THREADS. Use a \
                     per-task slot merged in index order, or annotate why the effect \
                     is order-independent",
                    t.text, cl.entry
                ),
            ));
        }
        i += 1;
    }
}

fn finding_r8(file: &FileAnalysis, line: u32, message: String) -> Finding {
    Finding {
        rule: "r8",
        severity: Severity::Deny,
        path: file.rel.clone(),
        line,
        end_line: line,
        message,
        chain: Vec::new(),
    }
}

/// Names bound inside `[start, end)`: closure params, `let` bindings,
/// `for` patterns, and nested closure params.
fn locals_declared(
    code: &[Token],
    start: usize,
    end: usize,
    params: &[String],
) -> std::collections::BTreeSet<String> {
    let mut out: std::collections::BTreeSet<String> = params.iter().cloned().collect();
    let mut i = start;
    while i < end {
        match code[i].text.as_str() {
            "let" => {
                let mut j = i + 1;
                while j < end && code[j].text != "=" && code[j].text != ";" {
                    if code[j].text == ":" {
                        break; // type annotation: names come before it
                    }
                    if code[j].kind == TokKind::Ident
                        && !matches!(code[j].text.as_str(), "mut" | "ref")
                    {
                        out.insert(code[j].text.clone());
                    }
                    j += 1;
                }
                i = j;
            }
            "for" => {
                let mut j = i + 1;
                while j < end && code[j].text != "in" && code[j].text != "{" {
                    if code[j].kind == TokKind::Ident
                        && !matches!(code[j].text.as_str(), "mut" | "ref")
                    {
                        out.insert(code[j].text.clone());
                    }
                    j += 1;
                }
                i = j;
            }
            "|" => {
                // Nested closure head: bind its params too.
                if let Some((nested, _)) = parse_closure(code, i, end) {
                    out.extend(nested);
                }
                // Skip just the head so body `let`s are still collected.
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Walks left from `p` over a place expression (`a.b[i]`, `*x`, chained
/// calls) and returns the token index of its leftmost base identifier.
fn place_base(code: &[Token], floor: usize, mut p: usize) -> Option<usize> {
    let mut candidate = None;
    loop {
        if p < floor {
            return candidate;
        }
        match code[p].text.as_str() {
            "]" => p = match_open(code, floor, p, "[", "]")?,
            ")" => p = match_open(code, floor, p, "(", ")")?,
            "." => {}
            "*" | "&" | "mut" => {}
            _ if code[p].kind == TokKind::Ident => {
                candidate = Some(p);
                // Keep walking only across `.`/`::` to the left.
                if p >= 1 && (code[p - 1].text == "." || code[p - 1].text == ":") {
                    p -= 1;
                    continue;
                }
                return candidate;
            }
            _ if code[p].kind == TokKind::Num => {} // tuple field
            ":" => {}
            _ => return candidate,
        }
        if p == 0 {
            return candidate;
        }
        p -= 1;
    }
}

/// Backward bracket matching: from a closer at `p` to its opener.
fn match_open(code: &[Token], floor: usize, p: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = p;
    loop {
        if code[k].text == *close {
            depth += 1;
        } else if code[k].text == *open {
            depth -= 1;
            if depth == 0 {
                return k.checked_sub(1).filter(|&v| v >= floor.saturating_sub(1));
            }
        }
        if k == floor || k == 0 {
            return None;
        }
        k -= 1;
    }
}

// --------------------------------------------------------------------
// R9: pool take/recycle pairing
// --------------------------------------------------------------------

/// One tracked pooled binding.
struct PoolBinding {
    name: String,
    take_line: u32,
    /// First token after the binding statement's `;`.
    scan_from: usize,
    /// Exclusive end of the binding's scope (its block's `}`).
    scope_end: usize,
}

fn rule_r9(files: &[FileAnalysis], _cfg: &Config, findings: &mut Vec<Finding>) {
    for file in files {
        if file.role != Role::Lib {
            continue;
        }
        for decl in &file.tree.fns {
            let Some((open, close)) = decl.body else {
                continue;
            };
            for b in find_pool_bindings(&file.code, open + 1, close) {
                if file.exempt("r9", b.take_line) {
                    continue;
                }
                track_binding(file, decl, &b, findings);
            }
        }
    }
}

/// Finds `let [mut] NAME = <pool take>` bindings in `[start, end)`.
fn find_pool_bindings(code: &[Token], start: usize, end: usize) -> Vec<PoolBinding> {
    let braces = match_braces(code);
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if code[i].text != "let" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < end && code[j].text == "mut" {
            j += 1;
        }
        let Some(name_tok) = code.get(j).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        if code.get(j + 1).map_or(true, |t| t.text != "=") {
            i = j + 1;
            continue;
        }
        // Walk the initializer's leading path: `crate::pool::take_zeroed(`,
        // `Tensor::pooled_zeros(`, `Self::pooled_scratch(` …
        let mut k = j + 2;
        let mut prev_seg: Option<&str> = None;
        let mut call: Option<(&str, Option<&str>)> = None;
        while k < end {
            let t = &code[k];
            if t.kind == TokKind::Ident {
                if code.get(k + 1).is_some_and(|n| n.text == "(") {
                    call = Some((t.text.as_str(), prev_seg));
                    break;
                }
                prev_seg = Some(t.text.as_str());
                k += 1;
            } else if t.text == ":" {
                k += 1;
            } else {
                break;
            }
        }
        let pooled = matches!(
            call,
            Some(("take" | "take_zeroed", Some("pool")))
                | Some(("pooled_zeros" | "pooled_scratch", _))
        );
        if pooled {
            // Statement end and enclosing scope.
            let mut s = k;
            let mut depth = 0i32;
            while s < end {
                match code[s].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" if depth <= 0 => break,
                    _ => {}
                }
                s += 1;
            }
            let scope_end = enclosing_block_end(&braces, i, end);
            out.push(PoolBinding {
                name: name_tok.text.clone(),
                take_line: name_tok.line,
                scan_from: s + 1,
                scope_end,
            });
        }
        i = k + 1;
    }
    out
}

/// Exclusive end (`}` index) of the innermost block containing `tok`.
fn enclosing_block_end(braces: &[Option<usize>], tok: usize, default: usize) -> usize {
    let mut best = default;
    let mut best_open = 0;
    for (open, close) in braces.iter().enumerate() {
        if let Some(c) = close {
            if open < tok && *c > tok && open >= best_open {
                best_open = open;
                best = *c;
            }
        }
    }
    best
}

/// Outcome of walking one region for one binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The buffer was recycled / returned / moved on this path.
    Consumed,
    /// The path diverges without needing consumption (panic/break/…).
    Diverged,
    /// Fell off the end of the region with the buffer still live.
    Live,
}

struct BindWalk<'a> {
    file: &'a FileAnalysis,
    name: &'a str,
    take_line: u32,
    fn_name: &'a str,
    findings: &'a mut Vec<Finding>,
}

fn track_binding(file: &FileAnalysis, decl: &FnDecl, b: &PoolBinding, findings: &mut Vec<Finding>) {
    let mut w = BindWalk {
        file,
        name: &b.name,
        take_line: b.take_line,
        fn_name: &decl.name,
        findings,
    };
    let outcome = w.walk(b.scan_from, b.scope_end);
    if outcome == Outcome::Live {
        let end_line = w
            .file
            .code
            .get(b.scope_end)
            .map_or(decl.end_line, |t| t.line);
        w.leak(
            end_line,
            format!(
                "pooled buffer `{}` (taken at line {}) reaches the end of its scope in \
                 `{}` without being recycled or returned",
                b.name, b.take_line, decl.name
            ),
        );
    }
}

impl BindWalk<'_> {
    fn code(&self) -> &[Token] {
        &self.file.code
    }

    fn leak(&mut self, end_line: u32, message: String) {
        if self.file.exempt("r9", self.take_line) {
            return;
        }
        self.findings.push(Finding {
            rule: "r9",
            severity: Severity::Deny,
            path: self.file.rel.clone(),
            line: self.take_line,
            end_line,
            message,
            chain: Vec::new(),
        });
    }

    /// Walks `[i0, end)` (a block interior) and reports how the binding
    /// fares on this path.
    fn walk(&mut self, i0: usize, end: usize) -> Outcome {
        let mut i = i0;
        while i < end.min(self.code().len()) {
            let text = self.code()[i].text.clone();
            let line = self.code()[i].line;
            match text.as_str() {
                "if" => {
                    let Some((merged, next)) = self.walk_if(i, end) else {
                        i += 1;
                        continue;
                    };
                    match merged {
                        Outcome::Consumed => return Outcome::Consumed,
                        Outcome::Diverged => return Outcome::Diverged,
                        Outcome::Live => i = next,
                    }
                }
                "while" | "loop" | "for" => {
                    let Some(open) = self.scan_to_open(i + 1, end) else {
                        i += 1;
                        continue;
                    };
                    let close = self.brace_close(open, end);
                    // Executed-once approximation: consumption inside the
                    // body counts; divergence (break) does not.
                    if self.walk(open + 1, close) == Outcome::Consumed {
                        return Outcome::Consumed;
                    }
                    i = close + 1;
                }
                "match" => {
                    let Some(open) = self.scan_to_open(i + 1, end) else {
                        i += 1;
                        continue;
                    };
                    let close = self.brace_close(open, end);
                    if self.flat_consumes(open + 1, close) {
                        return Outcome::Consumed;
                    }
                    // No arm consumes: early `return`s inside still leak.
                    self.flat_check_returns(open + 1, close);
                    i = close + 1;
                }
                "return" => {
                    let stop = self.stmt_end(i + 1, end);
                    if self.flat_consumes(i + 1, stop) {
                        // `return buf` consumes *and* exits the fn, so the
                        // path diverges: sibling branches keep their own
                        // consumption duty.
                        return Outcome::Diverged;
                    }
                    self.leak(
                        line,
                        format!(
                            "pooled buffer `{}` (taken at line {}) leaks on the early \
                             `return` at line {line} in `{}`",
                            self.name, self.take_line, self.fn_name
                        ),
                    );
                    return Outcome::Diverged;
                }
                "?" => {
                    self.leak(
                        line,
                        format!(
                            "pooled buffer `{}` (taken at line {}) may leak through the \
                             `?` early exit at line {line} in `{}`",
                            self.name, self.take_line, self.fn_name
                        ),
                    );
                    i += 1;
                }
                "break" | "continue" => return Outcome::Diverged,
                "panic" | "todo" | "unimplemented" | "unreachable"
                    if self.code().get(i + 1).is_some_and(|n| n.text == "!") =>
                {
                    return Outcome::Diverged;
                }
                "|" if crate::callgraph::is_closure_start(self.code(), i) => {
                    // Closure body: only consumption counts; a `return`
                    // inside exits the closure, not this fn.
                    if let Some((_, span_end)) = parse_closure(self.code(), i, end) {
                        if self.flat_consumes(i, span_end + 1) {
                            return Outcome::Consumed;
                        }
                        i = span_end + 1;
                    } else {
                        i += 1;
                    }
                }
                "{" => {
                    let close = self.brace_close(i, end);
                    match self.walk(i + 1, close) {
                        Outcome::Consumed => return Outcome::Consumed,
                        Outcome::Diverged => return Outcome::Diverged,
                        Outcome::Live => i = close + 1,
                    }
                }
                _ => {
                    if self.consumes_at(i) {
                        return Outcome::Consumed;
                    }
                    i += 1;
                }
            }
        }
        // Tail expression `…; NAME }`.
        if end >= 1
            && self
                .code()
                .get(end.saturating_sub(1))
                .is_some_and(|t| t.text == self.name)
        {
            return Outcome::Consumed;
        }
        Outcome::Live
    }

    /// Handles an `if … {} else if … {} else {}` chain starting at `i`.
    /// Returns the merged outcome and the index after the chain.
    fn walk_if(&mut self, i: usize, end: usize) -> Option<(Outcome, usize)> {
        let if_line = self.code()[i].line;
        let mut branches: Vec<Outcome> = Vec::new();
        let mut had_else = false;
        let mut j = i;
        loop {
            // `j` is at `if`: condition runs to the `{`.
            let open = self.scan_to_open(j + 1, end)?;
            if self.flat_consumes(j + 1, open) {
                return Some((Outcome::Consumed, open));
            }
            let close = self.brace_close(open, end);
            branches.push(self.walk(open + 1, close));
            j = close + 1;
            if self.code().get(j).map_or(true, |t| t.text != "else") {
                break;
            }
            match self.code().get(j + 1).map(|t| t.text.as_str()) {
                Some("if") => {
                    j += 1; // loop continues at the nested `if`
                }
                Some("{") => {
                    let close = self.brace_close(j + 1, end);
                    branches.push(self.walk(j + 2, close));
                    had_else = true;
                    j = close + 1;
                    break;
                }
                _ => break,
            }
        }
        if !had_else {
            branches.push(Outcome::Live); // implicit fall-through arm
        }
        let effective: Vec<Outcome> = branches
            .iter()
            .copied()
            .filter(|&o| o != Outcome::Diverged)
            .collect();
        let merged = if effective.is_empty() {
            Outcome::Diverged
        } else if effective.iter().all(|&o| o == Outcome::Consumed) {
            Outcome::Consumed
        } else if effective.iter().all(|&o| o == Outcome::Live) {
            Outcome::Live
        } else {
            self.leak(
                if_line,
                format!(
                    "pooled buffer `{}` (taken at line {}) is recycled on only some \
                     branches of the `if` at line {if_line} in `{}`",
                    self.name, self.take_line, self.fn_name
                ),
            );
            Outcome::Consumed // reported once; stop tracking
        };
        Some((merged, j))
    }

    /// First `{` at paren depth 0 in `[from, end)`, checking consumption
    /// events in the header tokens on the way.
    fn scan_to_open(&mut self, from: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut k = from;
        while k < end.min(self.code().len()) {
            match self.code()[k].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth <= 0 => return Some(k),
                _ => {}
            }
            k += 1;
        }
        None
    }

    fn brace_close(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let code = self.code();
        let mut k = open;
        while k < end.min(code.len()) {
            match code[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        end.saturating_sub(1)
    }

    /// End of the current statement (`;` at depth 0), exclusive.
    fn stmt_end(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let code = self.code();
        let mut k = from;
        while k < end.min(code.len()) {
            match code[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return k;
                    }
                    depth -= 1;
                }
                ";" if depth <= 0 => return k,
                _ => {}
            }
            k += 1;
        }
        k
    }

    /// Linear scan of `[from, to)` for any consumption event.
    fn flat_consumes(&self, from: usize, to: usize) -> bool {
        (from..to.min(self.code().len())).any(|k| self.consumes_at(k))
    }

    /// Linear scan reporting `return`-while-live leaks (used inside
    /// `match` blocks, which are not path-split).
    fn flat_check_returns(&mut self, from: usize, to: usize) {
        let mut k = from;
        while k < to.min(self.code().len()) {
            if self.code()[k].text == "return" {
                let stop = self.stmt_end(k + 1, to);
                if !self.flat_consumes(k + 1, stop) {
                    let line = self.code()[k].line;
                    self.leak(
                        line,
                        format!(
                            "pooled buffer `{}` (taken at line {}) leaks on the early \
                             `return` at line {line} (inside a `match`) in `{}`",
                            self.name, self.take_line, self.fn_name
                        ),
                    );
                }
                k = stop;
            } else {
                k += 1;
            }
        }
    }

    /// Is the token at `k` a consumption event for this binding?
    fn consumes_at(&self, k: usize) -> bool {
        let code = self.code();
        let t = &code[k];
        // `recycle(NAME)` / `pool::recycle(NAME)`.
        if t.text == "recycle"
            && code.get(k + 1).is_some_and(|n| n.text == "(")
            && code.get(k + 2).is_some_and(|n| n.text == self.name)
        {
            return true;
        }
        if t.text != self.name || t.kind != TokKind::Ident {
            return false;
        }
        let prev = k.checked_sub(1).map(|p| code[p].text.as_str());
        let next = code.get(k + 1).map(|n| n.text.as_str());
        let next2 = code.get(k + 2).map(|n| n.text.as_str());
        // `NAME.recycle()`.
        if next == Some(".") && next2 == Some("recycle") {
            return true;
        }
        match (prev, next) {
            // Returned to the caller (ownership transfer).
            (Some("return"), _) => true,
            // Moved into a call / struct / array / tuple.
            (Some("(" | ","), Some(")" | "," | ";")) => true,
            (Some(":"), Some("," | "}")) => true,
            (Some("{" | "," | "["), Some("," | "}" | "]")) => true,
            // Moved into another binding (ownership transfer).
            (Some("="), Some(";")) => true,
            // Tail expression of a block.
            (_, Some("}")) => true,
            _ => false,
        }
    }
}

// --------------------------------------------------------------------
// R10: transitive hot-path closure
// --------------------------------------------------------------------

/// Resolves entry points, walks the closure and applies the deny rules.
/// Returns `(resolved_entry_count, closure_node_ids)`.
fn rule_r10(
    files: &[FileAnalysis],
    graph: &CallGraph,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) -> (usize, Vec<usize>) {
    // Resolve entries.
    let mut queue: Vec<usize> = Vec::new();
    let mut resolved_entries = 0usize;
    for entry in &cfg.r10_entry_points {
        let ids: Vec<usize> = if entry.contains("::") {
            graph.by_qual.get(entry).copied().into_iter().collect()
        } else {
            graph.by_name.get(entry).cloned().unwrap_or_default()
        };
        if ids.is_empty() {
            findings.push(Finding {
                rule: "r10",
                severity: Severity::Deny,
                path: crate::CONFIG_FILE.to_owned(),
                line: cfg.entry_line(entry),
                end_line: cfg.entry_line(entry),
                message: format!(
                    "[r10] entry point `{entry}` matches no function in the workspace"
                ),
                chain: Vec::new(),
            });
        } else {
            resolved_entries += 1;
            queue.extend(ids);
        }
    }

    // BFS over resolved edges between Lib-role functions.
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen: Vec<usize> = Vec::new();
    let mut head = 0usize;
    let mut in_closure = vec![false; graph.fns.len()];
    for &id in &queue {
        if !in_closure[id] {
            in_closure[id] = true;
            seen.push(id);
        }
    }
    let mut order = seen.clone();
    while head < order.len() {
        let id = order[head];
        head += 1;
        for call in &graph.fns[id].calls {
            if let Target::Resolved(callee) = call.target {
                if graph.fns[callee].role == Role::Lib && !in_closure[callee] {
                    in_closure[callee] = true;
                    parent.insert(callee, id);
                    order.push(callee);
                }
            }
        }
    }

    // Deny scan over every closure member.
    for &id in &order {
        let node = &graph.fns[id];
        let file = &files[node.file];
        let Some((open, close)) = node.body else {
            continue;
        };
        let chain = witness_chain(graph, &parent, id);
        scan_deny(file, &file.code[..], open, close, &chain, findings);
    }
    (resolved_entries, order)
}

/// The call-chain witness from an entry point to `id`, as qualified
/// names.
fn witness_chain(graph: &CallGraph, parent: &BTreeMap<usize, usize>, id: usize) -> Vec<String> {
    let mut chain = vec![graph.fns[id].qual.clone()];
    let mut cur = id;
    while let Some(&p) = parent.get(&cur) {
        chain.push(graph.fns[p].qual.clone());
        cur = p;
    }
    chain.reverse();
    chain
}

/// Applies the R10 deny list to one function body.
fn scan_deny(
    file: &FileAnalysis,
    code: &[Token],
    open: usize,
    close: usize,
    chain: &[String],
    findings: &mut Vec<Finding>,
) {
    let via = chain.join(" -> ");
    for i in open + 1..close.min(code.len()) {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |s: &str| code.get(i + 1).is_some_and(|n| n.text == s);
        let prev_is = |s: &str| i >= 1 && code[i - 1].text == s;
        let path_prefix = |p: &str| {
            i >= 3 && code[i - 1].text == ":" && code[i - 2].text == ":" && code[i - 3].text == p
        };
        let mut hit: Option<(String, bool)> = None; // (what, is_alloc)
        match t.text.as_str() {
            "unwrap" | "expect" if prev_is(".") && next_is("(") => {
                hit = Some((format!(".{}()", t.text), false));
            }
            "panic" | "todo" | "unimplemented" | "unreachable" if next_is("!") => {
                hit = Some((format!("{}!", t.text), false));
            }
            "zeros" | "from_vec" if path_prefix("Tensor") && next_is("(") => {
                hit = Some((format!("Tensor::{}", t.text), true));
            }
            "new" | "with_capacity" if path_prefix("Vec") && next_is("(") => {
                hit = Some((format!("Vec::{}", t.text), true));
            }
            "vec" if next_is("!") => {
                hit = Some(("vec!".to_owned(), true));
            }
            _ => {}
        }
        let Some((what, is_alloc)) = hit else {
            continue;
        };
        if file.exempt("r10", t.line) {
            continue;
        }
        if is_alloc && file.pool_annots.contains(&t.line) {
            continue;
        }
        let (noun, fix) = if is_alloc {
            (
                "allocation",
                "draw the buffer from the step pool or justify it with `// pool: why` / \
                 `// alloc-ok: why`",
            )
        } else {
            (
                "panic path",
                "propagate a Result, use assert! for contract checks, or annotate \
                 `// lint: allow(r10): why`",
            )
        };
        findings.push(Finding {
            rule: "r10",
            severity: Severity::Deny,
            path: file.rel.clone(),
            line: t.line,
            end_line: t.line,
            message: format!(
                "`{what}` {noun} reachable from a hot-path entry point \
                 (via {via}): {fix}"
            ),
            chain: chain.to_vec(),
        });
    }
}
