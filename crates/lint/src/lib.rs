//! # dt-lint
//!
//! Std-only static analysis for the disrec workspace: a hand-rolled Rust
//! lexer, an item-tree parser, a workspace call graph, a token-stream rule
//! engine plus flow-aware rule families, and a workspace walker that
//! together enforce the repo's reproducibility invariants (see DESIGN.md
//! §9 and §14):
//!
//! * **R1** — `unsafe` only in the audited modules,
//! * **R2** — all parallelism rides the shared `dt-parallel` pool,
//! * **R3** — no panicking shortcuts in library hot paths,
//! * **R4** — no unseeded randomness or stray wall-clock reads,
//! * **R5** — no console printing from library code,
//! * **R6** — estimator/identifiability APIs cite the paper construct they
//!   implement,
//! * **R8** — parallel closures must not accumulate into captured state or
//!   reach for locks/atomics (determinism across `DT_NUM_THREADS`),
//! * **R9** — pooled buffers are recycled or returned on every exit path,
//! * **R10** — no unannotated allocation/panic anywhere in the call-graph
//!   closure of the declared hot-path entry points (replaces the old
//!   per-file R7 list).
//!
//! The paper's DT-IPS/DT-DR results hinge on bit-identical reruns; these
//! rules keep nondeterminism and panic shortcuts from sneaking back in as
//! the workspace grows. Exemptions live in the committed `lint.toml` and in
//! per-line `// lint: allow(rN): why` annotations, so every waiver is
//! reviewed like code.
//!
//! The registry is intentionally out of reach (builds must work offline),
//! so there is no `syn`, no `clippy_utils`, no TOML crate — everything here
//! is `std` plus the lexer in [`lexer`].
//!
//! ## Usage
//!
//! ```text
//! cargo run -p dt-lint              # human-readable report + LINT_report.json
//! cargo run -p dt-lint -- --deny-warnings   # CI gate: warnings also fail
//! ```

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod walker;

use std::io;
use std::path::Path;

pub use config::{Config, ConfigError};
pub use report::{Finding, Report, Severity, Stats};

/// Name of the allowlist file at the workspace root.
pub const CONFIG_FILE: &str = "lint.toml";

/// Name of the JSON report written at the workspace root.
pub const REPORT_FILE: &str = "LINT_report.json";

/// Lints every source file under `root` with the given configuration.
/// The returned report is sorted into canonical order.
///
/// # Errors
/// Propagates filesystem errors from the walk or unreadable files.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    let files = walker::walk(root, config)?;
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let src = std::fs::read_to_string(&file.abs)?;
        sources.push((file.rel.clone(), src));
    }
    Ok(run_sources(&sources, config))
}

/// Lints an in-memory set of `(workspace-relative path, source)` pairs:
/// phase 1 applies the token rules per file, phase 2 builds the item
/// trees and call graph and applies the flow rules R8–R10. Fixture tests
/// use this directly with synthetic paths and entry points.
#[must_use]
pub fn run_sources(sources: &[(String, String)], config: &Config) -> Report {
    let mut report = Report {
        findings: Vec::new(),
        files_scanned: sources.len(),
        stats: Stats::default(),
    };
    let mut analyses = Vec::with_capacity(sources.len());
    for (rel, src) in sources {
        report.findings.extend(rules::lint_source(rel, src, config));
        analyses.push(flow::FileAnalysis::new(rel, src));
    }
    let (flow_findings, fs) = flow::analyze(&analyses, config);
    report.findings.extend(flow_findings);
    report.stats = Stats {
        files: sources.len(),
        items: fs.items,
        functions: fs.functions,
        calls: fs.calls,
        entry_points: fs.entry_points,
        closure_fns: fs.closure_fns,
        closure_calls: fs.closure_calls,
        wall_ms: 0, // stamped by the CLI, kept 0 in library runs
    };
    report.sort();
    report
}

/// Reads and parses `lint.toml` under `root`.
///
/// # Errors
/// Returns the parse/validation errors, or an I/O failure as a single
/// pseudo-error.
pub fn load_config(root: &Path) -> Result<Config, Vec<ConfigError>> {
    let path = root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        vec![ConfigError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        }]
    })?;
    Config::parse(&text)
}

/// Walks upward from `start` to the first directory containing `lint.toml`
/// (the workspace root).
#[must_use]
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join(CONFIG_FILE).is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
