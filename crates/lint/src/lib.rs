//! # dt-lint
//!
//! Std-only static analysis for the disrec workspace: a hand-rolled Rust
//! lexer, a token-stream rule engine, and a workspace walker that together
//! enforce the repo's reproducibility invariants (see DESIGN.md §9):
//!
//! * **R1** — `unsafe` only in the audited modules,
//! * **R2** — all parallelism rides the shared `dt-parallel` pool,
//! * **R3** — no panicking shortcuts in library hot paths,
//! * **R4** — no unseeded randomness or stray wall-clock reads,
//! * **R5** — no console printing from library code,
//! * **R6** — estimator/identifiability APIs cite the paper construct they
//!   implement.
//!
//! The paper's DT-IPS/DT-DR results hinge on bit-identical reruns; these
//! rules keep nondeterminism and panic shortcuts from sneaking back in as
//! the workspace grows. Exemptions live in the committed `lint.toml` and in
//! per-line `// lint: allow(rN): why` annotations, so every waiver is
//! reviewed like code.
//!
//! The registry is intentionally out of reach (builds must work offline),
//! so there is no `syn`, no `clippy_utils`, no TOML crate — everything here
//! is `std` plus the lexer in [`lexer`].
//!
//! ## Usage
//!
//! ```text
//! cargo run -p dt-lint              # human-readable report + LINT_report.json
//! cargo run -p dt-lint -- --deny-warnings   # CI gate: warnings also fail
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walker;

use std::io;
use std::path::Path;

pub use config::{Config, ConfigError};
pub use report::{Finding, Report, Severity};

/// Name of the allowlist file at the workspace root.
pub const CONFIG_FILE: &str = "lint.toml";

/// Name of the JSON report written at the workspace root.
pub const REPORT_FILE: &str = "LINT_report.json";

/// Lints every source file under `root` with the given configuration.
/// The returned report is sorted into canonical order.
///
/// # Errors
/// Propagates filesystem errors from the walk or unreadable files.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    let files = walker::walk(root, config)?;
    let mut report = Report {
        findings: Vec::new(),
        files_scanned: files.len(),
    };
    for file in &files {
        let src = std::fs::read_to_string(&file.abs)?;
        report
            .findings
            .extend(rules::lint_source(&file.rel, &src, config));
    }
    report.sort();
    Ok(report)
}

/// Reads and parses `lint.toml` under `root`.
///
/// # Errors
/// Returns the parse/validation errors, or an I/O failure as a single
/// pseudo-error.
pub fn load_config(root: &Path) -> Result<Config, Vec<ConfigError>> {
    let path = root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        vec![ConfigError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        }]
    })?;
    Config::parse(&text)
}

/// Walks upward from `start` to the first directory containing `lint.toml`
/// (the workspace root).
#[must_use]
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join(CONFIG_FILE).is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
