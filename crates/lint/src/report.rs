//! Findings, severities and the two output formats (human, JSON).
//!
//! The JSON writer is hand-rolled (std-only) and emits a stable,
//! deterministic document — findings are sorted by path, line and rule —
//! so `LINT_report.json` diffs cleanly across runs.

use std::fmt;

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the gate only under `--deny-warnings` (documentation rules).
    Warning,
    /// Always fails the gate (invariant violations).
    Deny,
}

impl Severity {
    /// Lower-case label used in both output formats.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Deny => "error",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`r1` … `r6`).
    pub rule: &'static str,
    /// Gate behaviour of the rule.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.path,
            self.line,
            self.severity.label(),
            self.rule,
            self.message
        )
    }
}

/// The result of linting a workspace: all findings plus file statistics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings into the canonical (path, line, rule) order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// Count of findings that always gate.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Count of findings that gate only under `--deny-warnings`.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// `true` when the gate should fail.
    #[must_use]
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// Renders the human-readable listing (one line per finding plus a
    /// summary tail).
    #[must_use]
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "dt-lint: {} file(s) scanned, {} error(s), {} warning(s)\n",
            self.files_scanned,
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// Renders the `LINT_report.json` document.
    #[must_use]
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"severity\": {}, ", json_str(f.severity.label())));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &'static str, severity: Severity) -> Finding {
        Finding {
            rule,
            severity,
            path: path.to_owned(),
            line,
            message: format!("violation of {rule}"),
        }
    }

    #[test]
    fn sort_is_by_path_line_rule() {
        let mut r = Report {
            findings: vec![
                finding("b.rs", 2, "r1", Severity::Deny),
                finding("a.rs", 9, "r5", Severity::Deny),
                finding("a.rs", 9, "r3", Severity::Deny),
            ],
            files_scanned: 2,
        };
        r.sort();
        let order: Vec<_> = r
            .findings
            .iter()
            .map(|f| (f.path.as_str(), f.line, f.rule))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs", 9, "r3"), ("a.rs", 9, "r5"), ("b.rs", 2, "r1")]
        );
    }

    #[test]
    fn gate_logic_distinguishes_warnings() {
        let r = Report {
            findings: vec![finding("a.rs", 1, "r6", Severity::Warning)],
            files_scanned: 1,
        };
        assert_eq!(r.errors(), 0);
        assert_eq!(r.warnings(), 1);
        assert!(!r.fails(false));
        assert!(r.fails(true));
        let clean = Report::default();
        assert!(!clean.fails(true));
    }

    #[test]
    fn json_escapes_and_shapes() {
        let r = Report {
            findings: vec![Finding {
                rule: "r5",
                severity: Severity::Deny,
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "found `println!(\"hi\\n\")`".into(),
            }],
            files_scanned: 1,
        };
        let j = r.json();
        assert!(j.contains(r#""rule": "r5""#), "{j}");
        assert!(j.contains(r#"\"hi\\n\""#), "{j}");
        assert!(j.contains("\"errors\": 1"), "{j}");
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let j = Report::default().json();
        assert!(j.contains("\"findings\": []"), "{j}");
    }
}
