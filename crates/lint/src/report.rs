//! Findings, severities and the two output formats (human, JSON).
//!
//! The JSON writer is hand-rolled (std-only) and emits a stable,
//! deterministic document — findings are sorted by path, line and rule —
//! so `LINT_report.json` diffs cleanly across runs.

use std::fmt;

/// How a finding gates CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the gate only under `--deny-warnings` (documentation rules).
    Warning,
    /// Always fails the gate (invariant violations).
    Deny,
}

impl Severity {
    /// Lower-case label used in both output formats.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Deny => "error",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`r1` … `r10`).
    pub rule: &'static str,
    /// Gate behaviour of the rule.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based source line where the finding starts.
    pub line: u32,
    /// 1-based source line where the finding's span ends (equals `line`
    /// for single-line findings; R9 leaks span take → exit).
    pub end_line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// R10 call-chain witness from the entry point to the flagged
    /// function, as qualified names. Empty for other rules.
    pub chain: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.path,
            self.line,
            self.severity.label(),
            self.rule,
            self.message
        )
    }
}

/// Call-graph statistics recorded in the report (schema v2).
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// `.rs` files analysed.
    pub files: usize,
    /// Parsed items (fns, impls, mods, structs, enums, traits).
    pub items: usize,
    /// Parsed functions (call-graph nodes).
    pub functions: usize,
    /// Workspace-wide call sites: `(resolved, external, unresolved)`.
    pub calls: (usize, usize, usize),
    /// `[r10]` entry points that resolved to a workspace function.
    pub entry_points: usize,
    /// Functions in the R10 hot-path closure.
    pub closure_fns: usize,
    /// Call sites inside the closure: `(resolved, external, unresolved)`.
    pub closure_calls: (usize, usize, usize),
    /// End-to-end lint wall time in milliseconds (measured by the CLI;
    /// zero in library runs so the JSON stays deterministic for tests).
    pub wall_ms: u64,
}

impl Stats {
    /// `resolved / (resolved + unresolved)` — external calls are
    /// *confidently* non-workspace, so they sit outside the honesty
    /// denominator. `1.0` when nothing was ambiguous.
    #[must_use]
    pub fn resolved_ratio(calls: (usize, usize, usize)) -> f64 {
        let denom = calls.0 + calls.2;
        if denom == 0 {
            1.0
        } else {
            calls.0 as f64 / denom as f64
        }
    }

    fn calls_json(calls: (usize, usize, usize)) -> String {
        format!(
            "{{\"total\": {}, \"resolved\": {}, \"external\": {}, \
             \"unresolved\": {}, \"resolved_ratio\": {:.4}}}",
            calls.0 + calls.1 + calls.2,
            calls.0,
            calls.1,
            calls.2,
            Stats::resolved_ratio(calls)
        )
    }

    /// Renders the one-screen `--stats` summary.
    #[must_use]
    pub fn human(&self) -> String {
        format!(
            "dt-lint stats: {} files, {} items, {} functions\n\
             calls: {} resolved, {} external, {} unresolved \
             (resolved ratio {:.4})\n\
             r10 closure: {} entry point(s), {} function(s), \
             {} resolved / {} external / {} unresolved calls \
             (resolved ratio {:.4})\n\
             wall time: {} ms\n",
            self.files,
            self.items,
            self.functions,
            self.calls.0,
            self.calls.1,
            self.calls.2,
            Stats::resolved_ratio(self.calls),
            self.entry_points,
            self.closure_fns,
            self.closure_calls.0,
            self.closure_calls.1,
            self.closure_calls.2,
            Stats::resolved_ratio(self.closure_calls),
            self.wall_ms
        )
    }
}

/// The result of linting a workspace: all findings plus file statistics.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, sorted by path, line, rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Call-graph statistics (schema v2).
    pub stats: Stats,
}

impl Report {
    /// Sorts findings into the canonical (path, line, rule) order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// Count of findings that always gate.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Count of findings that gate only under `--deny-warnings`.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// `true` when the gate should fail.
    #[must_use]
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }

    /// Renders the human-readable listing (one line per finding plus a
    /// summary tail).
    #[must_use]
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "dt-lint: {} file(s) scanned, {} error(s), {} warning(s)\n",
            self.files_scanned,
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// Renders the `LINT_report.json` document (schema v2).
    #[must_use]
    pub fn json(&self) -> String {
        let s = &self.stats;
        let mut out = String::from("{\n  \"version\": 2,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str("  \"stats\": {\n");
        out.push_str(&format!("    \"files\": {},\n", s.files));
        out.push_str(&format!("    \"items\": {},\n", s.items));
        out.push_str(&format!("    \"functions\": {},\n", s.functions));
        out.push_str(&format!("    \"calls\": {},\n", Stats::calls_json(s.calls)));
        out.push_str(&format!("    \"entry_points\": {},\n", s.entry_points));
        out.push_str("    \"hot_closure\": {\n");
        out.push_str(&format!("      \"functions\": {},\n", s.closure_fns));
        out.push_str(&format!(
            "      \"calls\": {}\n",
            Stats::calls_json(s.closure_calls)
        ));
        out.push_str("    },\n");
        out.push_str(&format!("    \"wall_ms\": {}\n", s.wall_ms));
        out.push_str("  },\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"severity\": {}, ", json_str(f.severity.label())));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"end_line\": {}, ", f.end_line));
            if !f.chain.is_empty() {
                let chain: Vec<String> = f.chain.iter().map(|c| json_str(c)).collect();
                out.push_str(&format!("\"chain\": [{}], ", chain.join(", ")));
            }
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &'static str, severity: Severity) -> Finding {
        Finding {
            rule,
            severity,
            path: path.to_owned(),
            line,
            end_line: line,
            message: format!("violation of {rule}"),
            chain: Vec::new(),
        }
    }

    #[test]
    fn sort_is_by_path_line_rule() {
        let mut r = Report {
            findings: vec![
                finding("b.rs", 2, "r1", Severity::Deny),
                finding("a.rs", 9, "r5", Severity::Deny),
                finding("a.rs", 9, "r3", Severity::Deny),
            ],
            files_scanned: 2,
            stats: Stats::default(),
        };
        r.sort();
        let order: Vec<_> = r
            .findings
            .iter()
            .map(|f| (f.path.as_str(), f.line, f.rule))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs", 9, "r3"), ("a.rs", 9, "r5"), ("b.rs", 2, "r1")]
        );
    }

    #[test]
    fn gate_logic_distinguishes_warnings() {
        let r = Report {
            findings: vec![finding("a.rs", 1, "r6", Severity::Warning)],
            files_scanned: 1,
            stats: Stats::default(),
        };
        assert_eq!(r.errors(), 0);
        assert_eq!(r.warnings(), 1);
        assert!(!r.fails(false));
        assert!(r.fails(true));
        let clean = Report::default();
        assert!(!clean.fails(true));
    }

    #[test]
    fn json_escapes_and_shapes() {
        let r = Report {
            findings: vec![Finding {
                rule: "r5",
                severity: Severity::Deny,
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                end_line: 4,
                message: "found `println!(\"hi\\n\")`".into(),
                chain: vec!["A::a".into(), "b".into()],
            }],
            files_scanned: 1,
            stats: Stats::default(),
        };
        let j = r.json();
        assert!(j.contains(r#""rule": "r5""#), "{j}");
        assert!(j.contains(r#"\"hi\\n\""#), "{j}");
        assert!(j.contains("\"errors\": 1"), "{j}");
        assert!(j.contains("\"end_line\": 4"), "{j}");
        assert!(j.contains(r#""chain": ["A::a", "b"]"#), "{j}");
        assert!(j.contains("\"version\": 2"), "{j}");
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let j = Report::default().json();
        assert!(j.contains("\"findings\": []"), "{j}");
        assert!(j.contains("\"stats\""), "{j}");
        assert!(j.contains("\"hot_closure\""), "{j}");
    }

    #[test]
    fn resolved_ratio_excludes_externals() {
        assert!((Stats::resolved_ratio((19, 100, 1)) - 0.95).abs() < 1e-12);
        assert!((Stats::resolved_ratio((0, 5, 0)) - 1.0).abs() < 1e-12);
    }
}
