//! The token-rule engine: R1–R6 over a token stream. The flow-aware
//! families R8–R10 live in [`crate::flow`]; the old per-file R7
//! hot-path rule was replaced by R10's call-graph closure.
//!
//! Each rule scans the lexed tokens of one file, scoped by the file's
//! [`Role`], its crate, and the `lint.toml` allowlists:
//!
//! * **R1** `unsafe` only inside the audited allowlist.
//! * **R2** no `thread::spawn`/`thread::Builder`/`rayon` outside
//!   `dt-parallel` — parallelism must ride the shared pool so the
//!   nested-parallelism guard holds.
//! * **R3** no `.unwrap()`/`.expect()`/`panic!` in the library sources of
//!   the configured crates.
//! * **R4** no unseeded randomness (`thread_rng`, `from_entropy`) in any
//!   library source, and no wall-clock reads (`Instant::now`,
//!   `SystemTime::now`) outside the allowlisted timing modules.
//! * **R5** no `println!`/`eprintln!`/`print!`/`eprint!` in library
//!   sources outside the allowlisted reporter crates.
//! * **R6** every `pub fn` in the configured crates carries a doc comment
//!   citing the paper construct it implements (equation, lemma, theorem,
//!   …). R6 findings are warnings; the other rules are errors.
//!
//! Two exemption mechanisms apply everywhere: code under a `#[test]` /
//! `#[cfg(test)]` item, and lines annotated
//! `// lint: allow(rN): justification` (the annotation covers its own line
//! and the next — use it trailing or immediately above the construct).

use crate::config::Config;
use crate::lexer::{lex, TokKind, Token};
use crate::report::{Finding, Severity};
use crate::walker::{classify, crate_of, Role};

/// Doc-comment substrings (lower-cased) accepted by R6 as a citation of a
/// paper construct.
const R6_KEYWORDS: &[&str] = &[
    "eq.",
    "eq (",
    "equation",
    "lemma",
    "theorem",
    "example",
    "section",
    "table",
    "figure",
    "definition",
    "assumption",
    "corollary",
    "proposition",
    "algorithm",
    "condition (",
    "§",
    "paper",
];

/// Lints one source file given its workspace-relative path and contents.
/// The role and crate are derived from the path, so fixtures can exercise
/// scoping by choosing synthetic paths.
#[must_use]
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let tokens = lex(src);
    let ctx = FileCtx {
        rel,
        role: classify(rel),
        crate_name: crate_of(rel),
        cfg,
        allows: collect_allows(&tokens),
        test_ranges: collect_test_ranges(&tokens),
    };
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();

    let mut findings = Vec::new();
    rule_r1(&ctx, &code, &mut findings);
    rule_r2(&ctx, &code, &mut findings);
    rule_r3(&ctx, &code, &mut findings);
    rule_r4(&ctx, &code, &mut findings);
    rule_r5(&ctx, &code, &mut findings);
    rule_r6(&ctx, &tokens, &mut findings);
    findings
}

struct FileCtx<'a> {
    rel: &'a str,
    role: Role,
    crate_name: Option<String>,
    cfg: &'a Config,
    /// `(rule, line)` pairs whitelisted by `// lint: allow(…)` comments.
    allows: Vec<(String, u32)>,
    /// Inclusive line ranges covered by `#[test]`/`#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl FileCtx<'_> {
    fn exempt(&self, rule: &str, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
            || self.allows.iter().any(|(r, l)| r == rule && *l == line)
    }

    fn crate_in(&self, list: &[String]) -> bool {
        self.crate_name
            .as_ref()
            .is_some_and(|c| list.iter().any(|x| x == c))
    }

    fn push(
        &self,
        findings: &mut Vec<Finding>,
        rule: &'static str,
        severity: Severity,
        line: u32,
        message: String,
    ) {
        if !self.exempt(rule, line) {
            findings.push(Finding {
                rule,
                severity,
                path: self.rel.to_owned(),
                line,
                end_line: line,
                message,
                chain: Vec::new(),
            });
        }
    }
}

/// Extracts `// lint: allow(r3, r5): why` annotations. Each annotation
/// covers its own line and the next, so it works trailing a statement or
/// on the line directly above it.
pub(crate) fn collect_allows(tokens: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        let Some(at) = t.text.find("lint: allow(") else {
            continue;
        };
        let rest = &t.text[at + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        for rule in rest[..end].split(',') {
            let rule = rule.trim().to_ascii_lowercase();
            if !rule.is_empty() {
                out.push((rule.clone(), t.line));
                out.push((rule, t.line + 1));
            }
        }
    }
    out
}

/// Extracts the lines covered by `// pool: why` / `// alloc-ok: why`
/// allocation-intent annotations. Like [`collect_allows`], each annotation
/// covers its own line and the next. Doc comments are ignored: the
/// annotation is a reviewer-facing plain comment, not API prose that
/// happens to mention the pool.
pub(crate) fn collect_pool_annotations(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::new();
    for t in tokens {
        if !t.is_comment() || t.is_doc() {
            continue;
        }
        if t.text.contains("pool:") || t.text.contains("alloc-ok:") {
            out.push(t.line);
            out.push(t.line + 1);
        }
    }
    out
}

/// Finds the inclusive line ranges of items annotated `#[test]` or
/// `#[cfg(test)]` (including `#[cfg(all(test, …))]`; `#[cfg(not(test))]`
/// is *not* a test scope). Works on the comment-free token stream.
pub(crate) fn collect_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].text == "#" && i + 1 < code.len() && code[i + 1].text == "[") {
            i += 1;
            continue;
        }
        // Collect the attribute's identifiers up to the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut idents = Vec::new();
        while j < code.len() {
            match code[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if code[j].kind == TokKind::Ident {
                        idents.push(code[j].text.as_str());
                    }
                }
            }
            j += 1;
        }
        let is_test = idents.contains(&"test") && !idents.contains(&"not");
        if !is_test {
            i = j + 1;
            continue;
        }
        // Span the annotated item: to the matching close brace, or to a
        // top-level `;` for brace-less items.
        let mut braces = 0usize;
        let mut k = j + 1;
        let mut end = code.len().saturating_sub(1);
        while k < code.len() {
            match code[k].text.as_str() {
                "{" => braces += 1,
                "}" => {
                    braces = braces.saturating_sub(1);
                    if braces == 0 {
                        end = k;
                        break;
                    }
                }
                ";" if braces == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if let (Some(first), Some(last)) = (code.get(i), code.get(end)) {
            out.push((first.line, last.line));
        }
        i = end + 1;
    }
    out
}

/// R1: `unsafe` appears only under the audited path allowlist.
fn rule_r1(ctx: &FileCtx<'_>, code: &[&Token], findings: &mut Vec<Finding>) {
    if Config::path_matches(ctx.rel, &ctx.cfg.r1_allow) {
        return;
    }
    for t in code {
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            ctx.push(
                findings,
                "r1",
                Severity::Deny,
                t.line,
                "`unsafe` outside the audited modules (see [r1] allow in lint.toml)".to_owned(),
            );
        }
    }
}

/// R2: no thread spawning or rayon outside the shared pool crate.
fn rule_r2(ctx: &FileCtx<'_>, code: &[&Token], findings: &mut Vec<Finding>) {
    if Config::path_matches(ctx.rel, &ctx.cfg.r2_allow) {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let found = match t.text.as_str() {
            "rayon" => Some("`rayon`"),
            "spawn" | "Builder" if path_prefix_is(code, i, "thread") => {
                Some("`thread::spawn`/`thread::Builder`")
            }
            "scope" if path_prefix_is(code, i, "thread") => Some("`thread::scope`"),
            _ => None,
        };
        if let Some(what) = found {
            ctx.push(
                findings,
                "r2",
                Severity::Deny,
                t.line,
                format!(
                    "{what} outside dt-parallel: all parallelism must ride the shared pool \
                     (dt_parallel::par_tasks & friends)"
                ),
            );
        }
    }
}

/// R3: no panicking shortcuts in the library sources of the configured
/// crates.
fn rule_r3(ctx: &FileCtx<'_>, code: &[&Token], findings: &mut Vec<Finding>) {
    if ctx.role != Role::Lib || !ctx.crate_in(&ctx.cfg.r3_crates) {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "unwrap" | "expect" if prev_is(code, i, ".") && next_is(code, i, "(") => {
                format!(".{}()", t.text)
            }
            "panic" if next_is(code, i, "!") => "panic!".to_owned(),
            _ => continue,
        };
        ctx.push(
            findings,
            "r3",
            Severity::Deny,
            t.line,
            format!(
                "`{what}` in library code: propagate a Result or document the invariant \
                 with `// lint: allow(r3): why`"
            ),
        );
    }
}

/// R4: determinism — no unseeded randomness anywhere in library code, no
/// wall-clock reads outside the allowlisted timing modules.
fn rule_r4(ctx: &FileCtx<'_>, code: &[&Token], findings: &mut Vec<Finding>) {
    if ctx.role != Role::Lib {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "thread_rng" | "from_entropy" => {
                ctx.push(
                    findings,
                    "r4",
                    Severity::Deny,
                    t.line,
                    format!(
                        "unseeded randomness `{}` in library code: take an explicit seeded \
                         Rng so runs reproduce bit-for-bit",
                        t.text
                    ),
                );
            }
            "now"
                if path_prefix_is(code, i, "Instant") || path_prefix_is(code, i, "SystemTime") =>
            {
                if Config::path_matches(ctx.rel, &ctx.cfg.r4_wallclock_allow) {
                    continue;
                }
                let source = if path_prefix_is(code, i, "Instant") {
                    "Instant::now"
                } else {
                    "SystemTime::now"
                };
                ctx.push(
                    findings,
                    "r4",
                    Severity::Deny,
                    t.line,
                    format!(
                        "wall-clock read `{source}` in library code: timing belongs in \
                         bench/allowlisted modules, or annotate telemetry with \
                         `// lint: allow(r4): why`"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// R5: no console printing from library sources outside the reporter
/// allowlist.
fn rule_r5(ctx: &FileCtx<'_>, code: &[&Token], findings: &mut Vec<Finding>) {
    if ctx.role != Role::Lib || ctx.crate_in(&ctx.cfg.r5_allow_crates) {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
            && next_is(code, i, "!")
        {
            ctx.push(
                findings,
                "r5",
                Severity::Deny,
                t.line,
                format!(
                    "`{}!` in library code: print from binaries only, or route progress \
                     through an allowlisted reporter",
                    t.text
                ),
            );
        }
    }
}

/// R6: every `pub fn` in the configured crates carries a doc comment
/// citing the paper construct it implements.
fn rule_r6(ctx: &FileCtx<'_>, tokens: &[Token], findings: &mut Vec<Finding>) {
    if ctx.role != Role::Lib || !ctx.crate_in(&ctx.cfg.r6_crates) {
        return;
    }
    let mut docs = String::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_doc() {
            docs.push_str(&t.text);
            docs.push('\n');
            i += 1;
            continue;
        }
        if t.is_comment() {
            i += 1; // plain comments between docs and item are transparent
            continue;
        }
        if t.text == "#" {
            i = skip_attribute(tokens, i); // attributes keep pending docs
            continue;
        }
        if t.kind == TokKind::Ident && t.text == "pub" {
            let (is_plain_pub, j) = scan_visibility(tokens, i);
            if is_plain_pub {
                if let Some((name, fn_line)) = scan_fn_header(tokens, j) {
                    check_r6_docs(ctx, &docs, &name, fn_line, findings);
                }
            }
        }
        docs.clear();
        i += 1;
    }
}

fn check_r6_docs(
    ctx: &FileCtx<'_>,
    docs: &str,
    name: &str,
    line: u32,
    findings: &mut Vec<Finding>,
) {
    let lower = docs.to_ascii_lowercase();
    if docs.trim().is_empty() {
        ctx.push(
            findings,
            "r6",
            Severity::Warning,
            line,
            format!(
                "pub fn `{name}` has no doc comment: name the paper construct it \
                 implements (equation, lemma, theorem, …)"
            ),
        );
    } else if !R6_KEYWORDS.iter().any(|k| lower.contains(k)) {
        ctx.push(
            findings,
            "r6",
            Severity::Warning,
            line,
            format!(
                "doc comment on pub fn `{name}` does not cite a paper construct \
                 (equation/lemma/theorem/section/…); cite one or annotate \
                 `// lint: allow(r6): why`"
            ),
        );
    }
}

/// Skips a `#[…]` attribute starting at the `#`; returns the index after
/// the closing `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    // Tolerate `#!` inner attributes.
    while j < tokens.len() && tokens[j].text != "[" {
        if tokens[j].text != "!" {
            return j; // stray `#`, not an attribute
        }
        j += 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// At an ident `pub` at index `i`: returns (is unrestricted `pub`, index of
/// the token after the visibility). `pub(crate)`/`pub(super)`/`pub(in …)`
/// are restricted and not public API.
fn scan_visibility(tokens: &[Token], i: usize) -> (bool, usize) {
    let j = next_code_idx(tokens, i);
    if j < tokens.len() && tokens[j].text == "(" {
        (false, j)
    } else {
        (true, j)
    }
}

/// From the token after `pub`: accepts qualifier idents (`const`, `async`,
/// `unsafe`, `extern` + ABI string) and returns the fn name if this is a
/// `fn` item.
fn scan_fn_header(tokens: &[Token], mut j: usize) -> Option<(String, u32)> {
    for _ in 0..4 {
        if j >= tokens.len() {
            return None;
        }
        let t = &tokens[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "fn") => {
                let k = next_code_idx(tokens, j);
                let name = tokens.get(k)?;
                return Some((name.text.clone(), tokens[j].line));
            }
            (TokKind::Ident, "const" | "async" | "unsafe" | "extern") => {
                j = next_code_idx(tokens, j);
            }
            (TokKind::Str, _) => {
                j = next_code_idx(tokens, j); // extern ABI string
            }
            _ => return None,
        }
    }
    None
}

/// Index of the next non-comment token after `i`.
fn next_code_idx(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    while j < tokens.len() && tokens[j].is_comment() {
        j += 1;
    }
    j
}

/// `true` when the ident at `code[i]` is path-qualified as `prefix::…`,
/// i.e. preceded by `::` whose head is `prefix` (`thread::spawn`,
/// `std::thread::spawn`, `Instant::now`).
fn path_prefix_is(code: &[&Token], i: usize, prefix: &str) -> bool {
    i >= 3
        && code[i - 1].text == ":"
        && code[i - 2].text == ":"
        && code[i - 3].kind == TokKind::Ident
        && code[i - 3].text == prefix
}

fn prev_is(code: &[&Token], i: usize, text: &str) -> bool {
    i > 0 && code[i - 1].text == text
}

fn next_is(code: &[&Token], i: usize, text: &str) -> bool {
    i + 1 < code.len() && code[i + 1].text == text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            skip: vec![],
            r1_allow: vec![
                "crates/parallel/src/pool.rs".into(),
                "crates/tensor/".into(),
            ],
            r2_allow: vec!["crates/parallel/".into()],
            r3_crates: vec!["tensor".into(), "models".into()],
            r4_wallclock_allow: vec!["crates/bench/".into()],
            r5_allow_crates: vec!["bench".into()],
            r6_crates: vec!["estimators".into()],
            ..Config::default()
        }
    }

    fn rules_of(rel: &str, src: &str) -> Vec<String> {
        lint_source(rel, src, &cfg())
            .into_iter()
            .map(|f| f.rule.to_owned())
            .collect()
    }

    #[test]
    fn r1_unsafe_placement() {
        let src = "pub fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        assert_eq!(rules_of("crates/models/src/lib.rs", src), vec!["r1"]);
        assert!(rules_of("crates/tensor/src/gemm.rs", src).is_empty());
        assert!(rules_of("crates/parallel/src/pool.rs", src).is_empty());
    }

    #[test]
    fn r2_spawn_and_rayon() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_of("crates/data/src/lib.rs", spawn), vec!["r2"]);
        assert!(rules_of("crates/parallel/src/pool.rs", spawn).is_empty());
        let ray = "use rayon::prelude::*;";
        assert_eq!(rules_of("crates/data/src/lib.rs", ray), vec!["r2"]);
        // `spawn` as a free function name is not thread::spawn.
        assert!(rules_of("crates/data/src/lib.rs", "fn spawn_logic() {}").is_empty());
    }

    #[test]
    fn r3_scoping_and_variants() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(rules_of("crates/models/src/mlp.rs", src), vec!["r3"]);
        // Crate out of scope, test file, and bin are all exempt.
        assert!(rules_of("crates/data/src/lib.rs", src).is_empty());
        assert!(rules_of("crates/models/tests/t.rs", src).is_empty());
        assert!(rules_of("crates/models/src/bin/tool.rs", src).is_empty());
        // unwrap_or_else is fine; panic! and .expect are not.
        assert!(rules_of(
            "crates/models/src/mlp.rs",
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 3) }"
        )
        .is_empty());
        assert_eq!(
            rules_of("crates/models/src/mlp.rs", "fn f() { panic!(\"boom\") }"),
            vec!["r3"]
        );
    }

    #[test]
    fn r3_cfg_test_modules_are_exempt() {
        let src =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n  fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(rules_of("crates/models/src/mlp.rs", src).is_empty());
        // …but cfg(not(test)) is not a test scope.
        let not = "#[cfg(not(test))]\nmod m {\n  fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert_eq!(rules_of("crates/models/src/mlp.rs", not), vec!["r3"]);
    }

    #[test]
    fn allow_annotations_cover_their_line_and_the_next() {
        let trailing = "fn f(x: Option<u8>) { x.unwrap(); } // lint: allow(r3): invariant";
        assert!(rules_of("crates/models/src/mlp.rs", trailing).is_empty());
        let above = "// lint: allow(r3): invariant\nfn f(x: Option<u8>) { x.unwrap(); }";
        assert!(rules_of("crates/models/src/mlp.rs", above).is_empty());
        let elsewhere = "// lint: allow(r3): too far\n\n\nfn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(rules_of("crates/models/src/mlp.rs", elsewhere), vec!["r3"]);
        // The annotation names a specific rule, not a blanket waiver.
        let wrong = "fn f(x: Option<u8>) { x.unwrap(); } // lint: allow(r5): wrong rule";
        assert_eq!(rules_of("crates/models/src/mlp.rs", wrong), vec!["r3"]);
    }

    #[test]
    fn r4_rng_and_clocks() {
        assert_eq!(
            rules_of(
                "crates/data/src/lib.rs",
                "fn f() { let mut r = rand::thread_rng(); }"
            ),
            vec!["r4"]
        );
        assert_eq!(
            rules_of(
                "crates/data/src/lib.rs",
                "fn f() { let t = Instant::now(); }"
            ),
            vec!["r4"]
        );
        assert!(rules_of(
            "crates/bench/src/lib.rs",
            "fn f() { let t = Instant::now(); }"
        )
        .is_empty());
        // Seeded randomness is the sanctioned pattern.
        assert!(rules_of(
            "crates/data/src/lib.rs",
            "fn f() { let mut r = StdRng::seed_from_u64(7); }"
        )
        .is_empty());
        // `now` on some other type is not a clock read.
        assert!(rules_of("crates/data/src/lib.rs", "fn f(c: Clock) { c.now(); }").is_empty());
    }

    #[test]
    fn r5_printing() {
        let src = "fn f() { println!(\"hi\"); }";
        assert_eq!(rules_of("crates/data/src/lib.rs", src), vec!["r5"]);
        assert!(rules_of("crates/bench/src/report.rs", src).is_empty());
        assert!(rules_of("crates/data/src/bin/tool.rs", src).is_empty());
        // Strings mentioning println are not calls.
        assert!(rules_of("crates/data/src/lib.rs", "const S: &str = \"println!\";").is_empty());
    }

    #[test]
    fn r6_doc_citations() {
        let good = "/// The IPS estimator of eq. (3).\npub fn ips() {}";
        assert!(rules_of("crates/estimators/src/lib.rs", good).is_empty());
        let undocumented = "pub fn ips() {}";
        assert_eq!(
            rules_of("crates/estimators/src/lib.rs", undocumented),
            vec!["r6"]
        );
        let uncited = "/// Computes a thing.\npub fn ips() {}";
        assert_eq!(
            rules_of("crates/estimators/src/lib.rs", uncited),
            vec!["r6"]
        );
        // Attributes between the docs and the fn keep the docs attached.
        let attr = "/// Lemma 2's bias term.\n#[must_use]\npub fn bias() -> f64 { 0.0 }";
        assert!(rules_of("crates/estimators/src/lib.rs", attr).is_empty());
        // Private and pub(crate) fns are not public API.
        assert!(rules_of("crates/estimators/src/lib.rs", "fn helper() {}").is_empty());
        assert!(rules_of("crates/estimators/src/lib.rs", "pub(crate) fn helper() {}").is_empty());
        // Out-of-scope crates are untouched.
        assert!(rules_of("crates/data/src/lib.rs", undocumented).is_empty());
    }

    #[test]
    fn r6_is_a_warning_the_rest_are_errors() {
        let f = lint_source("crates/estimators/src/lib.rs", "pub fn x() {}", &cfg());
        assert_eq!(f[0].severity, Severity::Warning);
        let f = lint_source("crates/models/src/m.rs", "fn f() { panic!() }", &cfg());
        assert_eq!(f[0].severity, Severity::Deny);
    }
}
