//! The `dt-lint` binary: walks the workspace, applies R1–R6 and the
//! flow-aware R8–R10, prints the human-readable findings and writes
//! `LINT_report.json` (schema v2).
//!
//! Exit status: `0` when the gate passes, `1` on findings (errors always;
//! warnings too under `--deny-warnings`), `2` on usage, configuration or
//! I/O problems.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use dt_lint::{find_root, load_config, run, REPORT_FILE};

const USAGE: &str = "\
dt-lint: workspace invariant analyzer (see DESIGN.md sections 9 and 14)

USAGE:
    dt-lint [OPTIONS]

OPTIONS:
    --root <DIR>       workspace root (default: nearest ancestor with lint.toml)
    --deny-warnings    exit nonzero on warnings (R6) as well as errors
    --check-config     also validate lint.toml paths/crates against the tree
    --stats            print call-graph statistics (files, items, edges,
                       unresolved-call ratio, wall time) after the summary
    --json <FILE>      write the JSON report here (default: <root>/LINT_report.json)
    --no-json          skip writing the JSON report
    --quiet            suppress the per-finding listing, keep the summary
    -h, --help         show this help
";

struct Opts {
    root: Option<PathBuf>,
    deny_warnings: bool,
    check_config: bool,
    stats: bool,
    json: Option<PathBuf>,
    no_json: bool,
    quiet: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        deny_warnings: false,
        check_config: false,
        stats: false,
        json: None,
        no_json: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = args.next().ok_or("--json needs a path")?;
                opts.json = Some(PathBuf::from(v));
            }
            "--no-json" => opts.no_json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--check-config" => opts.check_config = true,
            "--stats" => opts.stats = true,
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("dt-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match opts
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!("dt-lint: no lint.toml found above the current directory; pass --root");
            return ExitCode::from(2);
        }
    };

    let config = match load_config(&root) {
        Ok(c) => c,
        Err(errors) => {
            for e in errors {
                eprintln!("dt-lint: {e}");
            }
            return ExitCode::from(2);
        }
    };

    if opts.check_config {
        let errors = config.validate_paths(&root);
        if !errors.is_empty() {
            for e in &errors {
                eprintln!("dt-lint: {e}");
            }
            return ExitCode::from(2);
        }
    }

    let started = Instant::now();
    let mut report = match run(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dt-lint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    report.stats.wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);

    if !opts.no_json {
        let path = opts.json.unwrap_or_else(|| root.join(REPORT_FILE));
        if let Err(e) = std::fs::write(&path, report.json()) {
            eprintln!("dt-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.quiet {
        let human = report.human();
        if let Some(summary) = human.lines().last() {
            println!("{summary}");
        }
    } else {
        print!("{}", report.human());
    }
    if opts.stats {
        print!("{}", report.stats.human());
    }

    if report.fails(opts.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
