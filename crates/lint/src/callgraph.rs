//! The workspace call graph: approximate name resolution over item trees.
//!
//! Full Rust name resolution needs type inference; `dt-lint` runs without
//! the registry, so it approximates. A call site is classified as one of:
//!
//! * **Resolved** — exactly one workspace function matches, by qualified
//!   name (`Type::method` via a receiver-type hint), by unique bare name,
//!   or by module-path match for free functions;
//! * **External** — confidently not a workspace function: the name exists
//!   nowhere in the workspace, the call is an uppercase constructor /
//!   enum variant, or an unhinted method whose name shadows a common std
//!   method (`len`, `iter`, `push`, …);
//! * **Unresolved** — could be a workspace function but the evidence is
//!   ambiguous. These are *counted and reported* (`LINT_report.json`
//!   stats), never silently dropped: the resolved-call ratio is the
//!   honesty meter of the whole analysis.
//!
//! Receiver-type hints flow forward through each body: `fn` parameters,
//!   `let x: Type`, `let x = Type { … }`, `let x = Type::new(…)`, and the
//! return types of already-resolved calls (`let s = xb.matmul_nt(c)` makes
//! `s` a `Tensor`, so `s.recycle()` resolves to `Tensor::recycle`).
//!
//! The same pass records every closure literal and whether it is passed —
//! directly or via a `let`-bound name — to one of the `dt_parallel` entry
//! points; rule R8 walks those closures.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{TokKind, Token};
use crate::parser::{FnDecl, ItemTree};
use crate::walker::Role;

/// The `dt_parallel` entry points whose closures run concurrently: work
/// handed to them must be order-independent (rule R8).
/// `run_sequential`/`with_thread_limit` are deliberately absent — their
/// closures run on the caller's thread.
pub const PARALLEL_ENTRIES: &[&str] = &["par_tasks", "par_rows", "par_indices", "for_each_chunk"];

/// Method names that shadow ubiquitous std methods: an *unhinted* receiver
/// calling one of these is classified External rather than Unresolved.
/// This is the documented false-negative surface of the approximation — a
/// workspace method with one of these names, called on a receiver the hint
/// pass cannot type, silently falls out of the graph.
const STD_SHADOW: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "ceil",
    "chars",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "display",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "extend",
    "extend_from_slice",
    "fill",
    "filter",
    "clamp",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_some",
    "is_none",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "lines",
    "map",
    "map_err",
    "map_or",
    "max",
    "max_by",
    "min",
    "min_by",
    "name",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "remove",
    "repeat",
    "replace",
    "resize",
    "retain",
    "rev",
    "round",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_at",
    "split_at_mut",
    "split_once",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "tanh",
    "then",
    "to_lowercase",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "zip",
];

/// Keywords/forms that look like `ident(` but are not calls.
const NOT_CALLS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "in", "as", "move", "mut", "let",
    "impl", "use", "pub", "where", "unsafe", "dyn", "break", "continue", "ref", "crate", "super",
    "self", "Self",
];

/// How one call site resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Unique workspace function, by graph node index.
    Resolved(usize),
    /// Confidently outside the workspace (std, constructor, macro-free).
    External,
    /// Ambiguous: possibly workspace, counted in the unresolved bucket.
    Unresolved,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee identifier in the file's code slice.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Callee name as written.
    pub name: String,
    /// Resolution outcome.
    pub target: Target,
}

/// A closure literal passed to a `dt_parallel` entry point.
#[derive(Debug, Clone)]
pub struct ParClosure {
    /// Which entry point receives it (`par_rows`, `for_each_chunk`, …).
    pub entry: String,
    /// 1-based line of the opening `|`.
    pub line: u32,
    /// Parameter names bound by the closure head.
    pub params: Vec<String>,
    /// Token-index span `(start, end)` of the closure (params + body),
    /// inclusive, in the file's code slice.
    pub span: (usize, usize),
}

/// One workspace function in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning file in the analysis file list.
    pub file: usize,
    /// Stem of the defining file (`pool` for `…/pool.rs`), for
    /// module-path resolution.
    pub stem: String,
    /// Owning crate directory name (`parallel` for `crates/parallel/…`).
    pub crate_name: Option<String>,
    /// `Type::name` or bare `name`.
    pub qual: String,
    /// Bare name.
    pub name: String,
    /// `impl` self type, when any.
    pub self_ty: Option<String>,
    /// Coarse return-type head.
    pub ret_ty: Option<String>,
    /// 1-based span lines.
    pub line: u32,
    /// 1-based line of the closing brace.
    pub end_line: u32,
    /// Body token range `(open_brace, close_brace)` in the file's code.
    pub body: Option<(usize, usize)>,
    /// Role of the owning file.
    pub role: Role,
    /// Classified call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Closures handed to `dt_parallel` entry points.
    pub par_closures: Vec<ParClosure>,
}

/// The whole-workspace graph plus name indexes.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes.
    pub fns: Vec<FnNode>,
    /// `Type::name` / bare `name` → node (first wins on duplicates; the
    /// duplicate also stays reachable through `by_name`).
    pub by_qual: BTreeMap<String, usize>,
    /// Bare name → all nodes sharing it.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Every `impl` self type seen in the workspace.
    pub impl_types: BTreeSet<String>,
    /// `Enum::Variant` → type head of its single tuple payload
    /// (`Grad::Dense` → `Tensor`). Multi-payload and struct variants are
    /// omitted. Feeds receiver hints for match-arm bindings.
    pub variant_payload: BTreeMap<String, String>,
}

/// Per-file input to the graph build.
pub struct FileInput<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Layout role (graph edges only leave from/into `Lib` analysis, but
    /// all roles are indexed so entry points in bench sources resolve).
    pub role: Role,
    /// Comment-free token stream.
    pub code: &'a [Token],
    /// Parsed item tree of `code`.
    pub tree: &'a ItemTree,
}

impl CallGraph {
    /// Builds the graph: indexes every function, then classifies every
    /// call site with receiver-type hints.
    #[must_use]
    pub fn build(files: &[FileInput<'_>]) -> CallGraph {
        let mut g = CallGraph::default();
        for f in files {
            scan_enum_payloads(f.code, &mut g.variant_payload);
        }
        for (fi, f) in files.iter().enumerate() {
            let stem = file_stem(f.rel);
            let crate_name = crate::walker::crate_of(f.rel);
            for d in &f.tree.fns {
                let id = g.fns.len();
                let qual = d.qual();
                g.by_qual.entry(qual.clone()).or_insert(id);
                g.by_name.entry(d.name.clone()).or_default().push(id);
                if let Some(t) = &d.self_ty {
                    g.impl_types.insert(t.clone());
                }
                g.fns.push(FnNode {
                    file: fi,
                    stem: stem.clone(),
                    crate_name: crate_name.clone(),
                    qual,
                    name: d.name.clone(),
                    self_ty: d.self_ty.clone(),
                    ret_ty: d.ret_ty.clone(),
                    line: d.line,
                    end_line: d.end_line,
                    body: d.body,
                    role: f.role,
                    calls: Vec::new(),
                    par_closures: Vec::new(),
                });
            }
        }
        for id in 0..g.fns.len() {
            let fi = g.fns[id].file;
            let file = &files[fi];
            let Some(decl) = file
                .tree
                .fns
                .iter()
                .find(|d| d.line == g.fns[id].line && d.name == g.fns[id].name)
            else {
                continue;
            };
            let (calls, par_closures) = analyze_body(&g, file, fi, decl);
            g.fns[id].calls = calls;
            g.fns[id].par_closures = par_closures;
        }
        g
    }

    /// Sums `(resolved, external, unresolved)` over the given node set.
    #[must_use]
    pub fn call_stats(&self, nodes: &[usize]) -> (usize, usize, usize) {
        let mut r = (0, 0, 0);
        for &id in nodes {
            for c in &self.fns[id].calls {
                match c.target {
                    Target::Resolved(_) => r.0 += 1,
                    Target::External => r.1 += 1,
                    Target::Unresolved => r.2 += 1,
                }
            }
        }
        r
    }
}

/// Scans one function body: finds closures (and which are handed to
/// parallel entry points), then classifies every call site with forward
/// hint propagation.
fn analyze_body(
    g: &CallGraph,
    file: &FileInput<'_>,
    fi: usize,
    decl: &FnDecl,
) -> (Vec<CallSite>, Vec<ParClosure>) {
    let Some((open, close)) = decl.body else {
        return (Vec::new(), Vec::new());
    };
    let code = file.code;
    let range = open + 1..close.min(code.len());

    // -------- pass A: closure literals and their let-bound names --------
    let mut closures: Vec<ParClosure> = Vec::new();
    let mut closure_lets: BTreeMap<String, usize> = BTreeMap::new();
    // let-bound closure name → declared `-> Type` return head, so that
    // `val(x).m(…)` and `let t = val(x);` keep the type flowing.
    let mut closure_rets: BTreeMap<String, String> = BTreeMap::new();
    let mut i = range.start;
    while i < range.end {
        if code[i].text == "|" && is_closure_start(code, i) {
            if let Some((params, span_end)) = parse_closure(code, i, range.end) {
                let idx = closures.len();
                // `let name = |…|` / `let name = move |…|` association.
                let mut b = i;
                if b >= 1 && code[b - 1].text == "move" {
                    b -= 1;
                }
                if b >= 2 && code[b - 1].text == "=" && code[b - 2].kind == TokKind::Ident {
                    let name = &code[b - 2].text;
                    let is_let = (3..=4)
                        .any(|k| b >= k && matches!(code[b - k].text.as_str(), "let" | "mut"));
                    if is_let {
                        closure_lets.insert(name.clone(), idx);
                        if let Some(rt) = closure_ret_head(code, i, range.end) {
                            closure_rets.insert(name.clone(), rt);
                        }
                    }
                }
                closures.push(ParClosure {
                    entry: String::new(), // filled when marked
                    line: code[i].line,
                    params,
                    span: (i, span_end),
                });
                i += 1;
                continue;
            }
        }
        i += 1;
    }

    // -------- pass B: hints + call classification --------
    let mut hints: BTreeMap<String, String> = BTreeMap::new();
    for p in &decl.params {
        if let Some(t) = &p.ty {
            hints.insert(p.name.clone(), t.clone());
        }
    }
    let mut calls: Vec<CallSite> = Vec::new();
    // closing-paren token index → return-type head of the resolved call
    let mut ret_at: BTreeMap<usize, String> = BTreeMap::new();
    let mut pending_let: Option<String> = None;
    let mut i = range.start;
    while i < range.end {
        let t = &code[i];
        match t.text.as_str() {
            ";" => pending_let = None,
            "let" => {
                // `let [mut] name [: Type] = …`
                let mut j = i + 1;
                while j < range.end && code[j].text == "mut" {
                    j += 1;
                }
                if j < range.end
                    && code[j].kind == TokKind::Ident
                    // `let Enum::Variant(x) = …` is a destructuring
                    // pattern, not a binding: leave it to the
                    // variant-payload scan below.
                    && !code.get(j + 2).is_some_and(|t| t.text == ":")
                {
                    let name = code[j].text.clone();
                    match code.get(j + 1).map(|t| t.text.as_str()) {
                        Some(":") => {
                            let ty_toks: Vec<&Token> = code[j + 2..range.end]
                                .iter()
                                .take_while(|t| t.text != "=" && t.text != ";")
                                .collect();
                            if let Some(h) = coarse_type_head(&ty_toks) {
                                hints.insert(name, h);
                            }
                        }
                        Some("=") => {
                            // `let x = Type { … }` struct literal.
                            if let (Some(a), Some(b)) = (code.get(j + 2), code.get(j + 3)) {
                                if a.kind == TokKind::Ident
                                    && starts_upper(&a.text)
                                    && b.text == "{"
                                {
                                    hints.insert(name.clone(), a.text.clone());
                                }
                                // `let x = y;` hint copy.
                                if a.kind == TokKind::Ident && b.text == ";" {
                                    if let Some(h) = hints.get(&a.text).cloned() {
                                        hints.insert(name.clone(), h);
                                    }
                                }
                            }
                            pending_let = Some(name);
                        }
                        _ => {}
                    }
                    i = j + 1;
                    continue;
                }
            }
            _ => {}
        }
        // `Enum::Variant(binding)` — in a match pattern the binding *is*
        // the payload; in a constructor the argument must *be* one. Either
        // way the ident inside carries the variant's payload type.
        if t.kind == TokKind::Ident
            && starts_upper(&t.text)
            && code.get(i + 1).is_some_and(|n| n.text == ":")
            && code.get(i + 2).is_some_and(|n| n.text == ":")
        {
            if let (Some(v), Some(p)) = (code.get(i + 3), code.get(i + 4)) {
                if v.kind == TokKind::Ident && p.text == "(" {
                    if let Some(pay) = g.variant_payload.get(&format!("{}::{}", t.text, v.text)) {
                        let mut k = i + 5;
                        while code
                            .get(k)
                            .is_some_and(|x| x.text == "ref" || x.text == "mut")
                        {
                            k += 1;
                        }
                        if let (Some(b), Some(c)) = (code.get(k), code.get(k + 1)) {
                            if b.kind == TokKind::Ident
                                && !starts_upper(&b.text)
                                && b.text != "_"
                                && c.text == ")"
                            {
                                hints.insert(b.text.clone(), pay.clone());
                            }
                        }
                    }
                }
            }
        }
        if t.kind == TokKind::Ident
            && code.get(i + 1).is_some_and(|n| n.text == "(")
            && !NOT_CALLS.contains(&t.text.as_str())
            && !(i >= 1 && code[i - 1].text == "fn")
        {
            // Invoking a let-bound closure is same-fn control flow, not a
            // call edge — but its declared return type still feeds hints.
            let free_form = !(i >= 1 && matches!(code[i - 1].text.as_str(), "." | ":"));
            if free_form && closure_lets.contains_key(&t.text) {
                if let (Some(rt), Some(cp)) = (closure_rets.get(&t.text), paren_close(code, i + 1))
                {
                    ret_at.insert(cp, rt.clone());
                    let ends_stmt = code
                        .get(cp + 1)
                        .map_or(true, |n| n.text == ";" || n.text == "?");
                    if ends_stmt {
                        if let Some(name) = pending_let.take() {
                            hints.insert(name, rt.clone());
                        }
                    }
                }
                i += 1;
                continue;
            }
            let site = classify_call(g, fi, code, i, &hints, &closure_lets);
            if let Some(mut site) = site {
                // Feed method-chain receivers: reuse ret_at lookups. The
                // chain hint also overrides a *shadow*-based External —
                // `val(a).map(f)` is `Tensor::map`, not `Iterator::map`,
                // once the receiver's type is known.
                let rescue = site.target == Target::Unresolved
                    || (site.target == Target::External
                        && STD_SHADOW.contains(&site.name.as_str()));
                if rescue {
                    if let Some(hint) = chain_hint(code, i, &ret_at) {
                        site = reclassify_with_hint(g, site, &hint);
                    }
                }
                // Track the value type for `let x = call(…);` chains. A
                // literal `Self` return is the callee's impl type.
                if let Some(cp) = paren_close(code, i + 1) {
                    let ret = match site.target {
                        Target::Resolved(id) => {
                            let f = &g.fns[id];
                            f.ret_ty.clone().map(|r| match (r.as_str(), &f.self_ty) {
                                ("Self", Some(t)) => t.clone(),
                                _ => r,
                            })
                        }
                        _ => None,
                    };
                    if let Some(rt) = ret {
                        ret_at.insert(cp, rt.clone());
                        let ends_stmt = code
                            .get(cp + 1)
                            .map_or(true, |n| n.text == ";" || n.text == "?");
                        if ends_stmt {
                            if let Some(name) = pending_let.take() {
                                hints.insert(name, rt);
                            }
                        }
                    }
                    // Parallel entry: mark closures in its argument list.
                    if PARALLEL_ENTRIES.contains(&site.name.as_str()) {
                        mark_parallel_closures(
                            code,
                            i + 1,
                            cp,
                            &site.name,
                            &mut closures,
                            &closure_lets,
                        );
                    }
                }
                calls.push(site);
            }
        }
        i += 1;
    }
    let par: Vec<ParClosure> = closures
        .into_iter()
        .filter(|c| !c.entry.is_empty())
        .collect();
    (calls, par)
}

/// Classifies the call whose callee identifier sits at `i`.
fn classify_call(
    g: &CallGraph,
    fi: usize,
    code: &[Token],
    i: usize,
    hints: &BTreeMap<String, String>,
    closure_lets: &BTreeMap<String, usize>,
) -> Option<CallSite> {
    let name = code[i].text.clone();
    let line = code[i].line;
    let prev = i.checked_sub(1).map(|p| code[p].text.as_str());
    let target = if prev == Some(".") {
        // Method call: type the receiver.
        let hint = method_receiver_hint(code, i, hints);
        classify_method(g, &name, hint.as_deref())
    } else if prev == Some(":") && i >= 2 && code[i - 2].text == ":" {
        classify_path_call(g, code, i, &name, hints)
    } else {
        // Free call.
        if closure_lets.contains_key(&name) {
            return None; // invoking a local closure: same-fn control flow
        }
        if starts_upper(&name) {
            Target::External // tuple-struct / enum-variant constructor
        } else {
            classify_free(g, fi, &name)
        }
    };
    Some(CallSite {
        tok: i,
        line,
        name,
        target,
    })
}

/// Receiver hint for `recv.name(…)` with the callee ident at `i`
/// (`code[i-1]` is the `.`).
fn method_receiver_hint(
    code: &[Token],
    i: usize,
    hints: &BTreeMap<String, String>,
) -> Option<String> {
    let r = i.checked_sub(2)?;
    let rt = code.get(r)?;
    if rt.kind == TokKind::Ident {
        // `x.m()` — but `a.x.m()` (field access) gets no hint. A `.` right
        // before the receiver can also be the second dot of a range
        // (`0..x.m()` — the lexer splits `..`); that one keeps the hint.
        if r >= 1 && code[r - 1].text == "." && !(r >= 2 && code[r - 2].text == ".") {
            return None;
        }
        return hints.get(&rt.text).cloned();
    }
    None
}

/// For a chained call `….prev().name(…)`: the receiver ends in `)` whose
/// return type may be known from `ret_at`.
fn chain_hint(code: &[Token], i: usize, ret_at: &BTreeMap<usize, String>) -> Option<String> {
    let r = i.checked_sub(2)?;
    if code.get(r)?.text == ")" {
        return ret_at.get(&r).cloned();
    }
    None
}

fn reclassify_with_hint(g: &CallGraph, mut site: CallSite, hint: &str) -> CallSite {
    site.target = classify_method(g, &site.name, Some(hint));
    site
}

/// Resolution for `recv.name(…)`.
fn classify_method(g: &CallGraph, name: &str, hint: Option<&str>) -> Target {
    if let Some(t) = hint {
        if let Some(&id) = g.by_qual.get(&format!("{t}::{name}")) {
            return Target::Resolved(id);
        }
        if !g.impl_types.contains(t) {
            return Target::External; // typed receiver outside the workspace
        }
        // Workspace type without that method: derived/trait impl or std
        // shadow. Anything on the shadow list is std; the rest is honest
        // ambiguity.
        if STD_SHADOW.contains(&name) {
            return Target::External;
        }
        return Target::Unresolved;
    }
    let methods: Vec<usize> = g
        .by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&id| g.fns[id].self_ty.is_some())
                .collect()
        })
        .unwrap_or_default();
    if methods.is_empty() {
        return Target::External;
    }
    if STD_SHADOW.contains(&name) {
        return Target::External;
    }
    if methods.len() == 1 {
        return Target::Resolved(methods[0]);
    }
    Target::Unresolved
}

/// Resolution for `head::name(…)` path calls.
fn classify_path_call(
    g: &CallGraph,
    code: &[Token],
    i: usize,
    name: &str,
    hints: &BTreeMap<String, String>,
) -> Target {
    let Some(head) = path_head(code, i) else {
        return Target::Unresolved;
    };
    let head = if head == "Self" {
        match hints.get("self") {
            Some(t) => t.clone(),
            None => head,
        }
    } else {
        head
    };
    if starts_upper(&head) {
        if let Some(&id) = g.by_qual.get(&format!("{head}::{name}")) {
            return Target::Resolved(id);
        }
        if starts_upper(name) {
            return Target::External; // `Grad::Dense(…)` enum variant
        }
        if !g.impl_types.contains(&head) {
            return Target::External; // `String::new`, `Instant::now`, …
        }
        if STD_SHADOW.contains(&name) {
            return Target::External;
        }
        return Target::Unresolved;
    }
    // Module path: match free fns by defining-file stem or crate name.
    let free: Vec<usize> = g
        .by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&id| g.fns[id].self_ty.is_none())
                .collect()
        })
        .unwrap_or_default();
    if free.is_empty() {
        return Target::External;
    }
    let by_module: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&id| module_matches(g, id, &head))
        .collect();
    if by_module.len() == 1 {
        return Target::Resolved(by_module[0]);
    }
    if free.len() == 1 {
        return Target::Resolved(free[0]);
    }
    Target::Unresolved
}

/// Free-call resolution: unique workspace name, with same-file preference.
fn classify_free(g: &CallGraph, fi: usize, name: &str) -> Target {
    let free: Vec<usize> = g
        .by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&id| g.fns[id].self_ty.is_none())
                .collect()
        })
        .unwrap_or_default();
    match free.len() {
        0 => Target::External,
        1 => Target::Resolved(free[0]),
        _ => {
            let same_file: Vec<usize> = free
                .iter()
                .copied()
                .filter(|&id| g.fns[id].file == fi)
                .collect();
            if same_file.len() == 1 {
                Target::Resolved(same_file[0])
            } else {
                Target::Unresolved
            }
        }
    }
}

/// Does `head` plausibly name the module of node `id`? Accepts the
/// defining file's stem (`pool::take` ← `…/pool.rs`) and the crate name
/// with or without a `dt_` prefix (`dt_parallel::par_rows` ←
/// `crates/parallel/…`).
fn module_matches(g: &CallGraph, id: usize, head: &str) -> bool {
    let node = &g.fns[id];
    if node.stem == head {
        return true;
    }
    node.crate_name
        .as_ref()
        .is_some_and(|c| head == c || head.strip_prefix("dt_").is_some_and(|h| h == c))
}

/// Collects `Enum::Variant → payload type head` for every enum variant
/// with exactly one tuple payload (`Dense(Tensor)`). Variants with
/// several payloads, struct bodies, or no payload are skipped.
fn scan_enum_payloads(code: &[Token], map: &mut BTreeMap<String, String>) {
    let mut i = 0;
    while i < code.len() {
        if code[i].text != "enum" || code.get(i + 1).map_or(true, |t| t.kind != TokKind::Ident) {
            i += 1;
            continue;
        }
        let ename = code[i + 1].text.clone();
        // Skip any generics on the enum head, then require the body brace.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < code.len() {
            match code[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break,
                ";" | "}" => break, // not an enum body after all
                _ => {}
            }
            j += 1;
        }
        if code.get(j).map_or(true, |t| t.text != "{") {
            i += 1;
            continue;
        }
        let close = brace_close(code, j, code.len());
        let mut k = j + 1;
        while k < close {
            let t = &code[k];
            if t.kind == TokKind::Ident && starts_upper(&t.text) {
                match code.get(k + 1).map(|n| n.text.as_str()) {
                    Some("(") => {
                        let pc = paren_close(code, k + 1).unwrap_or(close).min(close);
                        let inner: Vec<&Token> = code[k + 2..pc].iter().collect();
                        let single = !inner.iter().any(|t| t.text == ",");
                        if single {
                            if let Some(head) = coarse_type_head(&inner) {
                                map.insert(format!("{ename}::{}", t.text), head);
                            }
                        }
                        k = pc + 1;
                        continue;
                    }
                    Some("{") => {
                        // Struct variant: skip its body wholesale.
                        k = brace_close(code, k + 1, close) + 1;
                        continue;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        i = close + 1;
    }
}

/// Stem of a workspace-relative path (`crates/tensor/src/pool.rs` →
/// `pool`).
fn file_stem(rel: &str) -> String {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
        .to_owned()
}

/// Walks back over `a::b::name` and returns the segment just before
/// `name` (`b`).
fn path_head(code: &[Token], i: usize) -> Option<String> {
    let p = i.checked_sub(3)?;
    let t = code.get(p)?;
    if t.kind == TokKind::Ident {
        Some(t.text.clone())
    } else {
        None
    }
}

/// `(` at `open` → index of its matching `)`.
fn paren_close(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Marks closures that are arguments of the parallel-entry call spanning
/// `(open … close)`: closure literals inside the span, and `let`-bound
/// closure names passed bare.
fn mark_parallel_closures(
    code: &[Token],
    open: usize,
    close: usize,
    entry: &str,
    closures: &mut [ParClosure],
    closure_lets: &BTreeMap<String, usize>,
) {
    for c in closures.iter_mut() {
        if c.span.0 > open && c.span.0 < close && c.entry.is_empty() {
            c.entry = entry.to_owned();
        }
    }
    for t in &code[open + 1..close.min(code.len())] {
        if t.kind == TokKind::Ident {
            if let Some(&idx) = closure_lets.get(&t.text) {
                if closures[idx].entry.is_empty() {
                    closures[idx].entry = entry.to_owned();
                }
            }
        }
    }
}

/// Is the `|` at `i` a closure head rather than a binary or?
pub(crate) fn is_closure_start(code: &[Token], i: usize) -> bool {
    match i.checked_sub(1).map(|p| code[p].text.as_str()) {
        None => true,
        Some("(" | "," | "=" | "move" | "{" | "return" | ">" | "else") => true,
        Some(_) => false,
    }
}

/// Parses a closure starting at the `|` at `i`: returns the bound
/// parameter names and the inclusive token index where the closure ends.
pub(crate) fn parse_closure(
    code: &[Token],
    i: usize,
    limit: usize,
) -> Option<(Vec<String>, usize)> {
    // Parameter list: up to the matching `|` (depth over brackets).
    let mut params = Vec::new();
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut after_colon = false;
    let close_bar = loop {
        if j >= limit {
            return None;
        }
        let t = &code[j];
        match t.text.as_str() {
            "|" if depth <= 0 => break j,
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            ":" if depth <= 0 => after_colon = true,
            "," if depth <= 0 => after_colon = false,
            _ => {
                if !after_colon
                    && t.kind == TokKind::Ident
                    && t.text != "mut"
                    && t.text != "ref"
                    && t.text != "_"
                {
                    params.push(t.text.clone());
                }
            }
        }
        j += 1;
    };
    // Body: a block (possibly after a `-> Type` annotation), or a bare
    // expression up to the enclosing `,`/`)`/`;`.
    let mut k = close_bar + 1;
    if code.get(k).is_some_and(|t| t.text == "-") && code.get(k + 1).is_some_and(|t| t.text == ">")
    {
        // Return-annotated closures require a braced body.
        while k < limit && code[k].text != "{" {
            k += 1;
        }
    }
    if k < limit && code[k].text == "{" {
        let end = brace_close(code, k, limit);
        return Some((params, end));
    }
    // Expression body: scan to the `,` / `)` / `;` at depth 0.
    let mut depth = 0i32;
    let mut k = close_bar + 1;
    while k < limit {
        match code[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return Some((params, k.saturating_sub(1)));
                }
                depth -= 1;
            }
            "," | ";" if depth == 0 => return Some((params, k.saturating_sub(1))),
            _ => {}
        }
        k += 1;
    }
    Some((params, limit.saturating_sub(1)))
}

/// Declared return-type head of the closure whose opening `|` sits at
/// `i` (`|v: Var| -> &Tensor { … }` → `Tensor`); `None` when the closure
/// has no `-> Type` annotation.
fn closure_ret_head(code: &[Token], i: usize, limit: usize) -> Option<String> {
    // Find the closing `|` with the same bracket-depth rule as
    // `parse_closure`.
    let mut j = i + 1;
    let mut depth = 0i32;
    let close_bar = loop {
        if j >= limit {
            return None;
        }
        match code[j].text.as_str() {
            "|" if depth <= 0 => break j,
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            _ => {}
        }
        j += 1;
    };
    if code.get(close_bar + 1).map_or(true, |t| t.text != "-")
        || code.get(close_bar + 2).map_or(true, |t| t.text != ">")
    {
        return None;
    }
    let ty: Vec<&Token> = code[close_bar + 3..limit]
        .iter()
        .take_while(|t| t.text != "{")
        .collect();
    coarse_type_head(&ty)
}

/// `{` at `open` → index of its matching `}` (or `limit - 1`).
fn brace_close(code: &[Token], open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().take(limit).skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    limit.saturating_sub(1)
}

/// Coarse type head over borrowed tokens (mirrors `parser::type_head`).
fn coarse_type_head(toks: &[&Token]) -> Option<String> {
    let mut last: Option<String> = None;
    for t in toks {
        match t.text.as_str() {
            "&" | "mut" | "dyn" | "impl" | ":" => continue,
            "<" | "(" | "[" | "," | ";" | "+" => break,
            _ if t.kind == TokKind::Lifetime => continue,
            _ if t.kind == TokKind::Ident => last = Some(t.text.clone()),
            _ => break,
        }
    }
    last
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FileAnalysis;

    fn build(src: &str) -> CallGraph {
        let fa = FileAnalysis::new("crates/x/src/lib.rs", src);
        CallGraph::build(&[FileInput {
            rel: &fa.rel,
            role: fa.role,
            code: &fa.code,
            tree: &fa.tree,
        }])
    }

    /// Target of the only call named `callee` inside `caller`.
    fn target(g: &CallGraph, caller: &str, callee: &str) -> Target {
        let f = g
            .fns
            .iter()
            .find(|f| f.qual == caller)
            .unwrap_or_else(|| panic!("no fn {caller}"));
        let hits: Vec<&CallSite> = f.calls.iter().filter(|c| c.name == callee).collect();
        assert_eq!(hits.len(), 1, "{caller} should call {callee} exactly once");
        hits[0].target
    }

    fn resolved_qual(g: &CallGraph, caller: &str, callee: &str) -> String {
        match target(g, caller, callee) {
            Target::Resolved(id) => g.fns[id].qual.clone(),
            other => panic!("{caller} -> {callee} not resolved: {other:?}"),
        }
    }

    // `rows` is deliberately defined on two types in these sources, so an
    // unhinted receiver cannot resolve it — each test exercises one hint
    // mechanism that must survive the ambiguity.
    const TWO_ROWS: &str = "impl Alpha { pub fn rows(&self) -> usize { 1 } }\n\
                            impl Beta { pub fn rows(&self) -> usize { 2 } }\n";

    #[test]
    fn range_expression_keeps_the_receiver_hint() {
        let src = format!(
            "{TWO_ROWS}impl Alpha {{\n  pub fn f(&self) -> usize {{\n    \
             let mut s = 0;\n    for i in 0..self.rows() {{ s += i; }}\n    s\n  }}\n}}\n"
        );
        let g = build(&src);
        assert_eq!(resolved_qual(&g, "Alpha::f", "rows"), "Alpha::rows");
    }

    #[test]
    fn enum_payload_scan_maps_single_tuple_variants_only() {
        let src = "pub enum Grad {\n  Dense(Tensor),\n  Pair(Tensor, Tensor),\n  \
                   Named { t: Tensor },\n  Empty,\n}\n";
        let g = build(src);
        assert_eq!(
            g.variant_payload.get("Grad::Dense").map(String::as_str),
            Some("Tensor")
        );
        assert!(!g.variant_payload.contains_key("Grad::Pair"));
        assert!(!g.variant_payload.contains_key("Grad::Named"));
        assert!(!g.variant_payload.contains_key("Grad::Empty"));
    }

    #[test]
    fn match_and_if_let_bindings_carry_the_payload_type() {
        let src = format!(
            "pub enum G {{ A(Alpha), B(Beta) }}\n{TWO_ROWS}\
             impl G {{\n  pub fn m(&self) -> usize {{\n    match self {{\n      \
             G::A(t) => t.rows(),\n      G::B(s) => s.rows(),\n    }}\n  }}\n  \
             pub fn n(g: G) -> usize {{\n    if let G::A(inner) = g {{ inner.rows() }} \
             else {{ 0 }}\n  }}\n}}\n"
        );
        let g = build(&src);
        let m = g.fns.iter().find(|f| f.qual == "G::m").unwrap();
        let quals: Vec<&str> = m
            .calls
            .iter()
            .filter(|c| c.name == "rows")
            .map(|c| match c.target {
                Target::Resolved(id) => g.fns[id].qual.as_str(),
                other => panic!("unresolved arm call: {other:?}"),
            })
            .collect();
        assert_eq!(quals, ["Alpha::rows", "Beta::rows"]);
        assert_eq!(resolved_qual(&g, "G::n", "rows"), "Alpha::rows");
    }

    #[test]
    fn closure_return_annotation_types_its_invocations() {
        let src = format!(
            "{TWO_ROWS}impl Alpha {{\n  pub fn f(&self) -> usize {{\n    \
             let pick = |i: usize| -> &Alpha {{ self }};\n    \
             let t = pick(0);\n    t.rows() + pick(1).rows()\n  }}\n}}\n"
        );
        let g = build(&src);
        let f = g.fns.iter().find(|f| f.qual == "Alpha::f").unwrap();
        let rows: Vec<Target> = f
            .calls
            .iter()
            .filter(|c| c.name == "rows")
            .map(|c| c.target)
            .collect();
        assert_eq!(rows.len(), 2);
        for t in rows {
            match t {
                Target::Resolved(id) => assert_eq!(g.fns[id].qual, "Alpha::rows"),
                other => panic!("closure-typed rows call not resolved: {other:?}"),
            }
        }
    }

    #[test]
    fn chain_hint_rescues_shadow_externals_and_self_returns() {
        // `mk` returns `Self`; `map` shadows a std name; `rows` is
        // ambiguous. The chain only resolves if the `Self` return is
        // normalised to `Alpha` AND the shadow External is overridden.
        let src = format!(
            "{TWO_ROWS}impl Alpha {{\n  pub fn mk() -> Self {{ Alpha }}\n  \
             pub fn map(&self, k: usize) -> Self {{ Alpha }}\n  \
             pub fn g() -> usize {{ Alpha::mk().map(1).rows() }}\n}}\n\
             impl Beta {{ pub fn map(&self, k: usize) -> Self {{ Beta }} }}\n"
        );
        let g = build(&src);
        assert_eq!(resolved_qual(&g, "Alpha::g", "map"), "Alpha::map");
        assert_eq!(resolved_qual(&g, "Alpha::g", "rows"), "Alpha::rows");
    }
}
