//! Per-rule fixture tests: every rule has a positive fixture that must
//! fire and a negative fixture (or an exempt placement of the same
//! source) that must stay silent. The fixtures live under
//! `tests/fixtures/` and are excluded from the workspace walk by the
//! committed `lint.toml`, so deliberate violations never reach CI.

use std::path::Path;

use dt_lint::rules::lint_source;
use dt_lint::{find_root, load_config, Config, Report, Severity};

fn config() -> Config {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint.toml above the crate");
    load_config(&root).expect("committed lint.toml parses")
}

/// Rule ids fired when linting `src` as if it lived at `rel`.
fn fired(rel: &str, src: &str) -> Vec<&'static str> {
    lint_source(rel, src, &config())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

const R1_BAD: &str = include_str!("fixtures/r1_bad.rs");
const R1_OK: &str = include_str!("fixtures/r1_ok.rs");
const R2_BAD: &str = include_str!("fixtures/r2_bad.rs");
const R2_OK: &str = include_str!("fixtures/r2_ok.rs");
const R3_BAD: &str = include_str!("fixtures/r3_bad.rs");
const R3_OK: &str = include_str!("fixtures/r3_ok.rs");
const R4_BAD: &str = include_str!("fixtures/r4_bad.rs");
const R4_OK: &str = include_str!("fixtures/r4_ok.rs");
const R5_BAD: &str = include_str!("fixtures/r5_bad.rs");
const R5_OK: &str = include_str!("fixtures/r5_ok.rs");
const R6_BAD: &str = include_str!("fixtures/r6_bad.rs");
const R6_OK: &str = include_str!("fixtures/r6_ok.rs");
const R7_BAD: &str = include_str!("fixtures/r7_bad.rs");
const R7_OK: &str = include_str!("fixtures/r7_ok.rs");

#[test]
fn r1_unsafe_outside_the_allowlist_fires() {
    assert_eq!(fired("crates/data/src/fixture.rs", R1_BAD), ["r1"]);
}

#[test]
fn r1_allowlisted_paths_and_safe_code_pass() {
    // The exact-file and directory-prefix allow entries both apply.
    assert!(fired("crates/parallel/src/pool.rs", R1_BAD).is_empty());
    assert!(fired("crates/tensor/src/simd.rs", R1_BAD).is_empty());
    assert!(fired("crates/data/src/fixture.rs", R1_OK).is_empty());
}

#[test]
fn r2_adhoc_threading_fires_outside_the_pool_crate() {
    assert_eq!(fired("crates/models/src/fixture.rs", R2_BAD), ["r2", "r2"]);
}

#[test]
fn r2_pool_crate_and_pool_users_pass() {
    assert!(fired("crates/parallel/src/fixture.rs", R2_BAD).is_empty());
    assert!(fired("crates/models/src/fixture.rs", R2_OK).is_empty());
}

#[test]
fn r3_panicking_shortcuts_fire_in_covered_lib_code() {
    assert_eq!(
        fired("crates/tensor/src/fixture.rs", R3_BAD),
        ["r3", "r3", "r3"]
    );
}

#[test]
fn r3_scope_annotations_and_tests_pass() {
    // Covered crate, but annotated / under #[cfg(test)].
    assert!(fired("crates/tensor/src/fixture.rs", R3_OK).is_empty());
    // Uncovered crate.
    assert!(fired("crates/metrics/src/fixture.rs", R3_BAD).is_empty());
    // Covered crate, test role.
    assert!(fired("crates/tensor/tests/fixture.rs", R3_BAD).is_empty());
}

#[test]
fn r4_nondeterminism_fires_in_lib_code() {
    assert_eq!(
        fired("crates/core/src/fixture.rs", R4_BAD),
        ["r4", "r4", "r4", "r4"]
    );
}

#[test]
fn r4_wallclock_allowlist_covers_clocks_but_not_rng() {
    // bench may read clocks, but unseeded randomness is never allowed.
    assert_eq!(fired("crates/bench/src/fixture.rs", R4_BAD), ["r4", "r4"]);
    assert!(fired("crates/core/src/fixture.rs", R4_OK).is_empty());
}

#[test]
fn r5_console_printing_fires_in_lib_code() {
    assert_eq!(fired("crates/core/src/fixture.rs", R5_BAD), ["r5", "r5"]);
}

#[test]
fn r5_binaries_allowlisted_crates_and_writeln_pass() {
    assert!(fired("crates/core/src/bin/tool.rs", R5_BAD).is_empty());
    assert!(fired("crates/bench/src/fixture.rs", R5_BAD).is_empty());
    assert!(fired("crates/core/src/fixture.rs", R5_OK).is_empty());
}

#[test]
fn r6_uncited_pub_fns_warn_in_covered_crates() {
    let findings = lint_source("crates/estimators/src/fixture.rs", R6_BAD, &config());
    assert_eq!(findings.len(), 2);
    assert!(findings
        .iter()
        .all(|f| f.rule == "r6" && f.severity == Severity::Warning));
}

#[test]
fn r6_citations_private_fns_and_waivers_pass() {
    assert!(fired("crates/estimators/src/fixture.rs", R6_OK).is_empty());
    // Crates outside [r6] carry no citation duty at all.
    assert!(fired("crates/core/src/fixture.rs", R6_BAD).is_empty());
}

#[test]
fn r7_fresh_allocations_fire_in_configured_hot_paths() {
    assert_eq!(fired("crates/tensor/src/gemm.rs", R7_BAD), ["r7", "r7"]);
    assert_eq!(fired("crates/autograd/src/graph.rs", R7_BAD), ["r7", "r7"]);
}

#[test]
fn r7_pooled_annotated_and_out_of_scope_allocations_pass() {
    assert!(fired("crates/tensor/src/gemm.rs", R7_OK).is_empty());
    assert!(fired("crates/tensor/src/elementwise.rs", R7_OK).is_empty());
    // Only the configured hot paths carry the duty.
    assert!(fired("crates/tensor/src/init.rs", R7_BAD).is_empty());
    assert!(fired("crates/models/src/mf.rs", R7_BAD).is_empty());
}

#[test]
fn gate_semantics_errors_always_fail_warnings_only_under_deny() {
    let cfg = config();
    let warn_only = Report {
        findings: lint_source("crates/estimators/src/fixture.rs", R6_BAD, &cfg),
        files_scanned: 1,
    };
    assert!(!warn_only.fails(false));
    assert!(warn_only.fails(true));

    let errors = Report {
        findings: lint_source("crates/data/src/fixture.rs", R1_BAD, &cfg),
        files_scanned: 1,
    };
    assert!(errors.fails(false));
    assert!(errors.fails(true));
}
