//! Per-rule fixture tests: every rule has a positive fixture that must
//! fire and a negative fixture (or an exempt placement of the same
//! source) that must stay silent. The fixtures live under
//! `tests/fixtures/` and are excluded from the workspace walk by the
//! committed `lint.toml`, so deliberate violations never reach CI.
//!
//! Token rules (R1–R6) drive `rules::lint_source` directly; the flow
//! rules (R8–R10) go through `run_sources`, which also builds the item
//! tree and call graph, with fixture-local `[r10]` entry points.

use std::path::Path;

use dt_lint::rules::lint_source;
use dt_lint::{find_root, load_config, run_sources, Config, Finding, Report, Severity, Stats};

fn config() -> Config {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint.toml above the crate");
    load_config(&root).expect("committed lint.toml parses")
}

/// Rule ids fired when token-linting `src` as if it lived at `rel`.
fn fired(rel: &str, src: &str) -> Vec<&'static str> {
    lint_source(rel, src, &config())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

/// Full two-phase findings for `src` at `rel`, using the committed
/// config with its `[r10]` entry points replaced by `entries` (the real
/// entries match nothing inside a single-fixture workspace).
fn flow_findings(rel: &str, src: &str, entries: &[&str]) -> Vec<Finding> {
    run_sources(&[(rel.to_owned(), src.to_owned())], &flow_config(entries)).findings
}

fn flow_config(entries: &[&str]) -> Config {
    let mut cfg = config();
    cfg.r10_entry_points = entries.iter().map(|s| (*s).to_owned()).collect();
    cfg
}

/// Rule ids from [`flow_findings`], in canonical report order.
fn flow_fired(rel: &str, src: &str, entries: &[&str]) -> Vec<&'static str> {
    flow_findings(rel, src, entries)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

const R1_BAD: &str = include_str!("fixtures/r1_bad.rs");
const R1_OK: &str = include_str!("fixtures/r1_ok.rs");
const R2_BAD: &str = include_str!("fixtures/r2_bad.rs");
const R2_OK: &str = include_str!("fixtures/r2_ok.rs");
const R3_BAD: &str = include_str!("fixtures/r3_bad.rs");
const R3_OK: &str = include_str!("fixtures/r3_ok.rs");
const R4_BAD: &str = include_str!("fixtures/r4_bad.rs");
const R4_OK: &str = include_str!("fixtures/r4_ok.rs");
const R5_BAD: &str = include_str!("fixtures/r5_bad.rs");
const R5_OK: &str = include_str!("fixtures/r5_ok.rs");
const R6_BAD: &str = include_str!("fixtures/r6_bad.rs");
const R6_OK: &str = include_str!("fixtures/r6_ok.rs");
const R8_BAD: &str = include_str!("fixtures/r8_bad.rs");
const R8_OK: &str = include_str!("fixtures/r8_ok.rs");
const R9_BAD: &str = include_str!("fixtures/r9_bad.rs");
const R9_OK: &str = include_str!("fixtures/r9_ok.rs");
const R10_BAD: &str = include_str!("fixtures/r10_bad.rs");
const R10_OK: &str = include_str!("fixtures/r10_ok.rs");

#[test]
fn r1_unsafe_outside_the_allowlist_fires() {
    assert_eq!(fired("crates/data/src/fixture.rs", R1_BAD), ["r1"]);
}

#[test]
fn r1_allowlisted_paths_and_safe_code_pass() {
    // The exact-file and directory-prefix allow entries both apply.
    assert!(fired("crates/parallel/src/pool.rs", R1_BAD).is_empty());
    assert!(fired("crates/tensor/src/simd.rs", R1_BAD).is_empty());
    assert!(fired("crates/data/src/fixture.rs", R1_OK).is_empty());
}

#[test]
fn r2_adhoc_threading_fires_outside_the_pool_crate() {
    assert_eq!(fired("crates/models/src/fixture.rs", R2_BAD), ["r2", "r2"]);
}

#[test]
fn r2_pool_crate_and_pool_users_pass() {
    assert!(fired("crates/parallel/src/fixture.rs", R2_BAD).is_empty());
    assert!(fired("crates/models/src/fixture.rs", R2_OK).is_empty());
}

#[test]
fn r3_panicking_shortcuts_fire_in_covered_lib_code() {
    assert_eq!(
        fired("crates/tensor/src/fixture.rs", R3_BAD),
        ["r3", "r3", "r3"]
    );
}

#[test]
fn r3_scope_annotations_and_tests_pass() {
    // Covered crate, but annotated / under #[cfg(test)].
    assert!(fired("crates/tensor/src/fixture.rs", R3_OK).is_empty());
    // Uncovered crate.
    assert!(fired("crates/metrics/src/fixture.rs", R3_BAD).is_empty());
    // Covered crate, test role.
    assert!(fired("crates/tensor/tests/fixture.rs", R3_BAD).is_empty());
}

#[test]
fn r4_nondeterminism_fires_in_lib_code() {
    assert_eq!(
        fired("crates/core/src/fixture.rs", R4_BAD),
        ["r4", "r4", "r4", "r4"]
    );
}

#[test]
fn r4_wallclock_allowlist_covers_clocks_but_not_rng() {
    // bench may read clocks, but unseeded randomness is never allowed.
    assert_eq!(fired("crates/bench/src/fixture.rs", R4_BAD), ["r4", "r4"]);
    assert!(fired("crates/core/src/fixture.rs", R4_OK).is_empty());
}

#[test]
fn r5_console_printing_fires_in_lib_code() {
    assert_eq!(fired("crates/core/src/fixture.rs", R5_BAD), ["r5", "r5"]);
}

#[test]
fn r5_binaries_allowlisted_crates_and_writeln_pass() {
    assert!(fired("crates/core/src/bin/tool.rs", R5_BAD).is_empty());
    assert!(fired("crates/bench/src/fixture.rs", R5_BAD).is_empty());
    assert!(fired("crates/core/src/fixture.rs", R5_OK).is_empty());
}

#[test]
fn r6_uncited_pub_fns_warn_in_covered_crates() {
    let findings = lint_source("crates/estimators/src/fixture.rs", R6_BAD, &config());
    assert_eq!(findings.len(), 2);
    assert!(findings
        .iter()
        .all(|f| f.rule == "r6" && f.severity == Severity::Warning));
}

#[test]
fn r6_citations_private_fns_and_waivers_pass() {
    assert!(fired("crates/estimators/src/fixture.rs", R6_OK).is_empty());
    // Crates outside [r6] carry no citation duty at all.
    assert!(fired("crates/core/src/fixture.rs", R6_BAD).is_empty());
}

#[test]
fn r8_captured_accumulation_and_sync_calls_fire() {
    assert_eq!(
        flow_fired("crates/core/src/fixture.rs", R8_BAD, &[]),
        ["r8", "r8", "r8"]
    );
}

#[test]
fn r8_local_accumulators_slot_writes_and_waivers_pass() {
    assert!(flow_fired("crates/core/src/fixture.rs", R8_OK, &[]).is_empty());
    // The pool crate's own machinery is the sanctioned exception …
    assert!(flow_fired("crates/parallel/src/fixture.rs", R8_BAD, &[]).is_empty());
    // … and determinism is a library duty, not a test duty.
    assert!(flow_fired("crates/core/tests/fixture.rs", R8_BAD, &[]).is_empty());
}

#[test]
fn r9_leaky_exit_paths_fire() {
    let findings = flow_findings("crates/core/src/fixture.rs", R9_BAD, &[]);
    let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, ["r9", "r9", "r9"]);
    // The scope leak spans take → end-of-scope.
    assert!(findings.iter().any(|f| f.end_line > f.line));
}

#[test]
fn r9_balanced_paths_moves_and_waivers_pass() {
    assert!(flow_fired("crates/core/src/fixture.rs", R9_OK, &[]).is_empty());
    // Pool discipline is a library duty; tests may hold scratch forever.
    assert!(flow_fired("crates/core/tests/fixture.rs", R9_BAD, &[]).is_empty());
}

#[test]
fn r10_closure_denies_allocation_and_panic_paths() {
    assert_eq!(
        flow_fired(
            "crates/core/src/fixture.rs",
            R10_BAD,
            &["Engine::hot_entry"]
        ),
        ["r10", "r10"]
    );
    // Without the entry point the same code sits outside the closure.
    assert!(flow_fired("crates/core/src/fixture.rs", R10_BAD, &[]).is_empty());
}

#[test]
fn r10_pooled_assert_and_annotated_allocations_pass() {
    assert!(flow_fired("crates/core/src/fixture.rs", R10_OK, &["Engine::hot_entry"]).is_empty());
}

#[test]
fn r10_unmatched_entry_points_are_reported_not_dropped() {
    let findings = flow_findings("crates/core/src/fixture.rs", R10_OK, &["Missing::entry"]);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "r10");
    assert_eq!(findings[0].path, "lint.toml");
    assert!(findings[0].message.contains("matches no function"));
}

/// Regression: the R10 witness format is part of the report contract —
/// `(via A -> B -> C)` in the message, the same chain as a JSON array.
#[test]
fn r10_call_chain_witness_format_is_pinned() {
    let report = run_sources(
        &[("crates/core/src/fixture.rs".to_owned(), R10_BAD.to_owned())],
        &flow_config(&["Engine::hot_entry"]),
    );
    let alloc = &report.findings[0];
    assert_eq!(alloc.chain, ["Engine::hot_entry", "stage_one", "stage_two"]);
    assert!(
        alloc
            .message
            .contains("(via Engine::hot_entry -> stage_one -> stage_two)"),
        "witness rendering changed: {}",
        alloc.message
    );
    assert!(
        report
            .json()
            .contains(r#""chain": ["Engine::hot_entry", "stage_one", "stage_two"]"#),
        "JSON chain rendering changed"
    );
}

#[test]
fn stats_count_the_hot_closure() {
    let report = run_sources(
        &[("crates/core/src/fixture.rs".to_owned(), R10_BAD.to_owned())],
        &flow_config(&["Engine::hot_entry"]),
    );
    assert_eq!(report.stats.entry_points, 1);
    assert_eq!(report.stats.functions, 3);
    assert_eq!(report.stats.closure_fns, 3);
    // hot_entry -> stage_one -> stage_two both resolve in-workspace.
    assert!(report.stats.calls.0 >= 2);
}

#[test]
fn gate_semantics_errors_always_fail_warnings_only_under_deny() {
    let cfg = config();
    let warn_only = Report {
        findings: lint_source("crates/estimators/src/fixture.rs", R6_BAD, &cfg),
        files_scanned: 1,
        stats: Stats::default(),
    };
    assert!(!warn_only.fails(false));
    assert!(warn_only.fails(true));

    let errors = Report {
        findings: lint_source("crates/data/src/fixture.rs", R1_BAD, &cfg),
        files_scanned: 1,
        stats: Stats::default(),
    };
    assert!(errors.fails(false));
    assert!(errors.fails(true));
}
